//! Cross-crate integration tests: the weighted MaxRS pipeline from raw points
//! through the exact baselines, the sampling technique and the dynamic
//! structure.

use maxrs::prelude::*;
use rand::prelude::*;

fn random_points(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            WeightedPoint::new(
                Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)),
                rng.gen_range(0.5..3.0),
            )
        })
        .collect()
}

#[test]
fn static_sampling_respects_the_guarantee_against_the_exact_baseline() {
    for seed in 0..3u64 {
        let points = random_points(250, 8.0, seed);
        let exact = max_disk_placement(&points, 1.0);
        let instance = WeightedBallInstance::new(points.clone(), 1.0);
        for eps in [0.15, 0.25, 0.4] {
            let approx =
                approx_static_ball(&instance, SamplingConfig::practical(eps).with_seed(seed));
            assert!(
                approx.value >= (0.5 - eps) * exact.value - 1e-9,
                "seed {seed} eps {eps}: approx {} vs exact {}",
                approx.value,
                exact.value
            );
            assert!(approx.value <= exact.value + 1e-9);
            // The reported value is the true coverage of the reported center.
            assert!((instance.value_at(&approx.center) - approx.value).abs() < 1e-9);
        }
    }
}

#[test]
fn rectangle_and_disk_baselines_agree_on_trivially_coverable_inputs() {
    // All points inside a tiny cluster: every query shape covers everything.
    let points: Vec<WeightedPoint<2>> =
        (0..30).map(|i| WeightedPoint::new(Point2::xy(0.01 * i as f64, 0.0), 1.0)).collect();
    let rect = max_rect_placement(&points, 2.0, 2.0);
    let disk = max_disk_placement(&points, 1.0);
    assert_eq!(rect.value, 30.0);
    assert_eq!(disk.value, 30.0);
}

#[test]
fn dynamic_structure_converges_to_the_static_answer_after_churn() {
    let points = random_points(200, 6.0, 11);
    let mut dynamic = DynamicBallMaxRS::<2>::new(1.0, SamplingConfig::practical(0.25).with_seed(4));

    // Insert everything, then repeatedly delete a random point and re-insert
    // that same point, so the live multiset never changes but the structure
    // churns through plenty of updates (and epochs).
    let mut live: Vec<(usize, usize)> =
        points.iter().enumerate().map(|(i, p)| (dynamic.insert(p.point, p.weight), i)).collect();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..300 {
        let victim = rng.gen_range(0..live.len());
        let (id, point_index) = live.swap_remove(victim);
        assert!(dynamic.remove(id));
        let p = &points[point_index];
        live.push((dynamic.insert(p.point, p.weight), point_index));
    }
    assert_eq!(dynamic.len(), points.len());

    let dyn_best = dynamic.best().unwrap();
    let exact = max_disk_placement(&points, 1.0);
    assert!(
        dyn_best.value >= 0.25 * exact.value,
        "dynamic {} vs exact {}",
        dyn_best.value,
        exact.value
    );
    assert!(dyn_best.value <= exact.value + 1e-9);
}

#[test]
fn one_dimensional_and_two_dimensional_solvers_are_consistent() {
    // Points on a horizontal line: a w×h rectangle and a 1-D interval of
    // length w cover exactly the same sets.
    let xs = [0.0, 0.3, 0.9, 1.0, 2.5, 2.6, 5.0];
    let points_2d: Vec<WeightedPoint<2>> =
        xs.iter().map(|&x| WeightedPoint::unit(Point2::xy(x, 0.0))).collect();
    let points_1d: Vec<LinePoint> = xs.iter().map(|&x| LinePoint::new(x, 1.0)).collect();
    for len in [0.5, 1.0, 2.0, 4.0] {
        let rect = max_rect_placement(&points_2d, len, 1.0);
        let interval = max_interval_placement(&points_1d, len);
        assert_eq!(rect.value, interval.value, "length {len}");
    }
}

#[test]
fn instance_validation_panics_are_informative() {
    let result = std::panic::catch_unwind(|| {
        WeightedBallInstance::new(vec![WeightedPoint::new(Point2::xy(0.0, 0.0), f64::NAN)], 1.0)
    });
    assert!(result.is_err(), "NaN weights must be rejected");
}
