//! Engine-wide dispatch test: run **every** registered solver on one shared
//! small instance per (problem, shape, dimension) combination, and assert
//! that exact solvers agree with each other and approximate solvers respect
//! their stated guarantee.  This is the integration contract of the engine
//! layer: any solver added to the registry is automatically held to it.

use maxrs::prelude::*;

/// A planar weighted cluster whose radius-1 ball optimum and 1×1 closed-box
/// optimum are both 4.0 (the four 0.8-spaced corners), by construction.
fn weighted_points() -> Vec<WeightedPoint<2>> {
    vec![
        WeightedPoint::unit(Point2::xy(0.0, 0.0)),
        WeightedPoint::unit(Point2::xy(0.8, 0.0)),
        WeightedPoint::unit(Point2::xy(0.0, 0.8)),
        WeightedPoint::unit(Point2::xy(0.8, 0.8)),
        WeightedPoint::unit(Point2::xy(10.0, 10.0)),
        WeightedPoint::unit(Point2::xy(-10.0, 10.0)),
    ]
}

/// A colored cluster whose disk optimum (radius 1) is 3 distinct colors.
fn colored_sites() -> Vec<ColoredSite<2>> {
    vec![
        ColoredSite::new(Point2::xy(0.0, 0.0), 0),
        ColoredSite::new(Point2::xy(0.4, 0.0), 0),
        ColoredSite::new(Point2::xy(0.8, 0.0), 1),
        ColoredSite::new(Point2::xy(0.0, 0.8), 2),
        ColoredSite::new(Point2::xy(12.0, 0.0), 3),
    ]
}

#[test]
fn every_planar_weighted_ball_solver_meets_its_guarantee() {
    let registry = engine::registry();
    let instance = WeightedInstance::ball(weighted_points(), 1.0);

    // Ground truth from direct evaluation: the four clustered points fit in
    // one unit disk (pairwise distances ≤ 2·radius around (0.4, 0.4)).
    let opt = instance.value_at(&Point2::xy(0.4, 0.4));
    assert_eq!(opt, 4.0);

    let mut ran = 0;
    for solver in registry.weighted_solvers::<2>() {
        let descriptor = solver.descriptor();
        let report = match solver.solve(&instance) {
            Ok(report) => report,
            Err(EngineError::UnsupportedShape { .. }) => continue, // box-only solver
            Err(other) => panic!("{}: unexpected dispatch error {other}", descriptor.name),
        };
        ran += 1;
        assert_eq!(report.solver, descriptor.name);
        // Reported values must be certified: re-evaluating the center agrees.
        assert_eq!(
            instance.value_at(&report.placement.center),
            report.placement.value,
            "{} reported an uncertified value",
            descriptor.name
        );
        if report.guarantee.is_exact() {
            assert_eq!(report.placement.value, opt, "{} must be exact", descriptor.name);
        } else {
            assert!(
                report.placement.value >= report.guarantee.ratio() * opt,
                "{}: {} < {} · {opt}",
                descriptor.name,
                report.placement.value,
                report.guarantee.ratio()
            );
        }
    }
    assert!(ran >= 3, "expected ≥ 3 planar ball solvers, ran {ran}");
}

#[test]
fn weighted_box_solvers_agree_with_direct_evaluation() {
    let registry = engine::registry();
    let instance = WeightedInstance::axis_box(weighted_points(), [1.0, 1.0]);
    let opt = instance.value_at(&Point2::xy(0.4, 0.4));
    assert_eq!(opt, 4.0, "the closed unit box centered at (0.4, 0.4) covers all four corners");

    let mut ran = 0;
    for solver in registry.weighted_solvers::<2>() {
        if let Ok(report) = solver.solve(&instance) {
            ran += 1;
            assert!(report.guarantee.is_exact());
            assert_eq!(report.placement.value, opt, "{}", solver.name());
            assert_eq!(instance.value_at(&report.placement.center), opt);
        }
    }
    assert!(ran >= 1, "expected ≥ 1 planar box solver");
}

#[test]
fn one_dimensional_solvers_agree_including_the_batched_one() {
    let registry = engine::registry();
    let points: Vec<WeightedPoint<1>> = [0.0, 0.2, 0.9, 4.0, 4.1, 4.2, 9.0]
        .iter()
        .map(|&x| WeightedPoint::unit(Point::new([x])))
        .collect();
    let instance = WeightedInstance::<1>::new(points, RangeShape::interval(1.0));

    let mut exact_values = Vec::new();
    for solver in registry.weighted_solvers::<1>() {
        if let Ok(report) = solver.solve(&instance) {
            assert_eq!(
                instance.value_at(&report.placement.center),
                report.placement.value,
                "{}",
                solver.name()
            );
            if report.guarantee.is_exact() {
                exact_values.push((solver.name(), report.placement.value));
            }
        }
    }
    assert!(
        exact_values.iter().any(|(name, _)| *name == "batched-interval-1d"),
        "the batched solver must be registered: {exact_values:?}"
    );
    assert!(exact_values.len() >= 2, "expected ≥ 2 exact 1-D solvers");
    for (name, value) in &exact_values {
        assert_eq!(*value, 3.0, "{name} disagrees with the 1-D optimum");
    }
}

#[test]
fn every_colored_ball_solver_meets_its_guarantee() {
    let registry = engine::registry();
    let instance = ColoredInstance::ball(colored_sites(), 1.0);
    let opt = instance.distinct_at(&Point2::xy(0.3, 0.3));
    assert_eq!(opt, 3);

    let mut exact_ran = 0;
    let mut approx_ran = 0;
    for solver in registry.colored_solvers::<2>() {
        let descriptor = solver.descriptor();
        let report = match solver.solve(&instance) {
            Ok(report) => report,
            Err(EngineError::UnsupportedShape { .. }) => continue,
            Err(other) => panic!("{}: unexpected dispatch error {other}", descriptor.name),
        };
        assert_eq!(
            instance.distinct_at(&report.placement.center),
            report.placement.distinct,
            "{} reported an uncertified count",
            descriptor.name
        );
        if report.guarantee.is_exact() {
            exact_ran += 1;
            assert_eq!(report.placement.distinct, opt, "{} must be exact", descriptor.name);
        } else {
            approx_ran += 1;
            assert!(
                report.placement.distinct as f64 >= report.guarantee.ratio() * opt as f64,
                "{}: {} < {} · {opt}",
                descriptor.name,
                report.placement.distinct,
                report.guarantee.ratio()
            );
        }
    }
    assert!(exact_ran >= 3, "expected ≥ 3 exact colored solvers, ran {exact_ran}");
    assert!(approx_ran >= 2, "expected ≥ 2 approximate colored solvers, ran {approx_ran}");
}

#[test]
fn higher_dimensional_dispatch_reaches_the_samplers() {
    // The theory-faithful default keeps the full (2/ε)^d grid family, which
    // is enormous in d = 4; the practical caps are what any real caller uses
    // beyond the plane.
    let registry = engine::registry_with(EngineConfig::practical(0.25));
    // A 4-D cluster of three points inside one unit ball plus one far point.
    let points: Vec<WeightedPoint<4>> = vec![
        WeightedPoint::unit(Point::new([0.0, 0.0, 0.0, 0.0])),
        WeightedPoint::unit(Point::new([0.4, 0.0, 0.0, 0.0])),
        WeightedPoint::unit(Point::new([0.0, 0.4, 0.0, 0.0])),
        WeightedPoint::unit(Point::new([8.0, 8.0, 8.0, 8.0])),
    ];
    let instance = WeightedInstance::ball(points, 1.0);
    let opt_lower_bound = instance.value_at(&Point::new([0.1, 0.1, 0.0, 0.0]));
    assert_eq!(opt_lower_bound, 3.0);

    let solvers = registry.weighted_solvers::<4>();
    assert!(!solvers.is_empty(), "the samplers must be dimension-generic");
    for solver in solvers {
        let report = solver.solve(&instance).expect("samplers accept any-dimension balls");
        assert!(!report.guarantee.is_exact(), "no exact solver is registered for d = 4");
        assert!(report.placement.value >= report.guarantee.ratio() * opt_lower_bound);
    }
}

/// Error-path contract, shape axis: every registered solver, offered an
/// instance whose shape class it does not support, must refuse with
/// `EngineError::UnsupportedShape` naming itself — never panic, never
/// silently answer.
#[test]
fn every_solver_rejects_the_wrong_shape_with_a_typed_error() {
    let registry = engine::registry();

    fn check_weighted<const D: usize>(registry: &Registry) {
        for solver in registry.weighted_solvers::<D>() {
            let descriptor = solver.descriptor();
            // Offer the opposite shape class of the one the solver declares.
            let wrong = match descriptor.shape {
                maxrs::core::engine::ShapeClass::Ball => {
                    WeightedInstance::<D>::axis_box(vec![], [1.0; D])
                }
                maxrs::core::engine::ShapeClass::AxisBox => {
                    WeightedInstance::<D>::ball(vec![], 1.0)
                }
                // The auto router accepts every shape class: no wrong shape.
                maxrs::core::engine::ShapeClass::Any => continue,
            };
            match solver.solve(&wrong) {
                Err(EngineError::UnsupportedShape { solver, .. }) => {
                    assert_eq!(solver, descriptor.name);
                }
                other => panic!("{}: expected UnsupportedShape, got {other:?}", descriptor.name),
            }
        }
    }
    fn check_colored<const D: usize>(registry: &Registry) {
        for solver in registry.colored_solvers::<D>() {
            let descriptor = solver.descriptor();
            let wrong = match descriptor.shape {
                maxrs::core::engine::ShapeClass::Ball => {
                    ColoredInstance::<D>::axis_box(vec![], [1.0; D])
                }
                maxrs::core::engine::ShapeClass::AxisBox => ColoredInstance::<D>::ball(vec![], 1.0),
                // The auto router accepts every shape class: no wrong shape.
                maxrs::core::engine::ShapeClass::Any => continue,
            };
            match solver.solve(&wrong) {
                Err(EngineError::UnsupportedShape { solver, .. }) => {
                    assert_eq!(solver, descriptor.name);
                }
                other => panic!("{}: expected UnsupportedShape, got {other:?}", descriptor.name),
            }
        }
    }
    check_weighted::<1>(&registry);
    check_weighted::<2>(&registry);
    check_colored::<2>(&registry);
}

/// Error-path contract, dimension axis: a fixed-dimension solver is
/// unreachable through the registry in any other dimension, and dispatching
/// one directly in the wrong dimension yields `UnsupportedDimension` rather
/// than a panic.
#[test]
fn dimension_mismatches_are_typed_not_panics() {
    let registry = engine::registry();
    for d in registry.descriptors() {
        if let maxrs::core::engine::DimSupport::Fixed(only) = d.dims {
            // d = 3 is supported by no fixed-dimension solver, and the other
            // fixed dimensions must not leak into each other.
            match d.problem {
                maxrs::core::engine::ProblemKind::Weighted => {
                    assert!(registry.weighted::<3>(d.name).is_none(), "{}", d.name);
                    if only != 1 {
                        assert!(registry.weighted::<1>(d.name).is_none(), "{}", d.name);
                    }
                }
                maxrs::core::engine::ProblemKind::Colored => {
                    assert!(registry.colored::<3>(d.name).is_none(), "{}", d.name);
                    if only != 2 {
                        assert!(registry.colored::<2>(d.name).is_none(), "{}", d.name);
                    }
                }
            }
        }
    }
    // Direct dispatch in the wrong dimension (bypassing registry lookup).
    use maxrs::core::engine::{ExactDiskSolver, ExactIntervalSolver, WeightedSolver};
    let line = WeightedInstance::<1>::ball(vec![], 1.0);
    assert!(matches!(
        WeightedSolver::<1>::solve(&ExactDiskSolver, &line),
        Err(EngineError::UnsupportedDimension { solver: "exact-disk-2d", dim: 1 })
    ));
    let planar = WeightedInstance::<2>::ball(vec![], 1.0);
    assert!(matches!(
        WeightedSolver::<2>::solve(&ExactIntervalSolver, &planar),
        Err(EngineError::UnsupportedDimension { solver: "exact-interval-1d", dim: 2 })
    ));
}

/// Error-path contract, weight-sign axis: every registered weighted solver
/// either declares `negative_weights` support (the Section 5 interval
/// solvers, which must then solve such instances) or refuses them with
/// `EngineError::NegativeWeights` naming itself.
#[test]
fn negative_weights_are_accepted_or_refused_per_descriptor() {
    let registry = engine::registry();

    fn check<const D: usize>(registry: &Registry) {
        for solver in registry.weighted_solvers::<D>() {
            let descriptor = solver.descriptor();
            let mut negative = Point::<D>::origin();
            negative[0] = 0.5;
            let points = vec![
                WeightedPoint::new(Point::<D>::origin(), 2.0),
                WeightedPoint::new(negative, -1.0),
            ];
            let instance = match descriptor.shape {
                // The auto router takes any shape; probe its negative-weight
                // refusal with a ball.
                maxrs::core::engine::ShapeClass::Ball | maxrs::core::engine::ShapeClass::Any => {
                    WeightedInstance::<D>::ball(points, 1.0)
                }
                maxrs::core::engine::ShapeClass::AxisBox => {
                    WeightedInstance::<D>::axis_box(points, [1.0; D])
                }
            };
            if descriptor.negative_weights {
                let report = solver
                    .solve(&instance)
                    .unwrap_or_else(|e| panic!("{} must accept negatives: {e}", descriptor.name));
                // The optimum dodges the negative point entirely in 1-D.
                assert!(report.placement.value >= 2.0, "{}", descriptor.name);
            } else {
                match solver.solve(&instance) {
                    Err(EngineError::NegativeWeights { solver }) => {
                        assert_eq!(solver, descriptor.name);
                    }
                    other => {
                        panic!("{}: expected NegativeWeights, got {other:?}", descriptor.name)
                    }
                }
            }
        }
    }
    check::<1>(&registry);
    check::<2>(&registry);
}

/// The batch layer surfaces the same typed errors per query: an unknown
/// solver name or a shape mismatch fails that answer alone while the rest
/// of the batch proceeds.
#[test]
fn batch_executor_fails_individual_queries_with_typed_errors() {
    let registry = engine::registry();
    let request = BatchRequest::over_points(weighted_points())
        .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.0)))
        .with_query(BatchQuery::weighted("exact-disk-2d", RangeShape::rect(1.0, 1.0)))
        .with_query(BatchQuery::weighted("not-a-solver", RangeShape::ball(1.0)))
        .with_query(BatchQuery::colored("exact-disk-2d", RangeShape::ball(1.0)));
    let report = BatchExecutor::new(&registry).execute(&request);
    assert_eq!(report.weighted(0).unwrap().placement.value, 4.0);
    assert!(matches!(
        report.answers[1].error(),
        Some(EngineError::UnsupportedShape { solver: "exact-disk-2d", .. })
    ));
    assert!(matches!(
        report.answers[2].error(),
        Some(EngineError::UnknownSolver { name }) if name == "not-a-solver"
    ));
    // A weighted solver name is unknown to the *colored* side of the registry.
    assert!(matches!(report.answers[3].error(), Some(EngineError::UnknownSolver { .. })));
    assert_eq!(report.stats.failed, 3);
    assert_eq!(report.stats.certified, 1);
}

#[test]
fn registry_descriptor_listing_is_consistent_with_dispatch() {
    let registry = engine::registry();
    let descriptors = registry.descriptors();
    assert!(descriptors.len() >= 8, "acceptance: at least 8 named solvers");
    // Every descriptor that claims planar support must actually resolve.
    for d in &descriptors {
        if !d.dims.supports(2) {
            continue;
        }
        let found = match d.problem {
            maxrs::core::engine::ProblemKind::Weighted => registry.weighted::<2>(d.name).is_some(),
            maxrs::core::engine::ProblemKind::Colored => registry.colored::<2>(d.name).is_some(),
        };
        assert!(found, "descriptor {} listed but not constructible", d.name);
    }
}
