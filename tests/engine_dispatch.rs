//! Engine-wide dispatch test: run **every** registered solver on one shared
//! small instance per (problem, shape, dimension) combination, and assert
//! that exact solvers agree with each other and approximate solvers respect
//! their stated guarantee.  This is the integration contract of the engine
//! layer: any solver added to the registry is automatically held to it.

use maxrs::prelude::*;

/// A planar weighted cluster whose radius-1 ball optimum and 1×1 closed-box
/// optimum are both 4.0 (the four 0.8-spaced corners), by construction.
fn weighted_points() -> Vec<WeightedPoint<2>> {
    vec![
        WeightedPoint::unit(Point2::xy(0.0, 0.0)),
        WeightedPoint::unit(Point2::xy(0.8, 0.0)),
        WeightedPoint::unit(Point2::xy(0.0, 0.8)),
        WeightedPoint::unit(Point2::xy(0.8, 0.8)),
        WeightedPoint::unit(Point2::xy(10.0, 10.0)),
        WeightedPoint::unit(Point2::xy(-10.0, 10.0)),
    ]
}

/// A colored cluster whose disk optimum (radius 1) is 3 distinct colors.
fn colored_sites() -> Vec<ColoredSite<2>> {
    vec![
        ColoredSite::new(Point2::xy(0.0, 0.0), 0),
        ColoredSite::new(Point2::xy(0.4, 0.0), 0),
        ColoredSite::new(Point2::xy(0.8, 0.0), 1),
        ColoredSite::new(Point2::xy(0.0, 0.8), 2),
        ColoredSite::new(Point2::xy(12.0, 0.0), 3),
    ]
}

#[test]
fn every_planar_weighted_ball_solver_meets_its_guarantee() {
    let registry = engine::registry();
    let instance = WeightedInstance::ball(weighted_points(), 1.0);

    // Ground truth from direct evaluation: the four clustered points fit in
    // one unit disk (pairwise distances ≤ 2·radius around (0.4, 0.4)).
    let opt = instance.value_at(&Point2::xy(0.4, 0.4));
    assert_eq!(opt, 4.0);

    let mut ran = 0;
    for solver in registry.weighted_solvers::<2>() {
        let descriptor = solver.descriptor();
        let report = match solver.solve(&instance) {
            Ok(report) => report,
            Err(EngineError::UnsupportedShape { .. }) => continue, // box-only solver
            Err(other) => panic!("{}: unexpected dispatch error {other}", descriptor.name),
        };
        ran += 1;
        assert_eq!(report.solver, descriptor.name);
        // Reported values must be certified: re-evaluating the center agrees.
        assert_eq!(
            instance.value_at(&report.placement.center),
            report.placement.value,
            "{} reported an uncertified value",
            descriptor.name
        );
        if report.guarantee.is_exact() {
            assert_eq!(report.placement.value, opt, "{} must be exact", descriptor.name);
        } else {
            assert!(
                report.placement.value >= report.guarantee.ratio() * opt,
                "{}: {} < {} · {opt}",
                descriptor.name,
                report.placement.value,
                report.guarantee.ratio()
            );
        }
    }
    assert!(ran >= 3, "expected ≥ 3 planar ball solvers, ran {ran}");
}

#[test]
fn weighted_box_solvers_agree_with_direct_evaluation() {
    let registry = engine::registry();
    let instance = WeightedInstance::axis_box(weighted_points(), [1.0, 1.0]);
    let opt = instance.value_at(&Point2::xy(0.4, 0.4));
    assert_eq!(opt, 4.0, "the closed unit box centered at (0.4, 0.4) covers all four corners");

    let mut ran = 0;
    for solver in registry.weighted_solvers::<2>() {
        if let Ok(report) = solver.solve(&instance) {
            ran += 1;
            assert!(report.guarantee.is_exact());
            assert_eq!(report.placement.value, opt, "{}", solver.name());
            assert_eq!(instance.value_at(&report.placement.center), opt);
        }
    }
    assert!(ran >= 1, "expected ≥ 1 planar box solver");
}

#[test]
fn one_dimensional_solvers_agree_including_the_batched_one() {
    let registry = engine::registry();
    let points: Vec<WeightedPoint<1>> = [0.0, 0.2, 0.9, 4.0, 4.1, 4.2, 9.0]
        .iter()
        .map(|&x| WeightedPoint::unit(Point::new([x])))
        .collect();
    let instance = WeightedInstance::<1>::new(points, RangeShape::interval(1.0));

    let mut exact_values = Vec::new();
    for solver in registry.weighted_solvers::<1>() {
        if let Ok(report) = solver.solve(&instance) {
            assert_eq!(
                instance.value_at(&report.placement.center),
                report.placement.value,
                "{}",
                solver.name()
            );
            if report.guarantee.is_exact() {
                exact_values.push((solver.name(), report.placement.value));
            }
        }
    }
    assert!(
        exact_values.iter().any(|(name, _)| *name == "batched-interval-1d"),
        "the batched solver must be registered: {exact_values:?}"
    );
    assert!(exact_values.len() >= 2, "expected ≥ 2 exact 1-D solvers");
    for (name, value) in &exact_values {
        assert_eq!(*value, 3.0, "{name} disagrees with the 1-D optimum");
    }
}

#[test]
fn every_colored_ball_solver_meets_its_guarantee() {
    let registry = engine::registry();
    let instance = ColoredInstance::ball(colored_sites(), 1.0);
    let opt = instance.distinct_at(&Point2::xy(0.3, 0.3));
    assert_eq!(opt, 3);

    let mut exact_ran = 0;
    let mut approx_ran = 0;
    for solver in registry.colored_solvers::<2>() {
        let descriptor = solver.descriptor();
        let report = match solver.solve(&instance) {
            Ok(report) => report,
            Err(EngineError::UnsupportedShape { .. }) => continue,
            Err(other) => panic!("{}: unexpected dispatch error {other}", descriptor.name),
        };
        assert_eq!(
            instance.distinct_at(&report.placement.center),
            report.placement.distinct,
            "{} reported an uncertified count",
            descriptor.name
        );
        if report.guarantee.is_exact() {
            exact_ran += 1;
            assert_eq!(report.placement.distinct, opt, "{} must be exact", descriptor.name);
        } else {
            approx_ran += 1;
            assert!(
                report.placement.distinct as f64 >= report.guarantee.ratio() * opt as f64,
                "{}: {} < {} · {opt}",
                descriptor.name,
                report.placement.distinct,
                report.guarantee.ratio()
            );
        }
    }
    assert!(exact_ran >= 3, "expected ≥ 3 exact colored solvers, ran {exact_ran}");
    assert!(approx_ran >= 2, "expected ≥ 2 approximate colored solvers, ran {approx_ran}");
}

#[test]
fn higher_dimensional_dispatch_reaches_the_samplers() {
    // The theory-faithful default keeps the full (2/ε)^d grid family, which
    // is enormous in d = 4; the practical caps are what any real caller uses
    // beyond the plane.
    let registry = engine::registry_with(EngineConfig::practical(0.25));
    // A 4-D cluster of three points inside one unit ball plus one far point.
    let points: Vec<WeightedPoint<4>> = vec![
        WeightedPoint::unit(Point::new([0.0, 0.0, 0.0, 0.0])),
        WeightedPoint::unit(Point::new([0.4, 0.0, 0.0, 0.0])),
        WeightedPoint::unit(Point::new([0.0, 0.4, 0.0, 0.0])),
        WeightedPoint::unit(Point::new([8.0, 8.0, 8.0, 8.0])),
    ];
    let instance = WeightedInstance::ball(points, 1.0);
    let opt_lower_bound = instance.value_at(&Point::new([0.1, 0.1, 0.0, 0.0]));
    assert_eq!(opt_lower_bound, 3.0);

    let solvers = registry.weighted_solvers::<4>();
    assert!(!solvers.is_empty(), "the samplers must be dimension-generic");
    for solver in solvers {
        let report = solver.solve(&instance).expect("samplers accept any-dimension balls");
        assert!(!report.guarantee.is_exact(), "no exact solver is registered for d = 4");
        assert!(report.placement.value >= report.guarantee.ratio() * opt_lower_bound);
    }
}

#[test]
fn registry_descriptor_listing_is_consistent_with_dispatch() {
    let registry = engine::registry();
    let descriptors = registry.descriptors();
    assert!(descriptors.len() >= 8, "acceptance: at least 8 named solvers");
    // Every descriptor that claims planar support must actually resolve.
    for d in &descriptors {
        if !d.dims.supports(2) {
            continue;
        }
        let found = match d.problem {
            maxrs::core::engine::ProblemKind::Weighted => registry.weighted::<2>(d.name).is_some(),
            maxrs::core::engine::ProblemKind::Colored => registry.colored::<2>(d.name).is_some(),
        };
        assert!(found, "descriptor {} listed but not constructible", d.name);
    }
}
