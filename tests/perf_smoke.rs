//! Wall-clock-free performance smoke tests.
//!
//! Timing asserts are flaky in CI, so these tests bound *work counters*
//! instead: the CSR grid's `GridQueryStats` (cells visited, candidates
//! distance-tested), the engine's aggregated `candidates_examined` /
//! `grid_cells_visited`, the shared index's build counter, and the
//! output-sensitive solver's pruning counters.  A change that re-introduces
//! per-query index rebuilds, defeats the localization prunes, or makes grid
//! queries scan quadratically fails here deterministically.

use maxrs::core::technique2::output_sensitive_colored_disk_with_stats;
use maxrs::engine::{
    registry, BatchExecutor, BatchQuery, BatchRequest, ExecutorConfig, RangeShape, SharedIndex,
    TraceRecorder,
};
use maxrs::geom::{HashGrid, Point2, WeightedPoint};
use rand::prelude::*;

fn uniform_points(n: usize, extent: f64, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent))).collect()
}

/// A grid query's candidate count is `O(output + cells visited)`: with the
/// cell side matched to the radius, the 3×3 cell neighbourhood around the
/// query bounds the candidates by the hits within radius 3r (a constant-area
/// blowup), never by `n`.
#[test]
fn grid_query_work_is_output_plus_cells() {
    let points = uniform_points(20_000, 100.0, 7);
    let index = HashGrid::build(1.0, &points);
    let mut total_candidates = 0usize;
    let mut total_blownup_hits = 0usize;
    let mut total_cells = 0usize;
    for q in uniform_points(64, 100.0, 8) {
        let mut hits_3r = 0usize;
        index.for_each_within(&q, 3.0, |_| hits_3r += 1);
        let stats = index.for_each_within(&q, 1.0, |_| {});
        total_candidates += stats.candidates;
        total_cells += stats.cells;
        total_blownup_hits += hits_3r;
        // Per query: at most the 3x3 cell neighbourhood.
        assert!(stats.cells <= 9, "radius = cell side visits at most 9 cells, got {}", stats.cells);
        // Every candidate lives in a visited cell and within the 3r blowup.
        assert!(
            stats.candidates <= hits_3r,
            "candidates {} exceed the 3r neighbourhood {hits_3r}",
            stats.candidates
        );
    }
    assert!(total_candidates > 0 && total_cells > 0);
    // Aggregate: the scan never degenerates toward O(n) per query.
    assert!(
        total_candidates <= total_blownup_hits,
        "{total_candidates} candidates vs {total_blownup_hits} 3r-hits"
    );
}

/// A batch over one shared index builds each structure exactly once: the
/// first execution pays the builds, a second identical execution pays zero,
/// and the per-query work counters are identical across both runs (the work
/// is deterministic, not timing-dependent).
#[test]
fn batch_reuses_the_shared_index_with_zero_rebuilds() {
    let points: Vec<WeightedPoint<2>> =
        uniform_points(500, 10.0, 11).into_iter().map(WeightedPoint::unit).collect();
    let index = SharedIndex::new(points.into(), Vec::new().into());
    let mut request = BatchRequest::from_shared(index.shared_points(), index.shared_sites());
    for i in 0..10 {
        // Two distinct radii → exactly two grids, regardless of query count.
        let radius = if i % 2 == 0 { 0.8 } else { 1.3 };
        request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius)));
    }
    let registry = registry();
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: Some(1), certify: false, ..ExecutorConfig::default() },
    );

    let first = executor.execute_with_index(&request, &index);
    assert!(first.all_ok());
    assert_eq!(index.builds(), 2, "one CSR grid per distinct radius, nothing else");
    assert!(first.stats.candidates_examined > 0);
    assert!(first.stats.grid_cells_visited > 0);

    let second = executor.execute_with_index(&request, &index);
    assert!(second.all_ok());
    assert_eq!(second.stats.index_builds, 0, "warm index must not rebuild");
    assert_eq!(index.builds(), 2, "still exactly two structures");
    assert_eq!(
        first.stats.candidates_examined, second.stats.candidates_examined,
        "work counters are deterministic run to run"
    );
    assert_eq!(first.stats.grid_cells_visited, second.stats.grid_cells_visited);
}

/// The technique-1 sample set is built once per distinct radius and shared
/// across every query of the batch (and across batches on the same index).
#[test]
fn sampler_batches_build_one_sample_set_per_radius() {
    let points: Vec<WeightedPoint<2>> =
        uniform_points(300, 8.0, 13).into_iter().map(WeightedPoint::unit).collect();
    let index = SharedIndex::new(points.into(), Vec::new().into());
    let mut request = BatchRequest::from_shared(index.shared_points(), index.shared_sites());
    for _ in 0..8 {
        request.push(BatchQuery::weighted("approx-static-ball", RangeShape::ball(1.0)));
    }
    let registry = registry();
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: Some(1), certify: true, ..ExecutorConfig::default() },
    );
    let report = executor.execute_with_index(&request, &index);
    assert!(report.all_ok());
    assert_eq!(report.stats.certify_failures, 0);
    // One sample set shared by all eight queries, plus the one per-radius
    // grid the certification pass reuses — never a per-query rebuild.
    assert_eq!(index.builds(), 2, "eight same-radius sampler queries share one sample set");
    // All eight queries answered from the same set: identical placements.
    let first = report.weighted(0).unwrap().placement;
    for i in 1..8 {
        assert_eq!(report.weighted(i).unwrap().placement, first);
    }
}

/// The f32 sieve must keep earning its keep on the loadgen planar dataset
/// (the clustered workload `serve_loadgen` uploads): raw grid queries under
/// the sieve-then-verify kernel — the process default — reject at least half
/// of all candidates the cell walk could not prune, before any f64
/// arithmetic runs.  A regression that widens the threshold until everything
/// survives (an `M²`-proportional error bound does exactly that at these
/// coordinate magnitudes) fails this floor deterministically.
#[test]
fn sieve_rejects_at_least_half_the_candidates_on_the_loadgen_dataset() {
    assert_eq!(
        maxrs::geom::kernels::kernel_mode(),
        maxrs::geom::KernelMode::SieveF32,
        "the sieve is the process default"
    );
    let csv = mrs_bench::serve::planar_csv(10_000, 42);
    let set = maxrs::core::input::parse_point_set_csv(&csv).expect("loadgen CSV parses");
    let points: Vec<Point2> = set.points.iter().map(|p| p.point).collect();
    for radius in [0.5, 1.0, 2.0] {
        let index = HashGrid::build(radius, &points);
        let mut stats = maxrs::geom::GridQueryStats::default();
        for q in points.iter().take(2000) {
            stats.merge(index.for_each_within(q, radius, |_| {}));
        }
        assert!(stats.candidates > 0);
        assert!(
            stats.sieve_rejected * 2 >= stats.candidates,
            "r={radius}: sieve rejected {} of {} candidates (< 50%)",
            stats.sieve_rejected,
            stats.candidates
        );
    }
}

/// End-to-end, the batch counters must carry the sieve's work through
/// `SolveStats → BatchStats`: a candidates-bound planar batch over the
/// loadgen dataset reports a `sieve_rejected` share that is substantial
/// (the union sweeps run denser neighbourhoods than raw queries, so the
/// floor is a third rather than half) yet strictly below the candidate
/// total.
#[test]
fn batch_counters_carry_the_sieve_share() {
    let csv = mrs_bench::serve::planar_csv(10_000, 42);
    let set = maxrs::core::input::parse_point_set_csv(&csv).expect("loadgen CSV parses");
    let index = SharedIndex::new(set.points.into(), set.sites.into());
    let mut request = BatchRequest::from_shared(index.shared_points(), index.shared_sites());
    for radius in [0.5, 1.0] {
        request.push(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius)));
        request
            .push(BatchQuery::colored("output-sensitive-colored-disk", RangeShape::ball(radius)));
    }
    let registry = registry();
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: Some(1), certify: false, ..ExecutorConfig::default() },
    );
    let report = executor.execute_with_index(&request, &index);
    assert!(report.all_ok());
    let stats = &report.stats;
    assert!(stats.candidates_examined > 0);
    assert!(
        stats.sieve_rejected * 3 >= stats.candidates_examined,
        "sieve rejected {} of {} candidates (< 1/3)",
        stats.sieve_rejected,
        stats.candidates_examined
    );
    assert!(stats.sieve_rejected < stats.candidates_examined);
}

/// The `auto` router must keep routing well on the loadgen mix, measured in
/// the same deterministic work units the cost model is calibrated in: for
/// every query, the chosen solver must be *capable* (a routing bug that
/// dispatches an incapable solver fails hard), and on at least 80% of the
/// mix the choice's measured work must be within 10% of the cheapest
/// capable solver's measured work.  Each run executes against a fresh
/// index, so counters are cold and comparable across solvers.
#[test]
fn auto_picks_the_measured_cheapest_solver_on_the_loadgen_mix() {
    use maxrs::core::engine::cost;
    use maxrs::engine::{EngineConfig, ProblemKind, Registry, ShapeClass};

    // The same practical caps the cost table was calibrated under (the
    // theory-faithful default keeps the full shifted-grid family, whose
    // build cost at loadgen extents is off the model's scale).
    let registry = Registry::with_config(EngineConfig::practical(0.25).with_seed(42));
    // Sizes are loadgen-shaped but trimmed for debug-mode CI: the colored
    // slice stays small because the exact colored-disk solvers are
    // output-sensitive and superlinear on clustered data.
    let weighted_set =
        maxrs::core::input::parse_point_set_csv(&mrs_bench::serve::planar_csv(1_200, 42))
            .expect("loadgen CSV parses");
    let colored_set =
        maxrs::core::input::parse_point_set_csv(&mrs_bench::serve::planar_csv(160, 7))
            .expect("loadgen CSV parses");
    let points: std::sync::Arc<[WeightedPoint<2>]> = weighted_set.points.into();
    let sites: std::sync::Arc<[maxrs::geom::ColoredSite<2>]> = colored_set.sites.into();
    let no_points: std::sync::Arc<[WeightedPoint<2>]> = Vec::new().into();
    let no_sites: std::sync::Arc<[maxrs::geom::ColoredSite<2>]> = Vec::new().into();

    // The loadgen shape mix: rectangle sweeps, ball queries across the fill
    // range, and the colored variants on the smaller colored slice.
    let weighted_shapes = [
        RangeShape::ball(0.4),
        RangeShape::ball(1.0),
        RangeShape::ball(2.5),
        RangeShape::rect(2.0, 1.0),
        RangeShape::rect(3.0, 2.0),
        RangeShape::rect(1.5, 1.5),
        RangeShape::rect(4.0, 1.0),
    ];
    let colored_shapes = [RangeShape::ball(0.3), RangeShape::ball(0.5), RangeShape::rect(3.0, 2.0)];

    // One cold execution of one (solver, shape) query; returns the solve
    // stats so the caller can put every candidate on the same work scale.
    let run = |solver: &str, shape: &RangeShape<2>, colored: bool| {
        let request = if colored {
            BatchRequest::from_shared(no_points.clone(), sites.clone())
                .with_query(BatchQuery::colored(solver, *shape))
        } else {
            BatchRequest::from_shared(points.clone(), no_sites.clone())
                .with_query(BatchQuery::weighted(solver, *shape))
        };
        let executor = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: Some(1), certify: false, ..ExecutorConfig::default() },
        );
        let mut report = executor.execute(&request);
        assert!(report.all_ok(), "{solver} failed on {shape:?}: {:?}", report.answers);
        report.answers.remove(0)
    };

    let descriptors = registry.descriptors();
    let mut total = 0usize;
    let mut cheap = 0usize;
    for (shapes, colored) in [(&weighted_shapes[..], false), (&colored_shapes[..], true)] {
        let problem = if colored { ProblemKind::Colored } else { ProblemKind::Weighted };
        let n = if colored { sites.len() } else { points.len() };
        for shape in shapes {
            let class =
                if shape.ball_radius().is_some() { ShapeClass::Ball } else { ShapeClass::AxisBox };
            let answer = run("auto", shape, colored);
            let (report_stats, placement_ok) = if colored {
                let r = answer.colored().expect("auto answers the colored query");
                (r.stats.clone(), r.placement.distinct >= 1)
            } else {
                let r = answer.weighted().expect("auto answers the weighted query");
                (r.stats.clone(), r.placement.value > 0.0)
            };
            assert!(placement_ok, "auto produced an empty answer for {shape:?}");
            let choice = report_stats.auto_choice.expect("auto stamps its choice");
            let choice_work = report_stats.auto_actual_work.expect("auto stamps actual work");
            assert!(report_stats.auto_predicted_work.expect("predicted work stamped") >= 1.0);

            // Hard invariant: the choice is a capable registered solver.
            let descriptor = descriptors
                .iter()
                .find(|d| d.name == choice && d.problem == problem)
                .unwrap_or_else(|| panic!("auto chose unregistered `{choice}`"));
            assert!(
                descriptor.supports(problem, class, 2),
                "auto chose `{choice}`, incapable of {class:?} in d=2"
            );

            // Measure every capable candidate cold and find the floor.
            let min_work = descriptors
                .iter()
                .filter(|d| d.name != "auto" && d.supports(problem, class, 2))
                .map(|d| {
                    let answer = run(d.name, shape, colored);
                    let stats = if colored {
                        &answer.colored().expect("candidate answers").stats
                    } else {
                        &answer.weighted().expect("candidate answers").stats
                    };
                    cost::actual_work(stats, n)
                })
                .fold(f64::INFINITY, f64::min);
            assert!(min_work.is_finite(), "no capable candidate for {shape:?}");
            total += 1;
            if choice_work <= 1.1 * min_work + 1e-6 {
                cheap += 1;
            }
        }
    }
    assert!(
        cheap * 5 >= total * 4,
        "auto picked the measured-cheapest solver on only {cheap} of {total} queries (< 80%)"
    );
}

/// Tracing must stay effectively free: phase timing reads two `Instant`s
/// per phase around work that walks thousands of candidates, so a traced
/// batch over the loadgen planar dataset may cost at most 5% more wall
/// time than the identical untraced batch.  This is the one intentionally
/// wall-clock test in this file; it is made robust the standard way —
/// min-of-N over interleaved runs, so shared-CI noise inflates both sides
/// equally and the minimum estimates the true cost of each path.
#[test]
fn tracing_overhead_stays_under_five_percent() {
    use maxrs::engine::{ScriptStep, VersionedDataset};
    use std::time::{Duration, Instant};

    // Loadgen-shaped but trimmed for debug-mode CI: the clustered planar
    // dataset makes the exact disk sweep superlinear, so the point count
    // stays small, and the mix sticks to the index-shared exact solvers
    // (the sampler-backed ones cost minutes per query in debug builds) —
    // the gate measures relative overhead, not throughput.
    let csv = mrs_bench::serve::planar_csv(1_500, 42);
    let set = maxrs::core::input::parse_point_set_csv(&csv).expect("loadgen CSV parses");
    let dataset = VersionedDataset::new(set.points, set.sites);
    let mut steps = Vec::new();
    for radius in [0.5, 1.0] {
        steps.push(ScriptStep::Query(BatchQuery::weighted(
            "exact-disk-2d",
            RangeShape::ball(radius),
        )));
        steps.push(ScriptStep::Query(BatchQuery::weighted(
            "exact-rect-2d",
            RangeShape::rect(radius, radius),
        )));
    }
    let registry = registry();
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: Some(1), certify: false, ..ExecutorConfig::default() },
    );

    // Warm up once (index builds amortize identically on both sides since
    // each run gets a fresh dataset view — keep both paths fully symmetric).
    let mut disabled_min = Duration::MAX;
    let mut enabled_min = Duration::MAX;
    for _ in 0..5 {
        let started = Instant::now();
        let report = executor.execute_script(&dataset, &steps);
        assert!(report.all_ok());
        disabled_min = disabled_min.min(started.elapsed());

        let mut recorder = TraceRecorder::new();
        let started = Instant::now();
        let report = executor.execute_script_traced(&dataset, &steps, &mut recorder);
        assert!(report.all_ok());
        enabled_min = enabled_min.min(started.elapsed());
        assert_eq!(recorder.traces().len(), steps.len(), "every query step leaves a trace");
    }

    // 5% relative plus a small absolute floor so micro-jitter on a fast
    // batch cannot fail the gate spuriously.
    let budget = disabled_min.mul_f64(1.05) + Duration::from_millis(2);
    assert!(
        enabled_min <= budget,
        "tracing overhead too high: traced {enabled_min:?} vs untraced {disabled_min:?} \
         (budget {budget:?})"
    );
}

/// The output-sensitive localization must keep doing its job: on a clustered
/// instance the behavior-identical prunes (color-bound skip + subset dedup
/// across the 36 shifted grids) eliminate the overwhelming majority of
/// per-cell union sweeps, and the boundary-crossing count stays far below
/// the unpruned regime.  A regression that disables either prune fails the
/// ratio bound deterministically.
#[test]
fn output_sensitive_prunes_dominate_on_clustered_data() {
    let mut rng = StdRng::seed_from_u64(91);
    let sites: Vec<maxrs::geom::ColoredSite<2>> = (0..400)
        .map(|_| {
            let cluster = rng.gen_range(0..6);
            let (cx, cy) = (cluster as f64 * 7.0, (cluster % 3) as f64 * 5.0);
            maxrs::geom::ColoredSite::new(
                Point2::xy(cx + rng.gen_range(-1.2..1.2), cy + rng.gen_range(-1.2..1.2)),
                rng.gen_range(0..30),
            )
        })
        .collect();
    let (placement, stats) = output_sensitive_colored_disk_with_stats(&sites, 0.3);
    assert!(placement.distinct >= 1);
    let swept = stats.cells - stats.cells_pruned - stats.cells_deduped;
    assert!(
        stats.cells_pruned + stats.cells_deduped > 0,
        "the prunes must fire on clustered data: {stats:?}"
    );
    assert!(
        swept * 4 <= stats.cells,
        "at least 3/4 of the {} cells must be pruned or deduped, swept {swept}",
        stats.cells
    );
}
