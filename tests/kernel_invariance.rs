//! Lane-width invariance of the CSR filter kernels.
//!
//! The three kernel modes (`ScalarF64`, `LanedF64`, `SieveF32`, see
//! `mrs_geom::kernels`) are *exact*: for any point set, radius and query —
//! including coordinates snapped exactly onto the query boundary — they must
//! produce bit-identical hit sequences, bit-identical solver placements, and
//! identical work counters, with `sieve_rejected` as the only mode-dependent
//! number.  These tests A/B the modes over the grid queries and over the two
//! candidates-bound planar solvers; any rounding shortcut smuggled into a
//! laned kernel fails here deterministically.

use std::sync::{Mutex, MutexGuard};

use maxrs::core::exact::disk2d::{max_disk_placement_chunked, DiskSweepStats};
use maxrs::core::technique2::output_sensitive_colored_disk_with_stats;
use maxrs::geom::kernels::{kernel_mode, set_kernel_mode, KernelMode};
use maxrs::geom::{ColoredSite, GridQueryStats, HashGrid, Point2, WeightedPoint};
use proptest::prelude::*;
use rand::prelude::*;

const MODES: [KernelMode; 3] = [KernelMode::ScalarF64, KernelMode::LanedF64, KernelMode::SieveF32];

/// The kernel mode is process-global, so the tests in this binary serialize
/// their A/B runs through one lock and restore the previous mode on drop.
static MODE_LOCK: Mutex<()> = Mutex::new(());

struct ModeGuard {
    before: KernelMode,
    _lock: MutexGuard<'static, ()>,
}

impl ModeGuard {
    fn acquire() -> Self {
        let lock = MODE_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        Self { before: kernel_mode(), _lock: lock }
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_kernel_mode(self.before);
    }
}

/// `stats` with the one legitimately mode-dependent counter cleared.
fn modulo_sieve(mut stats: GridQueryStats) -> GridQueryStats {
    stats.sieve_rejected = 0;
    stats
}

fn disk_modulo_sieve(mut stats: DiskSweepStats) -> DiskSweepStats {
    stats.sieve_rejected = 0;
    stats
}

proptest! {
    /// Raw grid queries: same hits, in the same order, with the same
    /// `cells`/`candidates` counters under every mode.  A fraction of the
    /// points is snapped to lie *exactly* at distance `radius` from another
    /// point — the adversarial case for the widened f32 sieve, which must
    /// keep every true boundary hit.
    #[test]
    fn grid_queries_are_lane_width_invariant(
        coords in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..120),
        snaps in proptest::collection::vec((0usize..120, 0usize..16), 0..24),
        radius in 0.05f64..12.0,
        cell_scale in 0.4f64..2.5,
    ) {
        let _guard = ModeGuard::acquire();
        let mut points: Vec<Point2> =
            coords.iter().map(|&(x, y)| Point2::xy(x, y)).collect();
        for &(anchor, angle_idx) in &snaps {
            let a = points[anchor % points.len()];
            let theta = angle_idx as f64 * std::f64::consts::TAU / 16.0;
            points.push(Point2::xy(
                a.x() + radius * theta.cos(),
                a.y() + radius * theta.sin(),
            ));
        }
        let index = HashGrid::build(radius * cell_scale, &points);
        let queries: Vec<Point2> =
            points.iter().copied().take(8).chain([Point2::xy(0.0, 0.0)]).collect();

        let mut reference: Option<(Vec<usize>, GridQueryStats)> = None;
        for mode in MODES {
            set_kernel_mode(mode);
            let mut hits = Vec::new();
            let mut stats = GridQueryStats::default();
            for q in &queries {
                stats.merge(index.for_each_within(q, radius, |id| hits.push(id)));
            }
            if mode != KernelMode::SieveF32 {
                prop_assert_eq!(stats.sieve_rejected, 0, "{:?} must not sieve", mode);
            }
            prop_assert!(stats.sieve_rejected <= stats.candidates);
            match &reference {
                None => reference = Some((hits, modulo_sieve(stats))),
                Some((want_hits, want_stats)) => {
                    prop_assert_eq!(&hits, want_hits, "hits differ under {:?}", mode);
                    prop_assert_eq!(
                        &modulo_sieve(stats), want_stats,
                        "counters differ under {:?}", mode
                    );
                }
            }
        }
    }
}

/// Solver-level invariance: the exact disk sweep (serial and chunked) and
/// the output-sensitive colored solver return bit-identical placements and
/// identical work counters modulo `sieve_rejected` under every mode.
#[test]
fn planar_solvers_are_lane_width_invariant() {
    let _guard = ModeGuard::acquire();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for round in 0..6 {
        let n = rng.gen_range(30..160);
        let mut points: Vec<WeightedPoint<2>> = (0..n)
            .map(|_| {
                WeightedPoint::new(
                    Point2::xy(rng.gen_range(0.0..20.0), rng.gen_range(0.0..20.0)),
                    rng.gen_range(0.1..2.0),
                )
            })
            .collect();
        let radius = rng.gen_range(0.3..3.0);
        // Boundary-snapped pairs: exactly `radius` and exactly `2·radius`
        // apart (the sweep's phase-1 queries run at radius 2r).
        for k in 0..6 {
            let a = points[k * 3 % points.len()].point;
            let theta = k as f64 * std::f64::consts::TAU / 6.0;
            for dist in [radius, 2.0 * radius] {
                points.push(WeightedPoint::unit(Point2::xy(
                    a.x() + dist * theta.cos(),
                    a.y() + dist * theta.sin(),
                )));
            }
        }
        let sites: Vec<ColoredSite<2>> = points
            .iter()
            .map(|p| ColoredSite::new(p.point, (p.weight * 10.0) as usize % 12))
            .collect();
        let centers: Vec<Point2> = points.iter().map(|p| p.point).collect();
        let index = HashGrid::build(radius.max(1e-9), &centers);

        let mut disk_ref = None;
        let mut os_ref = None;
        for mode in MODES {
            set_kernel_mode(mode);
            for threads in [1usize, 3] {
                let (placement, stats) =
                    max_disk_placement_chunked(&points, radius, &index, threads);
                if mode != KernelMode::SieveF32 {
                    assert_eq!(stats.sieve_rejected, 0, "{mode:?} must not sieve");
                }
                let key = (placement, disk_modulo_sieve(stats));
                match &disk_ref {
                    None => disk_ref = Some(key),
                    Some(want) => assert_eq!(
                        &key, want,
                        "disk sweep differs under {mode:?} x{threads} (round {round})"
                    ),
                }
            }
            let (placement, stats) = output_sensitive_colored_disk_with_stats(&sites, radius);
            let mut counters = stats;
            counters.grid_queries = modulo_sieve(counters.grid_queries);
            let key = (placement, counters);
            match &os_ref {
                None => os_ref = Some(key),
                Some(want) => assert_eq!(
                    &key, want,
                    "output-sensitive solver differs under {mode:?} (round {round})"
                ),
            }
        }
    }
}
