//! End-to-end guarantees of the versioned update path: exact solvers are
//! **byte-identical** between the delta-overlay index and a from-scratch
//! rebuild at *every* version of a randomized update script, and the
//! incrementally maintained dynamic sampler stays pinned to a brute-force
//! recount through interleaved inserts, deletes (including
//! delete-then-reinsert of the same coordinates) and compaction
//! boundaries.

use maxrs::engine::{
    registry, BatchAnswer, BatchExecutor, BatchQuery, BatchRequest, EngineConfig, ExecutorConfig,
    Mutation, RangeShape, Registry, ScriptOutcome, ScriptStep, VersionedDataset,
};
use mrs_core::config::SamplingConfig;
use mrs_geom::{Point, Point2, WeightedPoint};
use proptest::prelude::*;
use rand::prelude::*;

fn executor(registry: &Registry) -> BatchExecutor<'_> {
    BatchExecutor::with_config(
        registry,
        ExecutorConfig { threads: Some(1), certify: true, ..ExecutorConfig::default() },
    )
}

/// Answers `query` from scratch over a materialized live snapshot — the
/// bump-epoch baseline every overlay answer must match bit for bit.
fn rebuild_answer<const D: usize>(
    registry: &Registry,
    live: std::sync::Arc<[WeightedPoint<D>]>,
    query: &BatchQuery<D>,
) -> BatchAnswer<D> {
    let request = BatchRequest::from_shared(live, Vec::new().into()).with_query(query.clone());
    let mut report = executor(registry).execute(&request);
    assert_eq!(report.stats.certify_failures, 0, "rebuild must certify");
    report.answers.remove(0)
}

/// Asserts two weighted answers are byte-identical (center and value bits).
fn assert_bits_equal<const D: usize>(a: &BatchAnswer<D>, b: &BatchAnswer<D>, context: &str) {
    let (a, b) = match (a.weighted(), b.weighted()) {
        (Some(a), Some(b)) => (a, b),
        _ => panic!("{context}: both answers must be weighted successes ({a:?} vs {b:?})"),
    };
    assert_eq!(
        a.placement.value.to_bits(),
        b.placement.value.to_bits(),
        "{context}: values differ ({} vs {})",
        a.placement.value,
        b.placement.value
    );
    for i in 0..D {
        assert_eq!(
            a.placement.center[i].to_bits(),
            b.placement.center[i].to_bits(),
            "{context}: centers differ on axis {i} ({:?} vs {:?})",
            a.placement.center,
            b.placement.center
        );
    }
}

#[test]
fn planar_exact_solvers_byte_identical_at_every_version() {
    let registry = registry();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    // Coordinates snap to a coarse lattice so deletes and re-inserts hit
    // existing coordinates often, and sweeps see plenty of ties.
    let lattice = |rng: &mut StdRng| {
        Point2::xy((rng.gen_range(0..30) as f64) * 0.4, (rng.gen_range(0..30) as f64) * 0.4)
    };
    let base: Vec<WeightedPoint<2>> =
        (0..250).map(|_| WeightedPoint::new(lattice(&mut rng), rng.gen_range(0.5..2.5))).collect();
    let dataset = VersionedDataset::new(base, Vec::new());
    let queries = [
        BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.1)),
        BatchQuery::weighted("exact-rect-2d", RangeShape::rect(2.0, 1.5)),
    ];
    for step in 0..30 {
        // One random mutation per step: inserts twice as often as deletes.
        let mutation = if rng.gen_bool(0.66) {
            Mutation::Insert {
                point: WeightedPoint::new(lattice(&mut rng), rng.gen_range(0.5..2.5)),
                color: None,
            }
        } else {
            let live = dataset.view().live_points();
            Mutation::Delete { point: live[rng.gen_range(0..live.len())].point }
        };
        let steps = [
            ScriptStep::Mutate(mutation),
            ScriptStep::Query(queries[0].clone()),
            ScriptStep::Query(queries[1].clone()),
        ];
        let report = executor(&registry).execute_script(&dataset, &steps);
        assert!(report.all_ok(), "step {step}: {:?}", report.outcomes);
        assert_eq!(report.stats.certify_failures, 0, "step {step}");
        let live = dataset.view().live_points();
        for (query, outcome) in queries.iter().zip(report.outcomes[1..].iter()) {
            let ScriptOutcome::Answer { answer, certified, version } = outcome else {
                panic!("query steps answer");
            };
            assert_eq!(*certified, Some(true), "step {step} v{version}");
            let rebuilt = rebuild_answer(&registry, live.clone(), query);
            assert_bits_equal(answer, &rebuilt, &format!("step {step} {}", query.solver()));
        }
    }
    assert_eq!(dataset.version(), 31, "every mutation bumps the version once");
}

#[test]
fn line_solvers_byte_identical_through_updates_and_compactions() {
    // The full registry includes the Theorem 1.3 batched solver; a tiny
    // compaction threshold forces several generation rebuilds mid-script.
    let registry = registry();
    let mut rng = StdRng::seed_from_u64(0xACE);
    let base: Vec<WeightedPoint<1>> = (0..120)
        .map(|_| {
            WeightedPoint::new(
                Point::new([(rng.gen_range(0..200) as f64) * 0.5]),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect();
    let dataset = VersionedDataset::new(base, Vec::new()).with_compaction_alpha(0.1);
    let queries = [
        BatchQuery::weighted("batched-interval-1d", RangeShape::interval(7.0)),
        BatchQuery::weighted("exact-interval-1d", RangeShape::interval(11.0)),
    ];
    let mut compacted = false;
    for step in 0..40 {
        let mutation = if rng.gen_bool(0.5) {
            Mutation::Insert {
                point: WeightedPoint::new(
                    Point::new([(rng.gen_range(0..200) as f64) * 0.5]),
                    rng.gen_range(0.5..2.0),
                ),
                color: None,
            }
        } else {
            let live = dataset.view().live_points();
            Mutation::Delete { point: live[rng.gen_range(0..live.len())].point }
        };
        let steps = [
            ScriptStep::Mutate(mutation),
            ScriptStep::Query(queries[0].clone()),
            ScriptStep::Query(queries[1].clone()),
        ];
        let report = executor(&registry).execute_script(&dataset, &steps);
        assert!(report.all_ok(), "step {step}");
        if let ScriptOutcome::Mutated { compacted: c, .. } = &report.outcomes[0] {
            compacted |= c;
        }
        let live = dataset.view().live_points();
        for (query, outcome) in queries.iter().zip(report.outcomes[1..].iter()) {
            let answer = outcome.answer().expect("query answered");
            assert_eq!(outcome.certified(), Some(true), "step {step}");
            let rebuilt = rebuild_answer(&registry, live.clone(), query);
            assert_bits_equal(answer, &rebuilt, &format!("step {step} {}", query.solver()));
        }
    }
    assert!(compacted, "α = 0.1 over 40 mutations must compact at least once");
    assert!(dataset.compactions() >= 1);
}

/// Pins the compaction threshold at the *exact* `α` boundary: the predicate
/// is strictly `delta > α · live`, so a delta of exactly `α · live` must NOT
/// compact, and the very next mutation must.  Insert-only scripts make the
/// boundary reachable exactly: after `k` inserts on a base of `n` points the
/// delta is `k` and the live size is `n + k`, so `n = 96`, `α = 0.25` puts
/// equality at `k = 32` (`32 == 0.25 · 128`).  Along the way every version
/// bumps by exactly one (compaction itself adds no bump), the delta resets
/// to zero at the compaction, and answers computed right before, at, and
/// after the boundary stay bit-identical to a cold rebuild — any derived
/// structure cached for the old generation must have been invalidated.
#[test]
fn compaction_at_exact_alpha_boundary_is_strict() {
    let registry = registry();
    let mut rng = StdRng::seed_from_u64(0xA1FA);
    let lattice = |rng: &mut StdRng| {
        Point2::xy((rng.gen_range(0..24) as f64) * 0.5, (rng.gen_range(0..24) as f64) * 0.5)
    };
    let base: Vec<WeightedPoint<2>> =
        (0..96).map(|_| WeightedPoint::new(lattice(&mut rng), rng.gen_range(0.5..2.0))).collect();
    let dataset = VersionedDataset::new(base, Vec::new()).with_compaction_alpha(0.25);
    assert_eq!(dataset.version(), 1);
    let query = BatchQuery::weighted("exact-disk-2d", RangeShape::ball(1.3));

    for step in 1..=33usize {
        let steps = [
            ScriptStep::Mutate(Mutation::Insert {
                point: WeightedPoint::new(lattice(&mut rng), rng.gen_range(0.5..2.0)),
                color: None,
            }),
            ScriptStep::Query(query.clone()),
        ];
        let report = executor(&registry).execute_script(&dataset, &steps);
        assert!(report.all_ok(), "step {step}: {:?}", report.outcomes);
        let ScriptOutcome::Mutated { version, compacted, .. } = &report.outcomes[0] else {
            panic!("mutation steps report a mutation outcome");
        };
        // Versions advance one per mutation, with no extra bump from the
        // compaction itself.
        assert_eq!(*version, 1 + step as u64, "step {step}");
        assert_eq!(dataset.version(), 1 + step as u64, "step {step}");
        // delta == α · live is NOT enough (strict inequality): at step 32
        // the delta sits exactly on the boundary and survives; step 33
        // (33 > 0.25 · 129) compacts and resets the delta.
        match step {
            32 => {
                assert!(!compacted, "step 32 sits exactly on the α boundary");
                assert_eq!(dataset.view().delta_size(), 32);
                assert_eq!(dataset.compactions(), 0);
            }
            33 => {
                assert!(*compacted, "step 33 crosses the α boundary");
                assert_eq!(dataset.view().delta_size(), 0, "compaction resets the delta");
                assert_eq!(dataset.compactions(), 1);
            }
            _ => {
                assert!(!compacted, "step {step} is below the α boundary");
                assert_eq!(dataset.view().delta_size(), step);
            }
        }
        // The overlay (and, at step 33, the freshly compacted generation)
        // answers bit-identically to a cold rebuild of the live snapshot.
        let ScriptOutcome::Answer { answer, certified, .. } = &report.outcomes[1] else {
            panic!("query steps answer");
        };
        assert_eq!(*certified, Some(true), "step {step}");
        let rebuilt = rebuild_answer(&registry, dataset.view().live_points(), &query);
        assert_bits_equal(answer, &rebuilt, &format!("step {step}"));
    }
    assert_eq!(dataset.view().live_points().len(), 96 + 33);
}

proptest! {
    /// Interleaved insert/delete/query scripts pin the delta-overlay index
    /// and the dynamic sampler against a brute-force rebuild at every
    /// step.  Coordinates come from a tiny lattice, so deleting and
    /// re-inserting the *same* coordinates is common, and a small α forces
    /// the script across compaction boundaries.
    #[test]
    fn interleaved_scripts_pin_overlay_and_sampler_to_brute_force(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec((0usize..3, 0usize..8, 0usize..8), 8..28),
    ) {
        let registry = Registry::with_config(EngineConfig::practical(0.3).with_seed(seed));
        let sampling = SamplingConfig::practical(0.3).with_seed(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let base: Vec<WeightedPoint<2>> = (0..20)
            .map(|_| {
                WeightedPoint::new(
                    Point2::xy(rng.gen_range(0..8) as f64 * 0.5, rng.gen_range(0..8) as f64 * 0.5),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        let dataset = VersionedDataset::new(base, Vec::new()).with_compaction_alpha(0.2);
        let radius = 0.8;
        for &(kind, xi, yi) in &ops {
            let coords = Point2::xy(xi as f64 * 0.5, yi as f64 * 0.5);
            let mutation = match kind {
                0 | 1 => Mutation::Insert {
                    point: WeightedPoint::new(coords, 1.0 + (xi + yi) as f64 * 0.25),
                    color: None,
                },
                _ => Mutation::Delete { point: coords },
            };
            let steps = [
                ScriptStep::Mutate(mutation),
                ScriptStep::Query(BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius))),
            ];
            let report = executor(&registry).execute_script(&dataset, &steps);
            let view = dataset.view();
            let live = view.live_points();

            // 1. The exact overlay answer equals a from-scratch rebuild,
            //    bit for bit, and certifies.
            let ScriptOutcome::Answer { answer, certified, .. } = &report.outcomes[1] else {
                panic!("query step answers");
            };
            prop_assert_eq!(*certified, Some(true));
            let rebuilt = rebuild_answer(
                &registry,
                live.clone(),
                &BatchQuery::weighted("exact-disk-2d", RangeShape::ball(radius)),
            );
            let (a, b) = (answer.weighted().unwrap(), rebuilt.weighted().unwrap());
            prop_assert_eq!(a.placement.value.to_bits(), b.placement.value.to_bits());
            prop_assert_eq!(a.placement.center[0].to_bits(), b.placement.center[0].to_bits());
            prop_assert_eq!(a.placement.center[1].to_bits(), b.placement.center[1].to_bits());

            // 2. The overlay's recount primitive agrees with a brute-force
            //    scan of the live snapshot.
            let probe = Point2::xy((xi as f64) * 0.5, (yi as f64) * 0.5);
            let brute: f64 = live
                .iter()
                .filter(|p| p.point.dist(&probe) <= radius * (1.0 + 1e-12) + 1e-12)
                .map(|p| p.weight)
                .sum();
            prop_assert!((view.ball_weight(&probe, radius) - brute).abs() < 1e-9);

            // 3. The incrementally maintained sampler reports an exact
            //    recount of its own center and respects its guarantee
            //    against the true optimum.
            if live.is_empty() {
                continue;
            }
            let (tracker_view, best) =
                dataset.dynamic_ball_best(radius, &sampling).expect("non-negative weights");
            prop_assert!(tracker_view.version() >= view.version());
            let recount: f64 = live
                .iter()
                .filter(|p| p.point.dist(&best.center) <= radius * (1.0 + 1e-12) + 1e-12)
                .map(|p| p.weight)
                .sum();
            prop_assert!(
                (best.value - recount).abs() < 1e-9,
                "sampler value {} vs recount {recount}",
                best.value
            );
            let exact = rebuilt.weighted().unwrap().placement.value;
            prop_assert!(
                best.value >= (0.5 - 0.3) * exact - 1e-9,
                "sampler {} below guarantee of exact {exact}",
                best.value
            );
        }
    }
}
