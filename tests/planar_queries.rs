//! Integration tests for the planar query family: exact rectangle / disk /
//! colored-rectangle solvers, their batched drivers, and the CLI front-end,
//! exercised together on shared workloads.

use maxrs::batched::{batched_disk_maxrs, batched_rect_maxrs};
use maxrs::cli::{parse_args, run_on_text, Command};
use maxrs::core::exact::colored_rect2d::exact_colored_rect;
use maxrs::prelude::*;
use rand::prelude::*;

fn random_weighted(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            WeightedPoint::new(
                Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect()
}

#[test]
fn square_rectangle_dominates_inscribed_disk_and_is_dominated_by_circumscribed_disk() {
    // A disk of radius r fits inside a 2r x 2r square and contains a square of
    // side r√2, so the optimal covered weights must be ordered accordingly.
    let points = random_weighted(300, 10.0, 1);
    for radius in [0.5, 1.0, 1.5] {
        let disk = max_disk_placement(&points, radius);
        let outer_square = max_rect_placement(&points, 2.0 * radius, 2.0 * radius);
        let side = radius * std::f64::consts::SQRT_2;
        let inner_square = max_rect_placement(&points, side, side);
        assert!(
            outer_square.value + 1e-9 >= disk.value,
            "radius {radius}: square {} < disk {}",
            outer_square.value,
            disk.value
        );
        assert!(
            disk.value + 1e-9 >= inner_square.value,
            "radius {radius}: disk {} < inscribed square {}",
            disk.value,
            inner_square.value
        );
    }
}

#[test]
fn batched_planar_drivers_agree_with_single_queries() {
    let points = random_weighted(120, 8.0, 2);
    let sizes = vec![(0.5, 0.5), (1.0, 2.0), (3.0, 3.0)];
    let rects = batched_rect_maxrs(&points, &sizes);
    for (&(w, h), batched) in sizes.iter().zip(&rects) {
        assert_eq!(batched.value, max_rect_placement(&points, w, h).value);
    }
    let radii = vec![0.5, 1.0, 2.0];
    let disks = batched_disk_maxrs(&points, &radii);
    for (&r, batched) in radii.iter().zip(&disks) {
        assert_eq!(batched.value, max_disk_placement(&points, r).value);
    }
}

#[test]
fn colored_rectangle_and_colored_disk_are_consistent_on_shared_workloads() {
    // The colored rectangle of side 2r always covers at least as many colors
    // as the best disk of radius r (the disk fits inside the square).
    let mut rng = StdRng::seed_from_u64(3);
    let sites: Vec<ColoredSite<2>> = (0..200)
        .map(|_| {
            ColoredSite::new(
                Point2::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)),
                rng.gen_range(0..15usize),
            )
        })
        .collect();
    for radius in [0.6, 1.0] {
        let disk = output_sensitive_colored_disk(&sites, radius);
        let square = exact_colored_rect(&sites, 2.0 * radius, 2.0 * radius);
        assert!(
            square.distinct >= disk.distinct,
            "radius {radius}: square {} < disk {}",
            square.distinct,
            disk.distinct
        );
    }
}

#[test]
fn cli_round_trip_matches_the_library() {
    let points = random_weighted(60, 5.0, 4);
    let csv: String =
        points.iter().map(|p| format!("{},{},{}\n", p.point.x(), p.point.y(), p.weight)).collect();
    let expected = max_disk_placement(&points, 1.0);

    let args: Vec<String> =
        ["disk", "--radius", "1.0", "points.csv"].iter().map(|s| s.to_string()).collect();
    let command = parse_args(&args).unwrap();
    assert_eq!(command, Command::Disk { radius: 1.0, path: "points.csv".into() });
    let report = run_on_text(&command, &csv).unwrap();
    let expected_fragment = format!("covered weight = {:.6}", expected.value);
    assert!(
        report.contains(&expected_fragment),
        "CLI report `{report}` does not contain `{expected_fragment}`"
    );
}

#[test]
fn approximations_never_beat_their_exact_counterparts() {
    let points = random_weighted(400, 9.0, 5);
    let instance = WeightedBallInstance::new(points.clone(), 1.0);
    let exact = max_disk_placement(&points, 1.0);
    for eps in [0.15, 0.3, 0.45] {
        let approx = approx_static_ball(&instance, SamplingConfig::practical(eps).with_seed(9));
        assert!(approx.value <= exact.value + 1e-9);
        assert!(approx.value >= (0.5 - eps) * exact.value - 1e-9);
    }
}
