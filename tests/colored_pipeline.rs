//! Cross-crate integration tests for the colored MaxRS pipeline: the three
//! algorithms of the paper (Theorem 1.5 sampling, Theorem 4.6 output-sensitive
//! exact, Theorem 1.6 color sampling) must be mutually consistent on shared
//! workloads.

use maxrs::core::exact::colored_disk2d::exact_colored_disk;
use maxrs::core::technique2::approx_colored_disk_sampling_with_details;
use maxrs::prelude::*;
use rand::prelude::*;

fn clustered_sites(
    clusters: usize,
    per_cluster: usize,
    colors: usize,
    seed: u64,
) -> Vec<ColoredSite<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sites = Vec::new();
    for c in 0..clusters {
        let cx = (c as f64) * 7.0;
        let cy = rng.gen_range(0.0..3.0);
        for _ in 0..per_cluster {
            sites.push(ColoredSite::new(
                Point2::xy(cx + rng.gen_range(-0.8..0.8), cy + rng.gen_range(-0.8..0.8)),
                rng.gen_range(0..colors),
            ));
        }
    }
    sites
}

#[test]
fn output_sensitive_matches_the_candidate_oracle() {
    for seed in 0..4u64 {
        let sites = clustered_sites(3, 40, 10, seed);
        let fast = output_sensitive_colored_disk(&sites, 1.0);
        let oracle = exact_colored_disk(&sites, 1.0);
        assert_eq!(fast.distinct, oracle.distinct, "seed {seed}");
    }
}

#[test]
fn union_exact_and_output_sensitive_agree_for_non_unit_radius() {
    for seed in 10..13u64 {
        let sites = clustered_sites(2, 35, 8, seed);
        for radius in [0.6, 1.3, 2.2] {
            let a = exact_colored_disk_by_union(&sites, radius);
            let b = output_sensitive_colored_disk(&sites, radius);
            assert_eq!(a.distinct, b.distinct, "seed {seed} radius {radius}");
        }
    }
}

#[test]
fn sampling_technique_stays_within_its_guarantee() {
    for seed in 0..3u64 {
        let sites = clustered_sites(3, 60, 15, seed);
        let exact = output_sensitive_colored_disk(&sites, 1.0);
        let instance = ColoredBallInstance::new(sites.clone(), 1.0);
        let approx =
            approx_colored_ball(&instance, SamplingConfig::practical(0.25).with_seed(seed));
        assert!(
            approx.distinct as f64 >= 0.25 * exact.distinct as f64,
            "seed {seed}: {} vs {}",
            approx.distinct,
            exact.distinct
        );
        assert!(approx.distinct <= exact.distinct);
    }
}

#[test]
fn color_sampling_is_near_exact_on_large_opt_instances() {
    // One dense cluster where almost every color is present: opt is large, and
    // the (1 − ε) algorithm should get within ε of it.
    let mut rng = StdRng::seed_from_u64(77);
    let colors = 100usize;
    let mut sites = Vec::new();
    for color in 0..colors {
        for _ in 0..3 {
            sites.push(ColoredSite::new(
                Point2::xy(rng.gen_range(0.0..1.2), rng.gen_range(0.0..1.2)),
                color,
            ));
        }
    }
    // Distractor cluster with only a few colors.
    for _ in 0..60 {
        sites.push(ColoredSite::new(
            Point2::xy(rng.gen_range(20.0..22.0), rng.gen_range(0.0..2.0)),
            rng.gen_range(0..5),
        ));
    }
    let instance = ColoredBallInstance::new(sites.clone(), 1.0);
    let exact = output_sensitive_colored_disk(&sites, 1.0);
    assert_eq!(exact.distinct, colors);

    let mut config = ColorSamplingConfig::new(0.2).with_seed(9);
    config.c1 = 0.5;
    let details = approx_colored_disk_sampling_with_details(&instance, config);
    assert!(
        details.placement.distinct as f64 >= 0.8 * exact.distinct as f64,
        "(1 − ε) guarantee violated: {} vs {}",
        details.placement.distinct,
        exact.distinct
    );
    assert!(details.opt_estimate >= exact.distinct / 4);
}

#[test]
fn colored_results_never_exceed_the_number_of_colors_present() {
    for seed in 20..24u64 {
        let sites = clustered_sites(2, 30, 6, seed);
        let instance = ColoredBallInstance::new(sites.clone(), 1.0);
        let bound = instance.distinct_colors();
        assert!(output_sensitive_colored_disk(&sites, 1.0).distinct <= bound);
        assert!(approx_colored_ball(&instance, SamplingConfig::practical(0.3)).distinct <= bound);
        assert!(
            approx_colored_disk_sampling(&instance, ColorSamplingConfig::new(0.3)).distinct
                <= bound
        );
    }
}
