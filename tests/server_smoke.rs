//! End-to-end smoke test of the `mrs_server` query service: boot a real
//! server on an ephemeral port, upload datasets over HTTP, and drive every
//! registered batch-capable solver through `/query` and `/batch`, checking
//! the answers against direct engine dispatch and the `/stats` counters
//! against the resident-index and answer-cache contracts.

use maxrs::server::full_registry;
use maxrs::server::{serve, Client, Json, ServerConfig};
use mrs_core::engine::{
    BatchExecutor, BatchQuery, BatchRequest, DimSupport, EngineConfig, ProblemKind, RangeShape,
    ShapeClass,
};

/// The engine seed shared by the server and the direct-dispatch reference:
/// randomized solvers constructed from the same seeded config return
/// identical answers, so equality assertions hold even for the samplers.
const SEED: u64 = 20250727;

/// The planar dataset: a weighted cluster of three colored points near the
/// origin plus a heavier far point, the same shape the engine tests use.
const PLANAR_CSV: &str = "0,0,1,0\n0.4,0,1,1\n0,0.4,1,2\n9,9,2,0\n";

/// The 1-D dataset: four unit points packing into a length-2 interval plus
/// a heavy outlier.
const LINE_CSV: &str = "0\n1\n1.5\n2\n10,4\n";

fn boot() -> (maxrs::server::ServerHandle, Client) {
    let server = serve(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        seed: Some(SEED),
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (status, _) = client.post("/datasets/planar", PLANAR_CSV).expect("upload planar");
    assert_eq!(status, 200);
    let (status, _) = client.post("/datasets/ticks?dim=1", LINE_CSV).expect("upload line");
    assert_eq!(status, 200);
    (server, client)
}

fn parse(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("unparseable body: {e}: {body}"))
}

fn stat_of<'j>(stats: &'j Json, dataset: &str) -> &'j Json {
    stats
        .get("datasets")
        .and_then(Json::as_arr)
        .and_then(|all| all.iter().find(|d| d.get("name").and_then(Json::as_str) == Some(dataset)))
        .unwrap_or_else(|| panic!("dataset {dataset} missing from /stats"))
}

/// Every solver the server can dispatch for the uploaded datasets answers
/// `/query`, and the answer matches direct (seeded) engine dispatch.
#[test]
fn every_dispatchable_solver_matches_direct_dispatch() {
    let (server, mut client) = boot();
    let registry = full_registry(EngineConfig::practical(0.25).with_seed(SEED));
    let planar_set = mrs_core::input::parse_point_set_csv(PLANAR_CSV).unwrap();
    let line_points = mrs_core::input::parse_line_csv(LINE_CSV).unwrap();

    let mut covered = 0;
    for descriptor in registry.descriptors() {
        // The query the descriptor admits: a unit ball or a unit box.
        let (shape_json, planar_shape) = match descriptor.shape {
            // `Any` routes per query (the auto solver); probe it with a ball.
            ShapeClass::Ball | ShapeClass::Any => (r#"{"ball":1.0}"#, RangeShape::<2>::ball(1.0)),
            ShapeClass::AxisBox => (r#"{"box":[1.0,1.0]}"#, RangeShape::rect(1.0, 1.0)),
        };
        let (dataset, supports) = match descriptor.dims {
            DimSupport::Fixed(1) => ("ticks", true),
            DimSupport::Fixed(2) => ("planar", true),
            DimSupport::Any => ("planar", true),
            DimSupport::Fixed(_) => ("planar", false),
        };
        if !supports || (dataset == "ticks" && descriptor.shape == ShapeClass::AxisBox) {
            continue;
        }
        // The problem field disambiguates names registered on both sides
        // (the auto router is); harmless for the single-problem solvers.
        let problem = match descriptor.problem {
            ProblemKind::Weighted => "weighted",
            ProblemKind::Colored => "colored",
        };
        let body = format!(
            r#"{{"dataset":"{dataset}","solver":"{}","problem":"{problem}","shape":{shape_json}}}"#,
            descriptor.name
        );
        let (status, response) = client.post("/query", &body).expect("query I/O");
        assert_eq!(status, 200, "{}: {response}", descriptor.name);
        let parsed = parse(&response);
        let answer = parsed.get("answer").expect("answer object");
        assert_eq!(
            answer.get("certified").and_then(Json::as_bool),
            Some(true),
            "{}: uncertified: {response}",
            descriptor.name
        );

        // Reference: the same query through a fresh seeded engine.
        match descriptor.problem {
            ProblemKind::Weighted => {
                let expected = if dataset == "ticks" {
                    let request = BatchRequest::<1>::over_points(line_points.clone()).with_query(
                        BatchQuery::weighted(descriptor.name, RangeShape::<1>::ball(1.0)),
                    );
                    let report = BatchExecutor::new(&registry).execute(&request);
                    report.weighted(0).expect("reference answer").placement.value
                } else {
                    let request = BatchRequest::new(planar_set.points.clone(), Vec::new())
                        .with_query(BatchQuery::weighted(descriptor.name, planar_shape));
                    let report = BatchExecutor::new(&registry).execute(&request);
                    report.weighted(0).expect("reference answer").placement.value
                };
                let got = answer.get("value").and_then(Json::as_f64).expect("value");
                assert!(
                    (got - expected).abs() < 1e-9,
                    "{}: served {got} vs direct {expected}",
                    descriptor.name
                );
            }
            ProblemKind::Colored => {
                let request = BatchRequest::new(Vec::new(), planar_set.sites.clone())
                    .with_query(BatchQuery::colored(descriptor.name, planar_shape));
                let report = BatchExecutor::new(&registry).execute(&request);
                let expected = report.colored(0).expect("reference answer").placement.distinct;
                let got = answer.get("distinct").and_then(Json::as_f64).expect("distinct");
                assert_eq!(got as usize, expected, "{}", descriptor.name);
            }
        }
        covered += 1;
    }
    assert!(covered >= 10, "only {covered} solvers were exercised");
    server.shutdown();
}

/// Repeated queries hit the answer cache; `/stats` counters move; a dataset
/// reload (epoch bump) invalidates its cached answers.
#[test]
fn answer_cache_hits_and_epoch_invalidation() {
    let (server, mut client) = boot();
    let body = r#"{"dataset":"planar","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;

    let (_, first) = client.post("/query", body).expect("query I/O");
    assert_eq!(parse(&first).get("cached").and_then(Json::as_bool), Some(false));
    for _ in 0..3 {
        let (_, again) = client.post("/query", body).expect("query I/O");
        let parsed = parse(&again);
        assert_eq!(parsed.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            parsed.get("answer").and_then(|a| a.get("value")).and_then(Json::as_f64),
            Some(3.0)
        );
    }
    let (_, stats) = client.get("/stats").expect("stats I/O");
    let stats = parse(&stats);
    let cache = stats.get("cache").expect("cache counters");
    assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(3.0));
    assert!(cache.get("misses").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0);
    assert_eq!(cache.get("entries").and_then(Json::as_f64), Some(1.0));

    // Reload: the epoch bumps, so the same query recomputes.
    let (status, _) = client.post("/datasets/planar", PLANAR_CSV).expect("re-upload");
    assert_eq!(status, 200);
    let (_, after) = client.post("/query", body).expect("query I/O");
    assert_eq!(
        parse(&after).get("cached").and_then(Json::as_bool),
        Some(false),
        "an epoch bump must invalidate cached answers"
    );
    server.shutdown();
}

/// The resident `SharedIndex` is built exactly once across many requests,
/// asserted through the `/stats` build counters (the acceptance criterion).
#[test]
fn resident_index_builds_exactly_once_across_requests() {
    let (server, mut client) = boot();
    // Interval queries against the 1-D dataset: the sorted event list (and
    // Fenwick certifier) build on the first request and never again.
    let body = r#"{"dataset":"ticks","solver":"batched-interval-1d","shape":{"interval":2.0},"cache":false}"#;
    let (status, response) = client.post("/query", body).expect("query I/O");
    assert_eq!(status, 200, "{response}");
    let (_, stats) = client.get("/stats").expect("stats I/O");
    let builds_after_first =
        stat_of(&parse(&stats), "ticks").get("index_builds").and_then(Json::as_f64).unwrap();
    assert!(builds_after_first >= 1.0, "the first query must build the index");

    for _ in 0..10 {
        let (status, _) = client.post("/query", body).expect("query I/O");
        assert_eq!(status, 200);
    }
    let (_, stats) = client.get("/stats").expect("stats I/O");
    let stats = parse(&stats);
    let ticks = stat_of(&stats, "ticks");
    assert_eq!(
        ticks.get("index_builds").and_then(Json::as_f64),
        Some(builds_after_first),
        "the resident index must be built exactly once"
    );
    assert_eq!(ticks.get("requests").and_then(Json::as_f64), Some(11.0));
    // Per-endpoint stats tracked the queries.
    let query_endpoint = stats
        .get("endpoints")
        .and_then(Json::as_arr)
        .and_then(|all| {
            all.iter().find(|e| e.get("endpoint").and_then(Json::as_str) == Some("query"))
        })
        .expect("query endpoint tracked");
    assert_eq!(query_endpoint.get("requests").and_then(Json::as_f64), Some(11.0));
    assert!(
        query_endpoint
            .get("latency")
            .and_then(|l| l.get("p95_us"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    server.shutdown();
}

/// `/batch` answers a mixed batch in request order, reports cache hits, and
/// agrees with the equivalent single queries.
#[test]
fn batch_endpoint_merges_cache_hits_and_executions() {
    let (server, mut client) = boot();
    // Warm one query into the cache.
    let single = r#"{"dataset":"planar","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
    client.post("/query", single).expect("query I/O");

    let batch = r#"{"dataset":"planar","queries":[
        {"solver":"exact-disk-2d","shape":{"ball":1.0}},
        {"solver":"exact-rect-2d","shape":{"box":[1.0,1.0]}},
        {"solver":"output-sensitive-colored-disk","shape":{"ball":1.0}},
        {"solver":"exact-disk-2d","shape":{"ball":0.1}}
    ]}"#;
    let (status, response) = client.post("/batch", batch).expect("batch I/O");
    assert_eq!(status, 200, "{response}");
    let parsed = parse(&response);
    let answers = parsed.get("answers").and_then(Json::as_arr).expect("answers");
    assert_eq!(answers.len(), 4);
    assert_eq!(answers[0].get("cached").and_then(Json::as_bool), Some(true));
    let value = |i: usize, field: &str| {
        answers[i].get("answer").and_then(|a| a.get(field)).and_then(Json::as_f64)
    };
    assert_eq!(value(0, "value"), Some(3.0));
    assert_eq!(value(1, "value"), Some(3.0));
    assert_eq!(value(2, "distinct"), Some(3.0));
    assert_eq!(value(3, "value"), Some(2.0));
    let stats = parsed.get("stats").expect("batch stats");
    assert_eq!(stats.get("queries").and_then(Json::as_f64), Some(4.0));
    assert_eq!(stats.get("cache_hits").and_then(Json::as_f64), Some(1.0));
    assert_eq!(stats.get("executed").and_then(Json::as_f64), Some(3.0));
    assert_eq!(stats.get("certified").and_then(Json::as_f64), Some(3.0));
    assert_eq!(stats.get("certify_failures").and_then(Json::as_f64), Some(0.0));
    server.shutdown();
}

/// Streaming updates over real TCP: mutation bodies bump versions, the
/// answer cache invalidates fine-grained, answers carry the version they
/// were computed at, and the incrementally maintained dynamic tracker
/// follows the stream.
#[test]
fn mutations_stream_through_versions_over_tcp() {
    let (server, mut client) = boot();
    let body = r#"{"dataset":"planar","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;

    // Prime the cache at version 1.
    let (_, first) = client.post("/query", body).expect("query I/O");
    let parsed = parse(&first);
    assert_eq!(
        parsed.get("answer").and_then(|a| a.get("version")).and_then(Json::as_f64),
        Some(1.0)
    );

    // Insert a heavy cluster near the origin: one request, one version.
    let (status, response) =
        client.post("/datasets/planar/insert", "0.2,0.2,4\n0.2,0.3,4,5\n").expect("insert I/O");
    assert_eq!(status, 200, "{response}");
    let mutated = parse(&response);
    assert_eq!(
        mutated.get("mutated").and_then(|m| m.get("version")).and_then(Json::as_f64),
        Some(2.0)
    );
    assert!(
        mutated.get("mutated").and_then(|m| m.get("cache_invalidated")).and_then(Json::as_f64)
            >= Some(1.0),
        "{response}"
    );

    // The repeated query recomputes at version 2 and sees the new mass
    // (3 + 4 + 4 = 11), certified through the delta overlay.
    let (_, after) = client.post("/query", body).expect("query I/O");
    let parsed = parse(&after);
    assert_eq!(parsed.get("cached").and_then(Json::as_bool), Some(false));
    let answer = parsed.get("answer").expect("answer");
    assert_eq!(answer.get("version").and_then(Json::as_f64), Some(2.0));
    assert_eq!(answer.get("value").and_then(Json::as_f64), Some(11.0));
    assert_eq!(answer.get("certified").and_then(Json::as_bool), Some(true));

    // The dynamic tracker answers the same contents incrementally.
    let dynamic =
        r#"{"dataset":"planar","solver":"dynamic-ball","shape":{"ball":1.0},"cache":false}"#;
    let (_, response) = client.post("/query", dynamic).expect("dynamic I/O");
    let answer = parse(&response);
    let answer = answer.get("answer").expect("answer");
    assert_eq!(answer.get("value").and_then(Json::as_f64), Some(11.0));
    assert_eq!(answer.get("certified").and_then(Json::as_bool), Some(true));

    // Delete the cluster again (version 3) and verify /stats counters.
    let (status, response) =
        client.post("/datasets/planar/delete", "0.2,0.2\n0.2,0.3\n").expect("delete I/O");
    assert_eq!(status, 200, "{response}");
    let (_, third) = client.post("/query", body).expect("query I/O");
    let parsed = parse(&third);
    assert_eq!(
        parsed.get("answer").and_then(|a| a.get("value")).and_then(Json::as_f64),
        Some(3.0),
        "the delete must restore the original optimum"
    );
    let (_, stats) = client.get("/stats").expect("stats I/O");
    let stats = parse(&stats);
    let planar = stat_of(&stats, "planar");
    assert_eq!(planar.get("version").and_then(Json::as_f64), Some(3.0));
    assert!(planar.get("delta").and_then(Json::as_f64).is_some());
    assert!(
        stats.get("cache").and_then(|c| c.get("invalidations")).and_then(Json::as_f64) >= Some(1.0)
    );
    server.shutdown();
}

/// The observability surface over real TCP: every response carries an
/// `X-Request-Id`, executed queries leave retrievable phase traces at
/// `/debug/traces` keyed by it, and `/metrics` serves well-formed
/// Prometheus text with per-endpoint, per-solver and per-dataset series.
#[test]
fn metrics_traces_and_request_ids_over_tcp() {
    let (server, mut client) = boot();

    // Request ids: present on every response, unique per request, echoed
    // in the answer JSON's `trace` field.
    let body = r#"{"dataset":"planar","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
    let (status, headers, first) =
        client.request_with_headers("POST", "/query", body).expect("query I/O");
    assert_eq!(status, 200, "{first}");
    let first_id = headers
        .iter()
        .find(|(name, _)| name == "x-request-id")
        .map(|(_, value)| value.clone())
        .expect("every response carries X-Request-Id");
    assert_eq!(parse(&first).get("trace").and_then(Json::as_str), Some(first_id.as_str()));
    let (_, headers, _) = client.request_with_headers("GET", "/healthz", "").expect("healthz I/O");
    let second_id = headers
        .iter()
        .find(|(name, _)| name == "x-request-id")
        .map(|(_, value)| value.clone())
        .expect("non-query responses carry X-Request-Id too");
    assert_ne!(first_id, second_id, "request ids are unique");

    // The executed query's phase trace is retrievable by its request id.
    let (status, traces) = client.get(&format!("/debug/traces?id={first_id}")).expect("traces I/O");
    assert_eq!(status, 200, "{traces}");
    let traces = parse(&traces);
    let listed = traces.get("traces").and_then(Json::as_arr).expect("traces array");
    assert_eq!(listed.len(), 1, "one executed query, one trace");
    let trace = &listed[0];
    assert_eq!(trace.get("trace").and_then(Json::as_str), Some(first_id.as_str()));
    assert_eq!(trace.get("dataset").and_then(Json::as_str), Some("planar"));
    assert_eq!(trace.get("solver").and_then(Json::as_str), Some("exact-disk-2d"));
    assert_eq!(trace.get("ok").and_then(Json::as_bool), Some(true));
    let phases = trace.get("phases_us").expect("phase timings");
    assert!(phases.get("solve").and_then(Json::as_f64).is_some());
    let phase_sum: f64 = ["cache_lookup", "plan", "index_build", "solve", "certify", "render"]
        .iter()
        .map(|p| phases.get(p).and_then(Json::as_f64).unwrap_or(0.0))
        .sum();
    let total = trace.get("total_us").and_then(Json::as_f64).expect("total");
    // Each of the six phases truncates to whole µs independently of the
    // total, so the rendered sum may undershoot by up to 6 µs.
    assert!((phase_sum - total).abs() <= 6.0, "phases {phase_sum} must sum to total {total}");

    // A cache hit adds no new trace.
    client.post("/query", body).expect("cache-hit I/O");
    let (_, all) = client.get("/debug/traces").expect("traces I/O");
    let count = parse(&all).get("traces").and_then(Json::as_arr).map(<[Json]>::len);
    assert_eq!(count, Some(1), "cache hits must not produce traces");

    // /metrics: Prometheus text with the full endpoint label set, the
    // observed solver and dataset series, and monotone histogram buckets.
    let (status, headers, metrics) =
        client.request_with_headers("GET", "/metrics", "").expect("metrics I/O");
    assert_eq!(status, 200);
    let content_type = headers
        .iter()
        .find(|(name, _)| name == "content-type")
        .map(|(_, value)| value.as_str())
        .expect("content type");
    assert!(content_type.starts_with("text/plain"), "got {content_type}");
    for needle in [
        "# TYPE maxrs_request_duration_seconds histogram",
        r#"maxrs_request_duration_seconds_bucket{endpoint="query",le="+Inf"}"#,
        r#"maxrs_request_duration_seconds_bucket{endpoint="batch",le="+Inf"}"#,
        r#"maxrs_solver_duration_seconds_bucket{solver="exact-disk-2d",le="+Inf"}"#,
        r#"maxrs_dataset_query_duration_seconds_bucket{dataset="planar",le="+Inf"}"#,
        "maxrs_cache_hits_total 1",
        "maxrs_uptime_seconds",
    ] {
        assert!(metrics.contains(needle), "missing `{needle}` in /metrics:\n{metrics}");
    }

    // /stats carries the new tail quantile.
    let (_, stats) = client.get("/stats").expect("stats I/O");
    let stats = parse(&stats);
    let endpoints = stats.get("endpoints").and_then(Json::as_arr).expect("endpoints");
    for endpoint in endpoints {
        assert!(
            endpoint.get("latency").and_then(|l| l.get("p99_us")).and_then(Json::as_f64).is_some(),
            "every endpoint latency summary reports p99"
        );
    }
    server.shutdown();
}

/// Basic service-surface sanity over real TCP: health, solver listing,
/// dataset listing, error statuses, and graceful shutdown.
#[test]
fn service_surface_and_graceful_shutdown() {
    let (server, mut client) = boot();
    let (status, health) = client.get("/healthz").expect("healthz I/O");
    assert_eq!(status, 200);
    assert!(health.contains("\"ok\""));

    let (_, solvers) = client.get("/solvers").expect("solvers I/O");
    for name in ["exact-disk-2d", "batched-interval-1d", "approx-colored-disk-sampling"] {
        assert!(solvers.contains(name), "missing {name}: {solvers}");
    }
    let (_, datasets) = client.get("/datasets").expect("datasets I/O");
    assert!(datasets.contains("\"planar\"") && datasets.contains("\"ticks\""));

    let (status, _) = client.post("/query", "{}").expect("bad query I/O");
    assert_eq!(status, 400);
    let (status, _) = client
        .post("/query", r#"{"dataset":"nope","solver":"exact-disk-2d","shape":{"ball":1}}"#)
        .expect("missing dataset I/O");
    assert_eq!(status, 404);
    let (status, _) = client.get("/no-such-route").expect("404 I/O");
    assert_eq!(status, 404);

    // Graceful shutdown over HTTP: the server stops accepting afterwards.
    let addr = server.addr();
    let (status, _) = client.post("/shutdown", "").expect("shutdown I/O");
    assert_eq!(status, 200);
    server.join();
    let answered = Client::connect(addr).and_then(|mut c| c.get("/healthz")).is_ok();
    assert!(!answered, "a shut-down server must not answer");
}
