//! Metamorphic equivalence of the whole solver registry.
//!
//! Every registered solver — built-ins, the external batched 1-D solver,
//! and the `auto` router — is driven through identity-preserving transforms
//! of dyadic-lattice instances, and its answers must transform accordingly:
//! certified in every frame, pull-backable through the inverse map, exact
//! solvers bit-equal across frames, and guarantee ratios honored against an
//! exact reference wherever one exists (see
//! `mrs_core::engine::metamorphic` for the verifier contract).
//!
//! Six transform classes run per solver: `translate`, `scale`, `reflect`,
//! `permute`, `dup-zero-weight`/`color-remap` from the catalog, plus
//! *split-into-script* here — replaying the instance as insert mutations
//! through a [`VersionedDataset`] and answering through the delta-overlay
//! executor path (including the dynamic tracker for `dynamic-ball`), so the
//! overlay answer is verified against the cold one-shot build.
//!
//! The sweep crosses all three kernel modes and two thread counts.  By
//! default it runs in smoke mode (two case sizes, full mode×thread sweep on
//! the smallest); set `METAMORPHIC_FULL=1` for the full grid.  Cases run
//! smallest-first, so the first reported violation is near-minimal — the
//! vendored `proptest` subset does not shrink.

use std::sync::{Mutex, MutexGuard};

use maxrs::batched::engine::full_registry;
use maxrs::core::input::{ColoredPlacement, Placement};
use maxrs::engine::metamorphic::{
    colored_variants, dyadic_points, dyadic_sites, verify_colored, verify_weighted,
    weighted_variants, Variant,
};
use maxrs::engine::{
    BatchExecutor, BatchQuery, BatchRequest, ColoredInstance, EngineConfig, ExecutorConfig,
    GuaranteeClass, Mutation, ProblemKind, RangeShape, Registry, ScriptOutcome, ScriptStep,
    ShapeClass, SolverReport, VersionedDataset, WeightedInstance,
};
use maxrs::geom::kernels::{kernel_mode, set_kernel_mode, KernelMode};
use maxrs::geom::SimilarityMap;
use proptest::prelude::*;

const MODES: [KernelMode; 3] = [KernelMode::ScalarF64, KernelMode::LanedF64, KernelMode::SieveF32];
const THREADS: [usize; 2] = [1, 3];

/// The kernel mode is process-global; every test in this binary serializes
/// through one lock and restores the previous mode on drop.
static MODE_LOCK: Mutex<()> = Mutex::new(());

struct ModeGuard {
    before: KernelMode,
    _lock: MutexGuard<'static, ()>,
}

impl ModeGuard {
    fn acquire() -> Self {
        let lock = MODE_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        Self { before: kernel_mode(), _lock: lock }
    }
}

impl Drop for ModeGuard {
    fn drop(&mut self) {
        set_kernel_mode(self.before);
    }
}

fn config() -> EngineConfig {
    // Practical caps keep the d ≥ 3 samplers affordable; the fixed seed
    // makes every randomized report reproducible.
    EngineConfig::practical(0.3).with_seed(0x4D45_5441)
}

fn full_sweep() -> bool {
    std::env::var_os("METAMORPHIC_FULL").is_some()
}

/// Case sizes, smallest first (the harness's substitute for shrinking).
fn sizes() -> Vec<usize> {
    if full_sweep() {
        vec![5, 14, 32, 64]
    } else {
        vec![5, 14]
    }
}

/// Mode × thread combinations for case `index`: the smallest case sweeps the
/// full grid; later (larger) cases rotate through the combinations so every
/// mode and thread count still sees a large instance without a quadratic
/// blow-up of the smoke run.
fn combos(index: usize) -> Vec<(KernelMode, usize)> {
    if index == 0 || full_sweep() {
        MODES.iter().flat_map(|&m| THREADS.iter().map(move |&t| (m, t))).collect()
    } else {
        vec![(MODES[index % 3], THREADS[index % 2])]
    }
}

fn shape_class<const D: usize>(shape: &RangeShape<D>) -> ShapeClass {
    if shape.ball_radius().is_some() {
        ShapeClass::Ball
    } else {
        ShapeClass::AxisBox
    }
}

/// Solves one weighted instance by `solver` through the batch executor (the
/// same path the CLI and server take, covering the index-shared kernels),
/// with certification on.
fn weighted_report<const D: usize>(
    registry: &Registry,
    solver: &str,
    instance: &WeightedInstance<D>,
    threads: usize,
) -> SolverReport<Placement<D>> {
    let request = BatchRequest::new(instance.points().to_vec(), Vec::new())
        .with_query(BatchQuery::weighted(solver, *instance.shape()));
    let executor = BatchExecutor::with_config(
        registry,
        ExecutorConfig { threads: Some(threads), certify: true, ..ExecutorConfig::default() },
    );
    let mut report = executor.execute(&request);
    assert_eq!(report.stats.certify_failures, 0, "{solver}: batch certification failed");
    let answer = report.answers.remove(0);
    answer
        .weighted()
        .unwrap_or_else(|| panic!("{solver}: weighted query failed: {answer:?}"))
        .clone()
}

/// Colored counterpart of [`weighted_report`].
fn colored_report<const D: usize>(
    registry: &Registry,
    solver: &str,
    instance: &ColoredInstance<D>,
    threads: usize,
) -> SolverReport<ColoredPlacement<D>> {
    let request = BatchRequest::new(Vec::new(), instance.sites().to_vec())
        .with_query(BatchQuery::colored(solver, *instance.shape()));
    let executor = BatchExecutor::with_config(
        registry,
        ExecutorConfig { threads: Some(threads), certify: true, ..ExecutorConfig::default() },
    );
    let mut report = executor.execute(&request);
    assert_eq!(report.stats.certify_failures, 0, "{solver}: batch certification failed");
    let answer = report.answers.remove(0);
    answer.colored().unwrap_or_else(|| panic!("{solver}: colored query failed: {answer:?}")).clone()
}

/// The exact optimum of `base`, from the first registered exact solver
/// capable of its (shape, dimension) — `None` when no exact reference
/// exists (e.g. balls in d ≥ 3).
fn exact_weighted_opt<const D: usize>(
    registry: &Registry,
    base: &WeightedInstance<D>,
) -> Option<f64> {
    let class = shape_class(base.shape());
    let descriptor = registry.descriptors().into_iter().find(|d| {
        d.guarantee == GuaranteeClass::Exact && d.supports(ProblemKind::Weighted, class, D)
    })?;
    let solver = registry.weighted::<D>(descriptor.name)?;
    Some(solver.solve(base).expect("exact reference solves").placement.value)
}

fn exact_colored_opt<const D: usize>(
    registry: &Registry,
    base: &ColoredInstance<D>,
) -> Option<usize> {
    let class = shape_class(base.shape());
    let descriptor = registry.descriptors().into_iter().find(|d| {
        d.guarantee == GuaranteeClass::Exact && d.supports(ProblemKind::Colored, class, D)
    })?;
    let solver = registry.colored::<D>(descriptor.name)?;
    Some(solver.solve(base).expect("exact reference solves").placement.distinct)
}

/// Runs every registered weighted solver capable of `shape` in dimension `D`
/// through the five-transform catalog.
fn run_weighted_catalog<const D: usize>(registry: &Registry, shape: RangeShape<D>, seed: u64) {
    let class = shape_class(&shape);
    let solvers: Vec<&'static str> = registry
        .descriptors()
        .into_iter()
        .filter(|d| d.supports(ProblemKind::Weighted, class, D))
        .map(|d| d.name)
        .collect();
    assert!(!solvers.is_empty(), "no weighted solver for {class} in d = {D}");
    for solver in solvers {
        for (case, &n) in sizes().iter().enumerate() {
            let case_seed = seed ^ (n as u64).wrapping_mul(0x9E37_79B9);
            let base = WeightedInstance::new(dyadic_points::<D>(case_seed, n), shape);
            let variants = weighted_variants(&base, case_seed);
            let exact_opt = exact_weighted_opt(registry, &base);
            for (mode, threads) in combos(case) {
                set_kernel_mode(mode);
                let base_report = weighted_report(registry, solver, &base, threads);
                for variant in &variants {
                    let variant_report =
                        weighted_report(registry, solver, &variant.instance, threads);
                    if let Err(msg) =
                        verify_weighted(&base, &base_report, variant, &variant_report, exact_opt)
                    {
                        panic!("d={D} n={n} {mode:?} x{threads}: {msg}");
                    }
                }
            }
        }
    }
}

/// Colored counterpart of [`run_weighted_catalog`].
fn run_colored_catalog<const D: usize>(registry: &Registry, shape: RangeShape<D>, seed: u64) {
    let class = shape_class(&shape);
    let solvers: Vec<&'static str> = registry
        .descriptors()
        .into_iter()
        .filter(|d| d.supports(ProblemKind::Colored, class, D))
        .map(|d| d.name)
        .collect();
    assert!(!solvers.is_empty(), "no colored solver for {class} in d = {D}");
    for solver in solvers {
        for (case, &n) in sizes().iter().enumerate() {
            let case_seed = seed ^ (n as u64).wrapping_mul(0x9E37_79B9);
            let base = ColoredInstance::new(dyadic_sites::<D>(case_seed, n, 5), shape);
            let variants = colored_variants(&base, case_seed);
            let exact_opt = exact_colored_opt(registry, &base);
            for (mode, threads) in combos(case) {
                set_kernel_mode(mode);
                let base_report = colored_report(registry, solver, &base, threads);
                for variant in &variants {
                    let variant_report =
                        colored_report(registry, solver, &variant.instance, threads);
                    if let Err(msg) =
                        verify_colored(&base, &base_report, variant, &variant_report, exact_opt)
                    {
                        panic!("d={D} n={n} {mode:?} x{threads}: {msg}");
                    }
                }
            }
        }
    }
}

/// The catalog sweep: every registered solver × every transform class × all
/// kernel modes × both thread counts, across every (shape, dimension)
/// combination the registry can answer.
#[test]
fn catalog_transforms_hold_for_every_registered_solver() {
    let _guard = ModeGuard::acquire();
    let registry = full_registry(config());
    run_weighted_catalog::<1>(&registry, RangeShape::interval(2.5), 0x01);
    run_weighted_catalog::<2>(&registry, RangeShape::ball(1.25), 0x02);
    run_weighted_catalog::<2>(&registry, RangeShape::rect(2.0, 1.5), 0x03);
    run_weighted_catalog::<3>(&registry, RangeShape::ball(2.5), 0x04);
    run_colored_catalog::<2>(&registry, RangeShape::ball(1.25), 0x05);
    run_colored_catalog::<2>(&registry, RangeShape::rect(2.0, 1.5), 0x06);
    run_colored_catalog::<3>(&registry, RangeShape::ball(2.5), 0x07);
}

/// The sixth transform class: *split-into-script*.  The weighted instance is
/// split into a seeded base plus per-point insert mutations (the delta stays
/// under the compaction threshold, so the final query genuinely runs on a
/// delta-overlay index, and `dynamic-ball` runs on its incrementally
/// maintained tracker), and the overlay answer must verify against the cold
/// one-shot build under the full metamorphic contract.
#[test]
fn split_into_script_matches_cold_build_for_weighted_solvers() {
    let _guard = ModeGuard::acquire();
    let registry = full_registry(config());
    let shape = RangeShape::<2>::ball(1.25);
    let points = dyadic_points::<2>(0xBEEF, 18);
    let base = WeightedInstance::new(points.clone(), shape);
    let exact_opt = exact_weighted_opt(&registry, &base);
    let split_at = points.len() - 3;

    for descriptor in registry.descriptors() {
        if !descriptor.supports(ProblemKind::Weighted, ShapeClass::Ball, 2) {
            continue;
        }
        let cold_report = weighted_report(&registry, descriptor.name, &base, 1);

        let dataset = VersionedDataset::new(points[..split_at].to_vec(), Vec::new());
        let mut steps: Vec<ScriptStep<2>> = points[split_at..]
            .iter()
            .map(|wp| ScriptStep::Mutate(Mutation::Insert { point: *wp, color: None }))
            .collect();
        steps.push(ScriptStep::Query(BatchQuery::weighted(descriptor.name, shape)));
        let executor = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: Some(1), certify: true, ..ExecutorConfig::default() },
        );
        let script = executor.execute_script(&dataset, &steps);
        assert!(script.all_ok(), "{}: {:?}", descriptor.name, script.outcomes);
        assert!(dataset.view().delta_size() > 0, "the query must run on a live overlay");
        let ScriptOutcome::Answer { answer, certified, .. } =
            script.outcomes.last().expect("script ends with the query")
        else {
            panic!("{}: last outcome answers the query", descriptor.name)
        };
        assert_eq!(*certified, Some(true), "{}: overlay answer certifies", descriptor.name);
        let overlay_report =
            answer.weighted().unwrap_or_else(|| panic!("{}: {answer:?}", descriptor.name)).clone();

        let variant = Variant {
            label: "split-into-script",
            instance: base.clone(),
            map: SimilarityMap::identity(),
        };
        if let Err(msg) = verify_weighted(&base, &cold_report, &variant, &overlay_report, exact_opt)
        {
            panic!("{msg}");
        }
    }
}

/// Colored split-into-script, growing the dataset from *empty* so the script
/// crosses several compaction boundaries before the final query.
#[test]
fn split_into_script_matches_cold_build_for_colored_solvers() {
    let _guard = ModeGuard::acquire();
    let registry = full_registry(config());
    let shape = RangeShape::<2>::ball(1.25);
    let sites = dyadic_sites::<2>(0xFACE, 16, 4);
    let base = ColoredInstance::new(sites.clone(), shape);
    let exact_opt = exact_colored_opt(&registry, &base);

    for descriptor in registry.descriptors() {
        if !descriptor.supports(ProblemKind::Colored, ShapeClass::Ball, 2) {
            continue;
        }
        let cold_report = colored_report(&registry, descriptor.name, &base, 1);

        let dataset = VersionedDataset::<2>::new(Vec::new(), Vec::new());
        let mut steps: Vec<ScriptStep<2>> = sites
            .iter()
            .map(|s| {
                ScriptStep::Mutate(Mutation::Insert {
                    point: maxrs::geom::WeightedPoint::unit(s.point),
                    color: Some(s.color),
                })
            })
            .collect();
        steps.push(ScriptStep::Query(BatchQuery::colored(descriptor.name, shape)));
        let executor = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: Some(1), certify: true, ..ExecutorConfig::default() },
        );
        let script = executor.execute_script(&dataset, &steps);
        assert!(script.all_ok(), "{}: {:?}", descriptor.name, script.outcomes);
        let ScriptOutcome::Answer { answer, certified, .. } =
            script.outcomes.last().expect("script ends with the query")
        else {
            panic!("{}: last outcome answers the query", descriptor.name)
        };
        assert_eq!(*certified, Some(true), "{}: overlay answer certifies", descriptor.name);
        let overlay_report =
            answer.colored().unwrap_or_else(|| panic!("{}: {answer:?}", descriptor.name)).clone();

        let variant = Variant {
            label: "split-into-script",
            instance: base.clone(),
            map: SimilarityMap::identity(),
        };
        if let Err(msg) = verify_colored(&base, &cold_report, &variant, &overlay_report, exact_opt)
        {
            panic!("{msg}");
        }
    }
}

proptest! {
    /// Randomized instances (sizes and seeds drawn by the vendored proptest
    /// subset) through the catalog for one exact and one randomized solver
    /// per problem kind, under a seed-rotated kernel mode and thread count.
    #[test]
    fn random_dyadic_instances_survive_the_catalog(
        seed in 0u64..(1 << 32),
        n in 1usize..40,
    ) {
        let _guard = ModeGuard::acquire();
        set_kernel_mode(MODES[(seed % 3) as usize]);
        let threads = THREADS[(seed % 2) as usize];
        let registry = full_registry(config());

        let base = WeightedInstance::new(dyadic_points::<2>(seed, n), RangeShape::ball(1.25));
        let exact = weighted_report(&registry, "exact-disk-2d", &base, threads);
        for solver in ["exact-disk-2d", "approx-static-ball"] {
            let base_report = weighted_report(&registry, solver, &base, threads);
            for variant in &weighted_variants(&base, seed) {
                let variant_report = weighted_report(&registry, solver, &variant.instance, threads);
                let verdict = verify_weighted(
                    &base, &base_report, variant, &variant_report, Some(exact.placement.value),
                );
                prop_assert!(verdict.is_ok(), "{:?}", verdict);
            }
        }

        let herd = ColoredInstance::new(dyadic_sites::<2>(seed, n, 5), RangeShape::ball(1.25));
        let exact = colored_report(&registry, "exact-colored-disk-enum", &herd, threads);
        for solver in ["exact-colored-disk-union", "approx-colored-disk-sampling"] {
            let base_report = colored_report(&registry, solver, &herd, threads);
            for variant in &colored_variants(&herd, seed) {
                let variant_report = colored_report(&registry, solver, &variant.instance, threads);
                let verdict = verify_colored(
                    &herd, &base_report, variant, &variant_report, Some(exact.placement.distinct),
                );
                prop_assert!(verdict.is_ok(), "{:?}", verdict);
            }
        }
    }
}
