//! Cross-crate integration tests for the hardness-reduction chains of
//! Sections 5 and 6, driven end to end through the geometric solvers of
//! `mrs-batched`.

use maxrs::batched::{BatchedMaxRS1D, BatchedSei, LinePoint};
use maxrs::hardness::convolution::{max_plus_convolution_indexed, min_plus_convolution};
use maxrs::hardness::reductions::{
    build_batched_instance, build_bsei_instance, min_plus_via_batched_maxrs, min_plus_via_bsei,
    monotone_min_plus_via_bsei, positive_max_plus_indexed_via_batched_maxrs,
};
use rand::prelude::*;

#[test]
fn figure_6_chain_matches_naive_convolution_at_several_sizes_and_block_widths() {
    let mut rng = StdRng::seed_from_u64(5);
    for &n in &[1usize, 2, 17, 64, 200] {
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let naive = min_plus_convolution(&a, &b);
        for block in [1, 7, n] {
            let chained = min_plus_via_batched_maxrs(&a, &b, block.max(1));
            for (k, (x, y)) in chained.iter().zip(&naive).enumerate() {
                assert!((x - y).abs() < 1e-6, "n={n} block={block} k={k}: {x} vs {y}");
            }
        }
    }
}

#[test]
fn section_6_chain_matches_naive_convolution() {
    let mut rng = StdRng::seed_from_u64(6);
    for &n in &[1usize, 3, 50, 300] {
        let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-500.0..500.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-500.0..500.0)).collect();
        let naive = min_plus_convolution(&a, &b);
        let chained = min_plus_via_bsei(&a, &b);
        for (k, (x, y)) in chained.iter().zip(&naive).enumerate() {
            assert!((x - y).abs() < 1e-6, "n={n} k={k}: {x} vs {y}");
        }
    }
}

#[test]
fn reduction_instances_have_the_advertised_sizes() {
    // Section 5.4: 4n value/guard points plus two walls, one length per target.
    let a = vec![1.0; 32];
    let b = vec![2.0; 32];
    let targets: Vec<usize> = (0..32).step_by(3).collect();
    let inst = build_batched_instance(&a, &b, &targets);
    assert_eq!(inst.points.len(), 4 * 32 + 2);
    assert_eq!(inst.lengths.len(), targets.len());

    // Section 6.2: exactly 2n points.
    let d: Vec<f64> = (0..32).map(|i| 100.0 - i as f64).collect();
    let e: Vec<f64> = (0..32).map(|i| 50.0 - 2.0 * i as f64).collect();
    assert_eq!(build_bsei_instance(&d, &e).len(), 64);
}

#[test]
fn batched_oracles_answer_the_reduction_queries_consistently_with_direct_use() {
    // The reduction drives the same public solvers a user would call directly;
    // make sure both entry points agree.
    let mut rng = StdRng::seed_from_u64(8);
    let n = 48;
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let b: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
    let targets: Vec<usize> = vec![0, 5, 17, 33, n - 1];

    let via_reduction = positive_max_plus_indexed_via_batched_maxrs(&a, &b, &targets);
    let direct = max_plus_convolution_indexed(&a, &b, &targets);
    assert_eq!(via_reduction.len(), direct.len());
    for (x, y) in via_reduction.iter().zip(&direct) {
        assert!((x - y).abs() < 1e-9);
    }

    // And the instance it builds is an ordinary batched MaxRS instance.
    let inst = build_batched_instance(&a, &b, &targets);
    let solver = BatchedMaxRS1D::new(&inst.points);
    let answers = solver.solve(&inst.lengths);
    for (ans, want) in answers.iter().zip(&direct) {
        assert!((ans.value - want).abs() < 1e-9);
    }
}

#[test]
fn monotone_chain_uses_genuine_bsei_lengths() {
    // The G_k sequence fed into the Section 6.2 recovery must be the same one
    // the public BSEI solver reports.
    let d: Vec<f64> = (0..40).map(|i| 500.0 - 3.0 * i as f64).collect();
    let e: Vec<f64> = (0..40).map(|i| 200.0 - 5.0 * i as f64).collect();
    let points = build_bsei_instance(&d, &e);
    let solver = BatchedSei::new(&points);
    let lengths = solver.all_lengths();
    assert_eq!(lengths.len(), 80);

    let recovered = monotone_min_plus_via_bsei(&d, &e);
    let naive = min_plus_convolution(&d, &e);
    for (x, y) in recovered.iter().zip(&naive) {
        assert!((x - y).abs() < 1e-9);
    }
}

#[test]
fn the_gadget_points_are_a_legal_weighted_point_set() {
    // Guards are negative, values are non-negative, walls are the most
    // negative, and every coordinate is finite — i.e. the reduction output is
    // a instance any 1-D MaxRS implementation could consume.
    let a = vec![3.0, 1.0, 4.0, 1.0, 5.0];
    let b = vec![9.0, 2.0, 6.0, 5.0, 3.0];
    let inst = build_batched_instance(&a, &b, &[2]);
    let total_positive: f64 = a.iter().chain(b.iter()).sum();
    let mut wall_count = 0;
    for LinePoint { x, weight } in &inst.points {
        assert!(x.is_finite() && weight.is_finite());
        if *weight < -total_positive {
            wall_count += 1;
        }
    }
    assert_eq!(wall_count, 2);
}
