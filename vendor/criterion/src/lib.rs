//! Offline API-compatible subset of `criterion` 0.5 (see `vendor/README.md`).
//!
//! Implements the benchmark-harness surface this workspace's `benches/` use:
//! groups, parameterized benchmark ids, throughput annotations, and the
//! `criterion_group!` / `criterion_main!` macros.  Instead of criterion's
//! statistical sampling it runs a warm-up pass followed by a fixed number of
//! timed iterations and prints the mean wall-clock time per iteration —
//! enough to compare alternatives and to keep every bench compiling and
//! runnable without network access.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement markers, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time measurement (the only one provided).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendered with `Display`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Throughput annotation for a benchmark (recorded, printed with the result).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it once for warm-up and then `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the fixed-iteration harness ignores it.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the fixed-iteration harness ignores it.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
            throughput: None,
            _measurement: measurement::WallTime,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    _measurement: M,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Accepted for API compatibility; the fixed-iteration harness ignores it.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the fixed-iteration harness ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark of this group against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let iters = self.effective_sample_size();
        run_one(&label, iters, self.throughput, |b| f(b, input));
        self
    }

    /// Runs one benchmark of this group without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        let iters = self.effective_sample_size();
        run_one(&label, iters, self.throughput, &mut f);
        self
    }

    /// Finishes the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self._criterion_sample_size())
    }

    fn _criterion_sample_size(&self) -> usize {
        self._criterion.sample_size
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    iters: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { iters: iters as u64, elapsed: Duration::ZERO };
    f(&mut bencher);
    let mean =
        if bencher.iters > 0 { bencher.elapsed / bencher.iters as u32 } else { Duration::ZERO };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{label:<56} {mean:>12.2?}/iter over {iters} iters{rate}");
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(2).throughput(Throughput::Elements(10));
            group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &_x| {
                b.iter(|| ran += 1);
            });
            group.finish();
        }
        // 1 warm-up + 2 timed iterations.
        assert_eq!(ran, 3);
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }
}
