//! Offline API-compatible subset of `proptest` (see `vendor/README.md`).
//!
//! Supports the property-test surface this workspace uses: the [`proptest!`]
//! macro with `arg in strategy` bindings, numeric range strategies, tuple
//! strategies, [`collection::vec`], and `prop_assert!`/`prop_assert_eq!`.
//!
//! Each property runs [`NUM_CASES`] random cases seeded deterministically
//! from the test name, so failures are reproducible.  There is no shrinking:
//! a failing case panics with the standard assertion message.

#![warn(missing_docs)]

/// Number of random cases each property is checked against.
pub const NUM_CASES: usize = 64;

/// Deterministic per-test case source.
pub mod test_runner {
    use rand::prelude::*;

    /// The RNG driving case generation for one property.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Seeds deterministically from the property's name.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x1000_0000_01b3);
            }
            Self(StdRng::seed_from_u64(seed))
        }
    }
}

/// Strategies: recipes for generating random values.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::prelude::*;
    use std::ops::Range;

    /// A recipe for generating one random value per test case.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields the same value (`proptest::strategy::Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng as _;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy needs a non-empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Asserts a property-test condition (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right); };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*); };
}

/// Skips the current case when an assumption fails.  The subset runs the
/// remaining statements of no case instead (the case simply ends).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that checks the body against [`NUM_CASES`] random
/// cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let mut prop_rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..$crate::NUM_CASES {
                $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut prop_rng); )*
                $body
            }
        }
    )*};
}

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in -5.0f64..5.0,
            n in 1usize..10,
            v in crate::collection::vec((0.0f64..1.0, 0usize..3), 1..20),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 20);
            for &(f, c) in &v {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!(c < 3);
            }
        }
    }

    #[test]
    fn deterministic_given_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!((0.0f64..1.0).generate(&mut a), (0.0f64..1.0).generate(&mut b));
    }
}
