//! Offline API-compatible subset of `rand` 0.8 (see `vendor/README.md`).
//!
//! Provides deterministic seedable random number generation with the subset
//! of the rand 0.8 surface this workspace uses: `Rng::gen_range` over
//! half-open and inclusive numeric ranges, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — *not* the ChaCha12
//! generator of the real crate, so seeded streams differ from upstream rand.
//! Every consumer in this workspace only relies on determinism and uniformity,
//! never on the exact stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a small integer seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1], got {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give the full double mantissa.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // Width as u128 so `i64::MIN..=i64::MAX` cannot overflow.
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                // Modulo bias is at most span/2^64, negligible for the spans
                // used in tests and workload generation.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let sample = lo + u * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if sample >= hi && lo < hi { lo } else { sample }
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(3..10);
            assert!((3..10).contains(&i));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
            let inc = rng.gen_range(1..=3u64);
            assert!((1..=3).contains(&inc));
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        assert!(samples.iter().any(|&x| x < 0.01));
        assert!(samples.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits} hits for p = 0.3");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "a 50-element shuffle should almost surely move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(original.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
