//! Retail site selection with weighted MaxRS (rectangle and disk baselines,
//! plus the batched 1-D problem).
//!
//! Run with `cargo run --example retail_site_selection`.
//!
//! The paper's Walmart example: customer locations (weighted by expected
//! spend) are known, and the retailer wants the catchment area — a rectangle
//! the size of a delivery zone, or a disk of fixed driving radius — that
//! captures the most spend.  The batched 1-D problem shows up when the same
//! question is asked along a highway corridor for several store formats at
//! once.

use maxrs::prelude::*;
use rand::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // Customers cluster around three suburbs with different spending power.
    let suburbs = [
        (Point2::xy(2.0, 2.0), 400, 1.0),  // dense, low spend
        (Point2::xy(9.0, 3.0), 150, 2.5),  // medium
        (Point2::xy(5.0, 9.0), 80, 5.0),   // sparse, high spend
    ];
    let mut customers: Vec<WeightedPoint<2>> = Vec::new();
    for &(center, count, spend) in &suburbs {
        for _ in 0..count {
            let p = Point2::xy(
                center.x() + rng.gen_range(-1.2..1.2),
                center.y() + rng.gen_range(-1.2..1.2),
            );
            customers.push(WeightedPoint::new(p, spend * rng.gen_range(0.5..1.5)));
        }
    }
    let total: f64 = customers.iter().map(|c| c.weight).sum();
    println!("{} customers, total weekly spend {:.0}", customers.len(), total);

    println!("\n== Delivery-zone placement (2×2 rectangle, exact O(n log n) sweep) ==");
    let zone = max_rect_placement(&customers, 2.0, 2.0);
    println!(
        "best zone anchored at ({:.2}, {:.2}) captures spend {:.0} ({:.0}% of total)",
        zone.rect.lo.x(),
        zone.rect.lo.y(),
        zone.value,
        100.0 * zone.value / total
    );

    println!("\n== Store placement by driving radius (exact disk MaxRS) ==");
    for radius in [0.5, 1.0, 1.5] {
        let store = max_disk_placement(&customers, radius);
        println!(
            "radius {:3.1}: store at ({:.2}, {:.2}) captures spend {:.0}",
            radius,
            store.center.x(),
            store.center.y(),
            store.value
        );
    }

    println!("\n== Large instance: approximate placement (Theorem 1.2) vs exact ==");
    let instance = WeightedBallInstance::new(customers.clone(), 1.0);
    let exact = max_disk_placement(&customers, 1.0);
    let approx = approx_static_ball(&instance, SamplingConfig::practical(0.25).with_seed(3));
    println!(
        "exact spend {:.0}, sampling-technique spend {:.0} (ratio {:.2})",
        exact.value,
        approx.value,
        approx.value / exact.value
    );
    assert!(approx.value >= 0.25 * exact.value);

    println!("\n== Highway corridor: batched MaxRS in 1-D for several store formats ==");
    // Project the customers onto the highway (the x-axis) and ask, for each
    // store format (catchment length), where along the highway to build.
    let corridor: Vec<LinePoint> =
        customers.iter().map(|c| LinePoint::new(c.point.x(), c.weight)).collect();
    let solver = BatchedMaxRS1D::new(&corridor);
    let formats = [("kiosk", 0.5), ("convenience", 1.5), ("supermarket", 3.0), ("hypermarket", 6.0)];
    let placements = solver.solve(&formats.iter().map(|f| f.1).collect::<Vec<_>>());
    for ((name, len), placement) in formats.iter().zip(&placements) {
        println!(
            "{:12} (catchment {:3.1} km): build at km {:5.2}, captured spend {:.0}",
            name, len, placement.interval.lo, placement.value
        );
    }
    // Larger formats never capture less spend.
    for pair in placements.windows(2) {
        assert!(pair[1].value >= pair[0].value);
    }
}
