//! Retail site selection with weighted MaxRS, dispatched through the engine.
//!
//! Run with `cargo run --example retail_site_selection`.
//!
//! Paper map: Section 1.1 (applications) — exact rectangle \[IA83\]/\[NB95\]
//! and disk \[CL86\] baselines, Theorem 1.2 static sampling, and the
//! Section 5 / Theorem 1.3 batched 1-D MaxRS along a highway corridor.
//!
//! The paper's Walmart example: customer locations (weighted by expected
//! spend) are known, and the retailer wants the catchment area — a rectangle
//! the size of a delivery zone, or a disk of fixed driving radius — that
//! captures the most spend.  The batched 1-D problem shows up when the same
//! question is asked along a highway corridor for several store formats at
//! once.  Every query picks a solver from `engine::registry()` by name and
//! capability.

use maxrs::engine::BatchedIntervalSolver;
use maxrs::prelude::*;
use rand::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let registry = engine::registry_with(EngineConfig::practical(0.25).with_seed(3));

    // Customers cluster around three suburbs with different spending power.
    let suburbs = [
        (Point2::xy(2.0, 2.0), 400, 1.0), // dense, low spend
        (Point2::xy(9.0, 3.0), 150, 2.5), // medium
        (Point2::xy(5.0, 9.0), 80, 5.0),  // sparse, high spend
    ];
    let mut customers: Vec<WeightedPoint<2>> = Vec::new();
    for &(center, count, spend) in &suburbs {
        for _ in 0..count {
            let p = Point2::xy(
                center.x() + rng.gen_range(-1.2..1.2),
                center.y() + rng.gen_range(-1.2..1.2),
            );
            customers.push(WeightedPoint::new(p, spend * rng.gen_range(0.5..1.5)));
        }
    }
    let total: f64 = customers.iter().map(|c| c.weight).sum();
    println!("{} customers, total weekly spend {:.0}", customers.len(), total);

    println!("\n== Delivery-zone placement (2×2 rectangle, exact O(n log n) sweep) ==");
    let zone_instance = WeightedInstance::axis_box(customers.clone(), [2.0, 2.0]);
    let zone = registry
        .weighted::<2>("exact-rect-2d")
        .expect("registered solver")
        .solve(&zone_instance)
        .expect("box instance");
    println!(
        "best zone centered at ({:.2}, {:.2}) captures spend {:.0} ({:.0}% of total)",
        zone.placement.center.x(),
        zone.placement.center.y(),
        zone.placement.value,
        100.0 * zone.placement.value / total
    );

    println!("\n== Store placement by driving radius (exact disk MaxRS) ==");
    let exact_disk = registry.weighted::<2>("exact-disk-2d").expect("registered solver");
    for radius in [0.5, 1.0, 1.5] {
        let store = exact_disk
            .solve(&WeightedInstance::ball(customers.clone(), radius))
            .expect("ball instance");
        println!(
            "radius {:3.1}: store at ({:.2}, {:.2}) captures spend {:.0} in {:.1} ms",
            radius,
            store.placement.center.x(),
            store.placement.center.y(),
            store.placement.value,
            store.stats.elapsed.as_secs_f64() * 1e3
        );
    }

    println!("\n== Large instance: approximate placement (Theorem 1.2) vs exact ==");
    let instance = WeightedInstance::ball(customers.clone(), 1.0);
    let exact = exact_disk.solve(&instance).expect("ball instance");
    let approx = registry
        .weighted::<2>("approx-static-ball")
        .expect("registered solver")
        .solve(&instance)
        .expect("ball instance");
    println!(
        "exact spend {:.0} ({:.1} ms), sampling-technique spend {:.0} ({:.1} ms, ratio {:.2})",
        exact.placement.value,
        exact.stats.elapsed.as_secs_f64() * 1e3,
        approx.placement.value,
        approx.stats.elapsed.as_secs_f64() * 1e3,
        approx.placement.value / exact.placement.value
    );
    assert!(approx.placement.value >= approx.guarantee.ratio() * exact.placement.value);

    println!("\n== Highway corridor: batched MaxRS in 1-D for several store formats ==");
    // Project the customers onto the highway (the x-axis) and ask, for each
    // store format (catchment length), where along the highway to build.
    let corridor: Vec<WeightedPoint<1>> =
        customers.iter().map(|c| WeightedPoint::new(Point::new([c.point.x()]), c.weight)).collect();
    let formats =
        [("kiosk", 0.5), ("convenience", 1.5), ("supermarket", 3.0), ("hypermarket", 6.0)];
    // The batched solver shares one O(n log n) build across all four formats.
    let corridor_instance = WeightedInstance::<1>::new(corridor, RangeShape::interval(1.0));
    let reports = BatchedIntervalSolver
        .solve_lengths(&corridor_instance, &formats.iter().map(|f| f.1).collect::<Vec<_>>());
    for ((name, len), report) in formats.iter().zip(&reports) {
        println!(
            "{:12} (catchment {:3.1} km): build at km {:5.2}, captured spend {:.0}",
            name, len, report.placement.center[0], report.placement.value
        );
    }
    // Larger formats never capture less spend.
    for pair in reports.windows(2) {
        assert!(pair[1].placement.value >= pair[0].placement.value);
    }
}
