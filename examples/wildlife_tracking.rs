//! Wildlife monitoring with colored MaxRS (Theorems 1.5, 4.6 and 1.6),
//! dispatched through the engine.
//!
//! Run with `cargo run --example wildlife_tracking`.
//!
//! Paper map: Section 1.2 / Theorems 1.5, 4.6 and 1.6 — colored MaxRS at
//! three guarantee levels: Technique 1 colored sampling, the Technique 2
//! output-sensitive exact algorithm, and Theorem 1.6 color sampling.
//!
//! The paper's motivating example for the colored problem: each endangered
//! animal contributes a trajectory of GPS samples, all carrying that animal's
//! color, and a single tracking station with a fixed observation radius should
//! be positioned to observe as many *distinct animals* as possible — observing
//! one animal twice is worth nothing extra.  The example runs the same
//! instance through three registered solvers with different guarantees and
//! compares their reports.

use maxrs::prelude::*;
use rand::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // 40 animals wander around a watering hole at (5, 5); 20 more live in a
    // distant valley around (40, 5).  Each contributes a 30-sample trajectory.
    let mut sites: Vec<ColoredSite<2>> = Vec::new();
    for animal in 0..40usize {
        let start = Point2::xy(rng.gen_range(3.0..7.0), rng.gen_range(3.0..7.0));
        sites.extend(random_walk(animal, start, 30, 0.15, &mut rng));
    }
    for animal in 40..60usize {
        let start = Point2::xy(rng.gen_range(38.0..42.0), rng.gen_range(3.0..7.0));
        sites.extend(random_walk(animal, start, 30, 0.15, &mut rng));
    }
    println!("{} GPS samples from 60 animals", sites.len());

    let station_radius = 2.5;
    let instance = ColoredInstance::ball(sites.clone(), station_radius);
    let registry = engine::registry_with(
        EngineConfig { color_sampling: ColorSamplingConfig::new(0.2), ..EngineConfig::default() }
            .with_seed(1),
    );

    // Exact answer with the output-sensitive algorithm of Theorem 4.6.
    let exact = registry
        .colored::<2>("output-sensitive-colored-disk")
        .expect("registered solver")
        .solve(&instance)
        .expect("ball instance");
    println!(
        "exact ({}): station at ({:.2}, {:.2}) observes {} distinct animals \
         ({} boundary crossings examined)",
        exact.solver,
        exact.placement.center.x(),
        exact.placement.center.y(),
        exact.placement.distinct,
        exact.stats.candidates.unwrap_or(0)
    );

    // Fast (1/2 − ε)-approximation in any dimension (Theorem 1.5).
    let rough = registry
        .colored::<2>("approx-colored-ball")
        .expect("registered solver")
        .solve(&instance)
        .expect("ball instance");
    println!(
        "sampling [{}]: station at ({:.2}, {:.2}) observes {} distinct animals",
        rough.guarantee,
        rough.placement.center.x(),
        rough.placement.center.y(),
        rough.placement.distinct
    );

    // (1 − ε)-approximation via color sampling (Theorem 1.6).
    let fine = registry
        .colored::<2>("approx-colored-disk-sampling")
        .expect("registered solver")
        .solve(&instance)
        .expect("ball instance");
    println!(
        "color sampling [{}]: station at ({:.2}, {:.2}) observes {} distinct animals",
        fine.guarantee,
        fine.placement.center.x(),
        fine.placement.center.y(),
        fine.placement.distinct
    );

    let opt = exact.placement.distinct as f64;
    assert!(rough.placement.distinct as f64 >= rough.guarantee.ratio() * opt);
    assert!(fine.placement.distinct as f64 >= fine.guarantee.ratio() * opt);
    assert!(exact.placement.distinct <= 40, "the two herds are too far apart to observe together");

    // What if we could afford a much longer observation radius?  The exact
    // union-boundary algorithm (Lemma 4.2) answers arbitrary radii.
    println!();
    let union_solver =
        registry.colored::<2>("exact-colored-disk-union").expect("registered solver");
    for radius in [1.0, 2.5, 5.0, 40.0] {
        let report = union_solver
            .solve(&ColoredInstance::ball(sites.clone(), radius))
            .expect("ball instance");
        println!(
            "radius {:5.1}: best station observes {:2} distinct animals",
            radius, report.placement.distinct
        );
    }
}

/// A short random walk for one animal, colored with its identifier.
fn random_walk<R: Rng>(
    color: usize,
    start: Point2,
    steps: usize,
    step_size: f64,
    rng: &mut R,
) -> Vec<ColoredSite<2>> {
    let mut here = start;
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        out.push(ColoredSite::new(here, color));
        here = Point2::xy(
            here.x() + rng.gen_range(-step_size..step_size),
            here.y() + rng.gen_range(-step_size..step_size),
        );
    }
    out
}
