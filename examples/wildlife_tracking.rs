//! Wildlife monitoring with colored MaxRS (Theorems 1.5, 4.6 and 1.6).
//!
//! Run with `cargo run --example wildlife_tracking`.
//!
//! The paper's motivating example for the colored problem: each endangered
//! animal contributes a trajectory of GPS samples, all carrying that animal's
//! color, and a single tracking station with a fixed observation radius should
//! be positioned to observe as many *distinct animals* as possible — observing
//! one animal twice is worth nothing extra.

use maxrs::prelude::*;
use rand::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // 40 animals wander around a watering hole at (5, 5); 20 more live in a
    // distant valley around (40, 5).  Each contributes a 30-sample trajectory.
    let mut sites: Vec<ColoredSite<2>> = Vec::new();
    for animal in 0..40usize {
        let start = Point2::xy(rng.gen_range(3.0..7.0), rng.gen_range(3.0..7.0));
        sites.extend(random_walk(animal, start, 30, 0.15, &mut rng));
    }
    for animal in 40..60usize {
        let start = Point2::xy(rng.gen_range(38.0..42.0), rng.gen_range(3.0..7.0));
        sites.extend(random_walk(animal, start, 30, 0.15, &mut rng));
    }
    println!("{} GPS samples from 60 animals", sites.len());

    // Exact answer with the output-sensitive algorithm of Theorem 4.6.
    let station_radius = 2.5;
    let exact = output_sensitive_colored_disk(&sites, station_radius);
    println!(
        "exact (Theorem 4.6): station at ({:.2}, {:.2}) observes {} distinct animals",
        exact.center.x(),
        exact.center.y(),
        exact.distinct
    );

    // Fast (1/2 − ε)-approximation in any dimension (Theorem 1.5).
    let instance = ColoredBallInstance::new(sites.clone(), station_radius);
    let rough = approx_colored_ball(&instance, SamplingConfig::practical(0.25).with_seed(1));
    println!(
        "sampling (Theorem 1.5): station at ({:.2}, {:.2}) observes {} distinct animals",
        rough.center.x(),
        rough.center.y(),
        rough.distinct
    );

    // (1 − ε)-approximation via color sampling (Theorem 1.6).
    let fine = approx_colored_disk_sampling(&instance, ColorSamplingConfig::new(0.2).with_seed(5));
    println!(
        "color sampling (Theorem 1.6): station at ({:.2}, {:.2}) observes {} distinct animals",
        fine.center.x(),
        fine.center.y(),
        fine.distinct
    );

    assert!(rough.distinct as f64 >= 0.25 * exact.distinct as f64);
    assert!(fine.distinct as f64 >= 0.8 * exact.distinct as f64);
    assert!(exact.distinct <= 40, "the two herds are too far apart to observe together");

    // What if we could afford a much longer observation radius?  The exact
    // union-boundary algorithm (Lemma 4.2) answers arbitrary radii.
    println!();
    for radius in [1.0, 2.5, 5.0, 40.0] {
        let placement = exact_colored_disk_by_union(&sites, radius);
        println!(
            "radius {:5.1}: best station observes {:2} distinct animals",
            radius, placement.distinct
        );
    }
}

/// A short random walk for one animal, colored with its identifier.
fn random_walk<R: Rng>(
    color: usize,
    start: Point2,
    steps: usize,
    step_size: f64,
    rng: &mut R,
) -> Vec<ColoredSite<2>> {
    let mut here = start;
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        out.push(ColoredSite::new(here, color));
        here = Point2::xy(
            here.x() + rng.gen_range(-step_size..step_size),
            here.y() + rng.gen_range(-step_size..step_size),
        );
    }
    out
}
