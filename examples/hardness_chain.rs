//! The hardness-reduction chains of Sections 5 and 6, run end to end.
//!
//! Run with `cargo run --example hardness_chain`.
//!
//! Paper map: Sections 5–6 / Theorems 1.3–1.4 — the executable hardness
//! chains: (min,+)-convolution solved through the batched MaxRS oracle
//! (Figure 6) and through the batched smallest-k-enclosing-interval oracle.
//!
//! Theorems 1.3 and 1.4 say that batched MaxRS in `R^1` and the batched
//! smallest-k-enclosing-interval problem are conditionally hard because a fast
//! algorithm for either would yield a fast (min,+)-convolution algorithm.
//! This example makes that statement concrete: it solves (min,+)-convolution
//! instances *through* the geometric solvers and checks the answers against
//! the naive quadratic convolution.

use maxrs::engine::BatchedIntervalSolver;
use maxrs::hardness::reductions::build_batched_instance;
use maxrs::prelude::*;
use rand::prelude::*;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(1234);
    let n = 512;
    let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
    let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();

    println!("solving a (min,+)-convolution instance of length {n} three different ways\n");

    let t0 = Instant::now();
    let naive = min_plus_convolution(&a, &b);
    println!("naive quadratic solver        : {:>8.2?}", t0.elapsed());

    // Figure 6 chain: (min,+) → (min,+,M) → (max,+,M) → positive (max,+,M) →
    // batched MaxRS on 4n+2 weighted points per block.
    let t1 = Instant::now();
    let via_maxrs = min_plus_via_batched_maxrs(&a, &b, 64);
    println!("via batched MaxRS (Section 5) : {:>8.2?}", t1.elapsed());

    // Section 6 chain: (min,+) → monotone (min,+) → batched smallest
    // k-enclosing interval on 2n points.
    let t2 = Instant::now();
    let via_bsei = min_plus_via_bsei(&a, &b);
    println!("via batched SEI (Section 6)   : {:>8.2?}", t2.elapsed());

    let max_err_maxrs = max_abs_diff(&naive, &via_maxrs);
    let max_err_bsei = max_abs_diff(&naive, &via_bsei);
    println!("\nmaximum deviation from the naive answer:");
    println!("  batched-MaxRS chain: {max_err_maxrs:.2e}");
    println!("  batched-SEI chain  : {max_err_bsei:.2e}");
    assert!(max_err_maxrs < 1e-6);
    assert!(max_err_bsei < 1e-6);

    // Peek inside the Section 5.4 gadget (Figure 7): guards and walls.
    println!("\nanatomy of one batched-MaxRS instance produced by the reduction:");
    let small_a = vec![2.0, 0.0, 7.0];
    let small_b = vec![1.0, 5.0, 3.0];
    let gadget = build_batched_instance(&small_a, &small_b, &[0, 1, 2]);
    let wall_threshold: f64 = -(small_a.iter().sum::<f64>() + small_b.iter().sum::<f64>()) - 0.5;
    let mut points = gadget.points.clone();
    points.sort_by(|p, q| p.x.partial_cmp(&q.x).unwrap());
    for p in &points {
        let kind = if p.weight <= wall_threshold {
            "wall "
        } else if p.weight < 0.0 {
            "guard"
        } else {
            "value"
        };
        println!("  x = {:5.1}  weight = {:7.1}  ({kind})", p.x, p.weight);
    }
    println!("  query lengths: {:?}", gadget.lengths);

    // The geometry the chain queries is ordinary engine-visible batched 1-D
    // MaxRS: dispatch the same gadget through the registered solver (which
    // accepts the gadget's negative wall/guard weights — see the
    // `negative_weights` capability flag) and report each query's value.
    println!("\nsolving the gadget through the engine's batched-interval-1d solver:");
    let gadget_points: Vec<WeightedPoint<1>> =
        gadget.points.iter().map(|p| WeightedPoint::new(Point::new([p.x]), p.weight)).collect();
    let gadget_instance =
        WeightedInstance::<1>::new(gadget_points, RangeShape::interval(gadget.lengths[0]));
    let reports = BatchedIntervalSolver.solve_lengths(&gadget_instance, &gadget.lengths);
    for (len, report) in gadget.lengths.iter().zip(&reports) {
        println!(
            "  length {:4.1}: interval centered at {:6.2} covers weight {:7.2} [{}]",
            len, report.placement.center[0], report.placement.value, report.guarantee
        );
    }

    println!("\nboth hardness chains reproduce the naive convolution exactly");
}

fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
}
