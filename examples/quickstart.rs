//! Quickstart: the three basic MaxRS queries on a small point set.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The scenario mirrors Figure 1 of the paper: a handful of points in the
//! plane, and we ask (a) where to place a fixed rectangle to cover the most
//! points, (b) where to place a fixed-radius disk, and (c) where to place a
//! disk to cover the most *distinct colors*.

use maxrs::prelude::*;

fn main() {
    // A cluster of six points near the origin plus two stragglers, as in
    // Figure 1a.
    let coords = [
        (0.0, 0.0),
        (0.5, 0.3),
        (0.8, 0.6),
        (0.2, 0.7),
        (0.7, 0.1),
        (0.4, 0.5),
        (5.0, 5.0),
        (-4.0, 2.0),
    ];
    let points: Vec<WeightedPoint<2>> =
        coords.iter().map(|&(x, y)| WeightedPoint::unit(Point2::xy(x, y))).collect();

    println!("== Exact rectangle MaxRS (Imai–Asano sweep, O(n log n)) ==");
    let rect = max_rect_placement(&points, 1.0, 1.0);
    println!(
        "a 1×1 rectangle anchored at ({:.2}, {:.2}) covers weight {}",
        rect.rect.lo.x(),
        rect.rect.lo.y(),
        rect.value
    );
    assert_eq!(rect.value, 6.0);

    println!();
    println!("== Exact disk MaxRS (Chazelle–Lee sweep, O(n² log n)) ==");
    let disk = max_disk_placement(&points, 1.0);
    println!(
        "a unit disk centered at ({:.2}, {:.2}) covers weight {}",
        disk.center.x(),
        disk.center.y(),
        disk.value
    );
    assert_eq!(disk.value, 6.0);

    println!();
    println!("== Approximate disk MaxRS (Theorem 1.2, (1/2 − ε)-approx) ==");
    let instance = WeightedBallInstance::new(points.clone(), 1.0);
    let approx = approx_static_ball(&instance, SamplingConfig::practical(0.25));
    println!(
        "the sampling technique places the disk at ({:.2}, {:.2}) covering weight {}",
        approx.center.x(),
        approx.center.y(),
        approx.value
    );
    assert!(approx.value >= (0.5 - 0.25) * disk.value);

    println!();
    println!("== Colored disk MaxRS (Figure 1b) ==");
    // The same cluster, now with colors: three distinct colors close together
    // and a fourth far away.
    let sites = vec![
        ColoredSite::new(Point2::xy(0.0, 0.0), 0),
        ColoredSite::new(Point2::xy(0.3, 0.2), 0),
        ColoredSite::new(Point2::xy(0.5, 0.0), 1),
        ColoredSite::new(Point2::xy(0.1, 0.6), 2),
        ColoredSite::new(Point2::xy(5.0, 5.0), 3),
    ];
    let colored = output_sensitive_colored_disk(&sites, 1.0);
    println!(
        "a unit disk centered at ({:.2}, {:.2}) covers {} distinct colors",
        colored.center.x(),
        colored.center.y(),
        colored.distinct
    );
    assert_eq!(colored.distinct, 3);

    println!();
    println!("== 1-D MaxRS (the batched building block) ==");
    let line_points: Vec<LinePoint> =
        [0.0, 0.4, 0.9, 3.0, 3.2, 9.0].iter().map(|&x| LinePoint::new(x, 1.0)).collect();
    let best = max_interval_placement(&line_points, 1.0);
    println!(
        "an interval of length 1 placed at [{:.2}, {:.2}] covers {} points",
        best.interval.lo, best.interval.hi, best.value
    );
    assert_eq!(best.value, 3.0);

    println!();
    println!("quickstart finished — all placements match the expected optima");
}
