//! Quickstart: the basic MaxRS queries, dispatched through the solver engine.
//!
//! Run with `cargo run --example quickstart`.
//!
//! Paper map: Figure 1 / Section 1 (problem statement) — exact rectangle
//! MaxRS \[IA83\]/\[NB95\], exact disk MaxRS \[CL86\], and exact colored disk
//! MaxRS (Theorem 4.6), all dispatched through the engine registry.
//!
//! The scenario mirrors Figure 1 of the paper: a handful of points in the
//! plane, and we ask (a) where to place a fixed rectangle to cover the most
//! points, (b) where to place a fixed-radius disk, and (c) where to place a
//! disk to cover the most *distinct colors*.  Every query goes through
//! `engine::registry()`: the caller picks a solver by name, hands it one
//! instance, and gets back a report carrying the placement, the guarantee it
//! was produced under, and run statistics.

use maxrs::prelude::*;

fn main() {
    let registry = engine::registry();

    // A cluster of six points near the origin plus two stragglers, as in
    // Figure 1a.
    let coords = [
        (0.0, 0.0),
        (0.5, 0.3),
        (0.8, 0.6),
        (0.2, 0.7),
        (0.7, 0.1),
        (0.4, 0.5),
        (5.0, 5.0),
        (-4.0, 2.0),
    ];
    let points: Vec<WeightedPoint<2>> =
        coords.iter().map(|&(x, y)| WeightedPoint::unit(Point2::xy(x, y))).collect();

    println!("== Exact rectangle MaxRS (Imai–Asano sweep, O(n log n)) ==");
    let rect_instance = WeightedInstance::axis_box(points.clone(), [1.0, 1.0]);
    let rect = registry
        .weighted::<2>("exact-rect-2d")
        .expect("registered solver")
        .solve(&rect_instance)
        .expect("box instance matches the rect solver");
    println!(
        "a 1×1 rectangle centered at ({:.2}, {:.2}) covers weight {} [{}]",
        rect.placement.center.x(),
        rect.placement.center.y(),
        rect.placement.value,
        rect.guarantee
    );
    assert_eq!(rect.placement.value, 6.0);

    println!();
    println!("== Exact disk MaxRS (Chazelle–Lee sweep, O(n² log n)) ==");
    let disk_instance = WeightedInstance::ball(points.clone(), 1.0);
    let disk = registry
        .weighted::<2>("exact-disk-2d")
        .expect("registered solver")
        .solve(&disk_instance)
        .expect("ball instance matches the disk solver");
    println!(
        "a unit disk centered at ({:.2}, {:.2}) covers weight {}",
        disk.placement.center.x(),
        disk.placement.center.y(),
        disk.placement.value
    );
    assert_eq!(disk.placement.value, 6.0);

    println!();
    println!("== Approximate disk MaxRS (Theorem 1.2, (1/2 − ε)-approx) ==");
    let registry_fast = engine::registry_with(EngineConfig::practical(0.25));
    let approx = registry_fast
        .weighted::<2>("approx-static-ball")
        .expect("registered solver")
        .solve(&disk_instance)
        .expect("ball instance matches the sampler");
    println!(
        "the sampling technique places the disk at ({:.2}, {:.2}) covering weight {} \
         [{}; {} samples over {} grids]",
        approx.placement.center.x(),
        approx.placement.center.y(),
        approx.placement.value,
        approx.guarantee,
        approx.stats.samples.unwrap_or(0),
        approx.stats.grids.unwrap_or(0),
    );
    assert!(approx.placement.value >= approx.guarantee.ratio() * disk.placement.value);

    println!();
    println!("== Colored disk MaxRS (Figure 1b) ==");
    // The same cluster, now with colors: three distinct colors close together
    // and a fourth far away.
    let sites = vec![
        ColoredSite::new(Point2::xy(0.0, 0.0), 0),
        ColoredSite::new(Point2::xy(0.3, 0.2), 0),
        ColoredSite::new(Point2::xy(0.5, 0.0), 1),
        ColoredSite::new(Point2::xy(0.1, 0.6), 2),
        ColoredSite::new(Point2::xy(5.0, 5.0), 3),
    ];
    let colored_instance = ColoredInstance::ball(sites, 1.0);
    let colored = registry
        .colored::<2>("output-sensitive-colored-disk")
        .expect("registered solver")
        .solve(&colored_instance)
        .expect("ball instance matches the colored solver");
    println!(
        "a unit disk centered at ({:.2}, {:.2}) covers {} distinct colors",
        colored.placement.center.x(),
        colored.placement.center.y(),
        colored.placement.distinct
    );
    assert_eq!(colored.placement.distinct, 3);

    println!();
    println!("== 1-D MaxRS (the batched building block) ==");
    let line: Vec<WeightedPoint<1>> = [0.0, 0.4, 0.9, 3.0, 3.2, 9.0]
        .iter()
        .map(|&x| WeightedPoint::unit(Point::new([x])))
        .collect();
    let line_instance = WeightedInstance::<1>::new(line, RangeShape::interval(1.0));
    let best = registry
        .weighted::<1>("exact-interval-1d")
        .expect("registered solver")
        .solve(&line_instance)
        .expect("interval instance matches the 1-D solver");
    println!(
        "an interval of length 1 centered at {:.2} covers {} points",
        best.placement.center[0], best.placement.value
    );
    assert_eq!(best.placement.value, 3.0);

    println!();
    println!("== Loading points from CSV (the shared mrs_core::input loader) ==");
    // The same loader serves the CLI (`maxrs batch`) and the server's
    // dataset catalog (`maxrs serve`); errors are typed and line-numbered.
    let csv = "0,0,1,0\n0.5,0.2,1,1\n0.4,0.5,2,2\n7,7,1,0  # far straggler\n";
    let set = maxrs::core::input::parse_point_set_csv(csv).expect("well-formed CSV");
    println!("loaded {} weighted points, {} colored sites", set.points.len(), set.sites.len());
    let loaded = registry
        .weighted::<2>("exact-disk-2d")
        .expect("registered solver")
        .solve(&WeightedInstance::ball(set.points, 1.0))
        .expect("ball instance matches the disk solver");
    println!("best unit disk over the loaded points covers weight {}", loaded.placement.value);
    assert_eq!(loaded.placement.value, 4.0);
    let error = maxrs::core::input::parse_point_set_csv("0,0\noops,1\n").unwrap_err();
    println!("malformed CSV reports a typed, line-numbered error: {error}");
    assert_eq!(error.line, 2);

    println!();
    println!("quickstart finished — all placements match the expected optima");
}
