//! COVID hotspot monitoring with dynamic MaxRS (Theorem 1.1).
//!
//! Run with `cargo run --example covid_hotspots`.
//!
//! Paper map: Section 1.1 / Theorem 1.1 — the dynamic `(1/2 − ε)`-approx
//! MaxRS structure (Technique 1: shifted grids of Lemma 2.1 + sphere
//! sampling of Lemma 3.2) under a real insert/delete stream.
//!
//! The paper's motivating example for the dynamic problem: infected patients
//! appear (insertions) and recover (deletions), and health authorities need
//! the current hotspot — the placement of a fixed-radius disk covering the
//! most active cases — updated in real time rather than recomputed from
//! scratch after every change.
//!
//! The update stream drives the Theorem 1.1 structure through the engine's
//! `dynamic-ball` solver type ([`DynamicBallSolver`] exposes the same
//! sampling structure the engine dispatches to); at the end the final state
//! is cross-checked by dispatching the accumulated instance through the
//! engine's static solvers.

use std::collections::BTreeMap;

use maxrs::core::engine::{DynamicBallSolver, WeightedSolver};
use maxrs::prelude::*;
use rand::prelude::*;

/// A synthetic city: three districts whose infection intensity changes over
/// time.
struct District {
    name: &'static str,
    center: Point2,
    spread: f64,
}

fn main() {
    let districts = [
        District { name: "harbour", center: Point2::xy(0.0, 0.0), spread: 0.8 },
        District { name: "old town", center: Point2::xy(6.0, 1.0), spread: 0.6 },
        District { name: "university", center: Point2::xy(2.0, 7.0), spread: 0.9 },
    ];

    let mut rng = StdRng::seed_from_u64(2024);
    let cfg = SamplingConfig::practical(0.25).with_seed(7);
    let mut tracker = DynamicBallMaxRS::<2>::new(1.0, cfg);
    // Active cases, per district, as (handle, district index), plus a mirror
    // of each live case's position for the final engine cross-check.
    let mut active: Vec<(usize, usize)> = Vec::new();
    let mut positions: BTreeMap<usize, Point2> = BTreeMap::new();

    // Phase 1: an outbreak in the harbour district.
    println!("== Phase 1: outbreak in the harbour district ==");
    for _ in 0..120 {
        let p = sample_case(&districts[0], &mut rng);
        let id = tracker.insert(p, 1.0);
        positions.insert(id, p);
        active.push((id, 0));
    }
    for _ in 0..25 {
        let p = sample_case(&districts[1], &mut rng);
        let id = tracker.insert(p, 1.0);
        positions.insert(id, p);
        active.push((id, 1));
    }
    report(&mut tracker, &districts);

    // Phase 2: harbour cases recover while the university cluster grows; the
    // hotspot must migrate without any full recomputation.
    println!("\n== Phase 2: recoveries in the harbour, growth at the university ==");
    let mut recovered = 0;
    let mut i = 0;
    while i < active.len() {
        if active[i].1 == 0 && recovered < 100 {
            let (id, _) = active.swap_remove(i);
            assert!(tracker.remove(id));
            positions.remove(&id);
            recovered += 1;
            // Every recovery is roughly matched by a new case on campus.
            let p = sample_case(&districts[2], &mut rng);
            let campus = tracker.insert(p, 1.0);
            positions.insert(campus, p);
            active.push((campus, 2));
        } else {
            i += 1;
        }
    }
    report(&mut tracker, &districts);

    // Phase 3: mass recovery everywhere; only a small old-town cluster is left.
    println!("\n== Phase 3: mass recovery ==");
    let mut kept: Vec<(usize, usize)> = Vec::new();
    for (id, district) in active {
        if district == 1 && kept.len() < 12 {
            kept.push((id, district));
        } else {
            assert!(tracker.remove(id));
            positions.remove(&id);
        }
    }
    report(&mut tracker, &districts);
    println!(
        "\nthe tracker went through {} sampling epochs while processing the update stream",
        tracker.epochs()
    );
    assert_eq!(tracker.len(), kept.len());

    // Cross-check the final state through the engine: dispatch the same
    // instance to the one-shot dynamic-ball solver and the exact disk sweep.
    println!("\n== Engine cross-check of the final state ==");
    let survivors: Vec<WeightedPoint<2>> =
        positions.values().map(|&p| WeightedPoint::unit(p)).collect();
    assert_eq!(survivors.len(), kept.len());
    let instance = WeightedInstance::ball(survivors, 1.0);
    let registry = engine::registry();
    let exact = registry
        .weighted::<2>("exact-disk-2d")
        .expect("registered solver")
        .solve(&instance)
        .expect("ball instance");
    let one_shot = DynamicBallSolver::new(cfg).solve(&instance).expect("ball instance");
    println!(
        "exact engine solve covers {}, one-shot dynamic-ball solve covers {} [{}]",
        exact.placement.value, one_shot.placement.value, one_shot.guarantee
    );
    assert!(one_shot.placement.value >= one_shot.guarantee.ratio() * exact.placement.value);
}

fn sample_case<R: Rng>(district: &District, rng: &mut R) -> Point2 {
    Point2::xy(
        district.center.x() + rng.gen_range(-district.spread..district.spread),
        district.center.y() + rng.gen_range(-district.spread..district.spread),
    )
}

fn report(tracker: &mut DynamicBallMaxRS<2>, districts: &[District]) {
    let hotspot = tracker.best().expect("tracker should not be empty in this example");
    let nearest = districts
        .iter()
        .min_by(|a, b| {
            a.center.dist(&hotspot.center).partial_cmp(&b.center.dist(&hotspot.center)).unwrap()
        })
        .unwrap();
    println!(
        "active cases: {:4} | hotspot at ({:5.2}, {:5.2}) near the {:10} district, covering {} cases",
        tracker.len(),
        hotspot.center.x(),
        hotspot.center.y(),
        nearest.name,
        hotspot.value
    );
}
