//! Section 5.3 — reduction from (max,+,M)-convolution to *positive*
//! (max,+,M)-convolution.
//!
//! If either sequence contains negative entries, shift both by the global
//! minimum `Δ`: `A'_i = A_i − Δ`, `B'_j = B_j − Δ` are non-negative, and
//! `C'_k = C_k − 2Δ`, so the original answers are recovered by adding `2Δ`
//! back.  Linear time.

/// Solves the `M`-indexed (max,+)-convolution on arbitrary sequences using an
/// oracle that requires non-negative inputs.
pub fn max_plus_indexed_via_positive<O>(
    a: &[f64],
    b: &[f64],
    indices: &[usize],
    oracle: O,
) -> Vec<f64>
where
    O: Fn(&[f64], &[f64], &[usize]) -> Vec<f64>,
{
    assert_eq!(a.len(), b.len(), "sequences must have equal length");
    let delta = a.iter().chain(b.iter()).cloned().fold(f64::INFINITY, f64::min).min(0.0);
    if delta >= 0.0 {
        let out = oracle(a, b, indices);
        assert_eq!(out.len(), indices.len(), "oracle must return one value per target index");
        return out;
    }
    let a_shifted: Vec<f64> = a.iter().map(|x| x - delta).collect();
    let b_shifted: Vec<f64> = b.iter().map(|x| x - delta).collect();
    debug_assert!(a_shifted.iter().chain(b_shifted.iter()).all(|&x| x >= 0.0));
    let shifted = oracle(&a_shifted, &b_shifted, indices);
    assert_eq!(shifted.len(), indices.len(), "oracle must return one value per target index");
    shifted.into_iter().map(|c| c + 2.0 * delta).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::{is_non_negative, max_plus_convolution_indexed};
    use std::cell::Cell;

    #[test]
    fn matches_direct_solver_with_negative_inputs() {
        let a = vec![-5.0, 3.0, -1.0, 0.0];
        let b = vec![2.0, -7.0, 4.0, 1.0];
        let indices = vec![0, 2, 3];
        let got = max_plus_indexed_via_positive(&a, &b, &indices, |a, b, m| {
            assert!(is_non_negative(a) && is_non_negative(b), "oracle saw a negative value");
            max_plus_convolution_indexed(a, b, m)
        });
        let want = max_plus_convolution_indexed(&a, &b, &indices);
        for (x, y) in got.iter().zip(&want) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn already_positive_inputs_are_passed_through_unshifted() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 0.0];
        let saw_shift = Cell::new(false);
        let got = max_plus_indexed_via_positive(&a, &b, &[1], |sa, sb, m| {
            saw_shift.set(sa != a.as_slice() || sb != b.as_slice());
            max_plus_convolution_indexed(sa, sb, m)
        });
        assert!(!saw_shift.get(), "non-negative inputs must not be shifted");
        // C_1 = max(A_0 + B_1, A_1 + B_0) = max(1, 5) = 5.
        assert_eq!(got, vec![5.0]);
    }
}
