//! Section 5.1 — reduction from (min,+)-convolution to (min,+,M)-convolution.
//!
//! The full index set `{0, …, n−1}` is partitioned into `⌈n/m⌉` blocks of at
//! most `m` target indices each; one oracle call per block recovers the full
//! convolution.  An `o(nm)`-time oracle would therefore give an `o(n²)`
//! algorithm for (min,+)-convolution, contradicting its conjectured hardness —
//! which is how the Ω(nm) lower bound propagates down the chain.

/// Solves the full (min,+)-convolution using an oracle for the `M`-indexed
/// variant, partitioning the targets into blocks of at most `block_size`
/// indices (the parameter `m` of Section 5.1).
///
/// # Panics
/// Panics if the inputs have different lengths, are empty, or `block_size`
/// is zero.
pub fn min_plus_via_indexed_oracle<O>(
    a: &[f64],
    b: &[f64],
    block_size: usize,
    oracle: O,
) -> Vec<f64>
where
    O: Fn(&[f64], &[f64], &[usize]) -> Vec<f64>,
{
    assert_eq!(a.len(), b.len(), "sequences must have equal length");
    assert!(!a.is_empty(), "sequences must be non-empty");
    assert!(block_size >= 1, "block size must be at least one");
    let n = a.len();
    let mut result = vec![f64::INFINITY; n];
    let mut start = 0usize;
    while start < n {
        let end = (start + block_size).min(n);
        let indices: Vec<usize> = (start..end).collect();
        let block = oracle(a, b, &indices);
        assert_eq!(block.len(), indices.len(), "oracle must return one value per target index");
        result[start..end].copy_from_slice(&block);
        start = end;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::{min_plus_convolution, min_plus_convolution_indexed};
    use std::cell::Cell;

    #[test]
    fn recovers_the_full_convolution() {
        let a = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let b = vec![2.0, 7.0, 1.0, 8.0, 2.0, 8.0, 1.0];
        for block in [1, 2, 3, 7, 100] {
            let via_oracle =
                min_plus_via_indexed_oracle(&a, &b, block, min_plus_convolution_indexed);
            assert_eq!(via_oracle, min_plus_convolution(&a, &b), "block size {block}");
        }
    }

    #[test]
    fn makes_ceil_n_over_m_oracle_calls() {
        let a = vec![0.0; 10];
        let b = vec![0.0; 10];
        let calls = Cell::new(0usize);
        let _ = min_plus_via_indexed_oracle(&a, &b, 3, |a, b, m| {
            calls.set(calls.get() + 1);
            assert!(m.len() <= 3);
            min_plus_convolution_indexed(a, b, m)
        });
        assert_eq!(calls.get(), 4, "⌈10/3⌉ = 4 oracle calls expected");
    }

    #[test]
    #[should_panic(expected = "block size must be at least one")]
    fn rejects_zero_block_size() {
        min_plus_via_indexed_oracle(&[1.0], &[1.0], 0, min_plus_convolution_indexed);
    }
}
