//! The executable hardness-reduction chains of Sections 5 and 6.
//!
//! Figure 6 of the paper (batched MaxRS chain):
//!
//! ```text
//! (min,+) → (min,+,M) → (max,+,M) → positive (max,+,M) → batched MaxRS
//!   §5.1        §5.2         §5.3             §5.4
//! ```
//!
//! Section 6 (batched smallest-k-enclosing-interval chain):
//!
//! ```text
//! (min,+) → monotone (min,+) → BSEI
//!   §6.1            §6.2
//! ```
//!
//! Each step is a standalone function taking the downstream solver as an
//! oracle closure, so the chain can be assembled with either the naive
//! reference solvers (for testing the reductions in isolation) or the real
//! geometric solvers from `mrs-batched` (demonstrating that a fast batched
//! MaxRS/BSEI algorithm would yield a fast (min,+)-convolution algorithm —
//! the content of Theorems 1.3 and 1.4).

pub mod bsei;
pub mod m_to_maxplus;
pub mod maxplus_to_positive;
pub mod minplus_to_m;
pub mod monotone;
pub mod positive_to_batched;

pub use bsei::{build_bsei_instance, min_plus_via_bsei, monotone_min_plus_via_bsei};
pub use m_to_maxplus::min_plus_indexed_via_max_plus_indexed;
pub use maxplus_to_positive::max_plus_indexed_via_positive;
pub use minplus_to_m::min_plus_via_indexed_oracle;
pub use monotone::{min_plus_via_monotone_oracle, monotone_min_plus_convolution_naive};
pub use positive_to_batched::{
    build_batched_instance, positive_max_plus_indexed_via_batched_maxrs, BatchedMaxRSInstance,
};

/// The complete Figure 6 chain: solves the general (min,+)-convolution by
/// driving a batched MaxRS solver through all four reductions of Section 5.
///
/// # Example
/// ```
/// use mrs_hardness::convolution::min_plus_convolution;
/// use mrs_hardness::reductions::min_plus_via_batched_maxrs;
///
/// let a = vec![3.0, -1.0, 4.0];
/// let b = vec![2.0, 0.0, 5.0];
/// assert_eq!(min_plus_via_batched_maxrs(&a, &b, 2), min_plus_convolution(&a, &b));
/// ```
///
/// `block_size` is the `m` of Section 5.1 (how many target indices each
/// batched MaxRS instance carries).  Any value in `[1, n]` is correct; the
/// total work is `Θ(n/m)` batched instances of `Θ(m)` queries over `Θ(n)`
/// points each.
pub fn min_plus_via_batched_maxrs(a: &[f64], b: &[f64], block_size: usize) -> Vec<f64> {
    min_plus_via_indexed_oracle(a, b, block_size, |a, b, indices| {
        min_plus_indexed_via_max_plus_indexed(a, b, indices, |a, b, indices| {
            max_plus_indexed_via_positive(a, b, indices, |a, b, indices| {
                positive_max_plus_indexed_via_batched_maxrs(a, b, indices)
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::min_plus_convolution;
    use rand::prelude::*;

    #[test]
    fn full_figure_6_chain_matches_naive() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..20 {
            let n = rng.gen_range(1..50);
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-30.0..30.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-30.0..30.0)).collect();
            let block = rng.gen_range(1..=n);
            let via_chain = min_plus_via_batched_maxrs(&a, &b, block);
            let direct = min_plus_convolution(&a, &b);
            for (k, (x, y)) in via_chain.iter().zip(&direct).enumerate() {
                assert!((x - y).abs() < 1e-6, "n={n} block={block} k={k}: chain {x} vs naive {y}");
            }
        }
    }

    #[test]
    fn both_chains_agree_with_each_other() {
        let a = vec![4.0, -2.0, 7.5, 0.0, 3.0, -9.0];
        let b = vec![1.0, 6.0, -3.5, 2.0, 0.0, 5.0];
        let via_maxrs = min_plus_via_batched_maxrs(&a, &b, 2);
        let via_bsei = min_plus_via_bsei(&a, &b);
        for (x, y) in via_maxrs.iter().zip(&via_bsei) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
