//! Section 6.2 — reduction from monotone (min,+)-convolution to the batched
//! smallest `k`-enclosing interval problem (BSEI).
//!
//! For strictly decreasing sequences `D`, `E` of length `n`, the reduction
//! places `2n` points on the line (Figure 8): `P_i = −D_i + (D_{n−1} − 1)` for
//! the first half (all negative, increasing) and `P_{n+i} = E_{n−1−i} +
//! (1 − E_{n−1})` for the second half (all positive, increasing).  The length
//! `G_{2n−k}` of the smallest interval enclosing `2n−k` points then satisfies
//! `F_k = G_{2n−k} + D_{n−1} + E_{n−1} − 2`.

use mrs_batched::BatchedSei;

use crate::convolution::is_strictly_decreasing;
use crate::reductions::monotone::min_plus_via_monotone_oracle;

/// Builds the `2n` BSEI points of Figure 8 for strictly decreasing sequences.
///
/// # Panics
/// Panics if the sequences differ in length, are empty, or are not strictly
/// decreasing (length-one sequences are accepted).
pub fn build_bsei_instance(d: &[f64], e: &[f64]) -> Vec<f64> {
    assert_eq!(d.len(), e.len(), "sequences must have equal length");
    assert!(!d.is_empty(), "sequences must be non-empty");
    assert!(
        d.len() == 1 || is_strictly_decreasing(d),
        "first sequence must be strictly decreasing"
    );
    assert!(
        e.len() == 1 || is_strictly_decreasing(e),
        "second sequence must be strictly decreasing"
    );
    let n = d.len();
    let d_last = d[n - 1];
    let e_last = e[n - 1];
    let mut points = Vec::with_capacity(2 * n);
    for &di in d {
        points.push(-di + (d_last - 1.0));
    }
    for i in 0..n {
        points.push(e[(n - 1) - i] + (1.0 - e_last));
    }
    points
}

/// Solves the monotone (min,+)-convolution via one batched SEI computation on
/// the Figure 8 point set.
pub fn monotone_min_plus_via_bsei(d: &[f64], e: &[f64]) -> Vec<f64> {
    let points = build_bsei_instance(d, e);
    let n = d.len();
    let solver = BatchedSei::new(&points);
    let lengths = solver.all_lengths(); // lengths[k-1] = G_k for k = 1..2n
    let d_last = d[n - 1];
    let e_last = e[n - 1];
    (0..n)
        .map(|k| {
            let g = lengths[(2 * n - k) - 1];
            g + d_last + e_last - 2.0
        })
        .collect()
}

/// The full Section 6 chain: general (min,+)-convolution solved through the
/// monotone transform and the BSEI oracle.
pub fn min_plus_via_bsei(a: &[f64], b: &[f64]) -> Vec<f64> {
    min_plus_via_monotone_oracle(a, b, monotone_min_plus_via_bsei)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::min_plus_convolution;
    use rand::prelude::*;

    #[test]
    fn figure_8_layout_properties() {
        let d = vec![5.0, 3.0, 1.0];
        let e = vec![6.0, 4.0, 2.0];
        let points = build_bsei_instance(&d, &e);
        assert_eq!(points.len(), 6);
        // First half negative and increasing; second half positive and increasing.
        assert!(points[..3].iter().all(|&p| p < 0.0));
        assert!(points[3..].iter().all(|&p| p > 0.0));
        assert!(points.windows(2).all(|w| w[0] < w[1]));
        // P_{n-1} = -1 and P_n = 1 by construction.
        assert_eq!(points[2], -1.0);
        assert_eq!(points[3], 1.0);
    }

    #[test]
    fn monotone_convolution_via_bsei_matches_naive() {
        let d = vec![10.0, 7.0, 5.0, 2.0, 0.0];
        let e = vec![20.0, 15.0, 9.0, 4.0, 1.0];
        let via_bsei = monotone_min_plus_via_bsei(&d, &e);
        let direct = min_plus_convolution(&d, &e);
        for (x, y) in via_bsei.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-9, "via BSEI {x} vs direct {y}");
        }
    }

    #[test]
    fn full_chain_matches_naive_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(37);
        for _ in 0..30 {
            let n = rng.gen_range(1..60);
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-50.0..50.0)).collect();
            let via_chain = min_plus_via_bsei(&a, &b);
            let direct = min_plus_convolution(&a, &b);
            for (k, (x, y)) in via_chain.iter().zip(&direct).enumerate() {
                assert!((x - y).abs() < 1e-6, "k={k}: chain {x} vs direct {y}");
            }
        }
    }

    #[test]
    fn single_element_chain() {
        assert_eq!(min_plus_via_bsei(&[3.0], &[4.0]), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "strictly decreasing")]
    fn rejects_non_monotone_inputs() {
        build_bsei_instance(&[1.0, 2.0], &[3.0, 1.0]);
    }
}
