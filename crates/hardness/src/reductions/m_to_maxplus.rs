//! Section 5.2 — reduction from (min,+,M)-convolution to (max,+,M)-convolution.
//!
//! Negate both input sequences, call the max oracle, and negate the outputs:
//! `min_{i+j=k}(D_i + E_j) = −max_{i+j=k}(−D_i − E_j)`.  Linear time.

/// Solves the `M`-indexed (min,+)-convolution using an oracle for the
/// `M`-indexed (max,+)-convolution.
pub fn min_plus_indexed_via_max_plus_indexed<O>(
    d: &[f64],
    e: &[f64],
    indices: &[usize],
    oracle: O,
) -> Vec<f64>
where
    O: Fn(&[f64], &[f64], &[usize]) -> Vec<f64>,
{
    assert_eq!(d.len(), e.len(), "sequences must have equal length");
    let neg_d: Vec<f64> = d.iter().map(|x| -x).collect();
    let neg_e: Vec<f64> = e.iter().map(|x| -x).collect();
    let negated = oracle(&neg_d, &neg_e, indices);
    assert_eq!(negated.len(), indices.len(), "oracle must return one value per target index");
    negated.into_iter().map(|x| -x).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::{max_plus_convolution_indexed, min_plus_convolution_indexed};

    #[test]
    fn matches_the_direct_indexed_min_solver() {
        let d = vec![5.0, -3.0, 2.0, 0.0, 7.0];
        let e = vec![1.0, 4.0, -2.0, 3.0, 6.0];
        let indices = vec![0, 1, 3, 4];
        let via_max =
            min_plus_indexed_via_max_plus_indexed(&d, &e, &indices, max_plus_convolution_indexed);
        let direct = min_plus_convolution_indexed(&d, &e, &indices);
        for (x, y) in via_max.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_index_set_is_fine() {
        let via_max = min_plus_indexed_via_max_plus_indexed(
            &[1.0, 2.0],
            &[3.0, 4.0],
            &[],
            max_plus_convolution_indexed,
        );
        assert!(via_max.is_empty());
    }
}
