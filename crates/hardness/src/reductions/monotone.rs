//! Section 6.1 — reduction from (min,+)-convolution to *monotone*
//! (min,+)-convolution.
//!
//! Subtracting `i·Δ` from the `i`-th element (for `Δ` one larger than the
//! largest consecutive increase in either sequence) makes both sequences
//! strictly decreasing without changing which pair attains each minimum:
//! `F_k = C_k − k·Δ`, so `C_k = F_k + k·Δ`.  Linear time.

use crate::convolution::{is_strictly_decreasing, min_plus_convolution};

/// The shift `Δ = 1 + max_i max(A_i − A_{i−1}, B_i − B_{i−1})` of Section 6.1
/// (defined as `1` for length-one sequences).
pub fn monotone_shift(a: &[f64], b: &[f64]) -> f64 {
    let mut max_increase = f64::NEG_INFINITY;
    for seq in [a, b] {
        for w in seq.windows(2) {
            max_increase = max_increase.max(w[1] - w[0]);
        }
    }
    if max_increase.is_finite() {
        1.0 + max_increase.max(0.0)
    } else {
        1.0
    }
}

/// Applies the Section 6.1 transform to one sequence: `D_i = A_i − i·Δ`.
pub fn apply_monotone_shift(seq: &[f64], delta: f64) -> Vec<f64> {
    seq.iter().enumerate().map(|(i, &x)| x - i as f64 * delta).collect()
}

/// Solves the general (min,+)-convolution using an oracle that requires
/// strictly decreasing inputs.
pub fn min_plus_via_monotone_oracle<O>(a: &[f64], b: &[f64], oracle: O) -> Vec<f64>
where
    O: Fn(&[f64], &[f64]) -> Vec<f64>,
{
    assert_eq!(a.len(), b.len(), "sequences must have equal length");
    assert!(!a.is_empty(), "sequences must be non-empty");
    let delta = monotone_shift(a, b);
    let d = apply_monotone_shift(a, delta);
    let e = apply_monotone_shift(b, delta);
    debug_assert!(is_strictly_decreasing(&d) || d.len() == 1);
    debug_assert!(is_strictly_decreasing(&e) || e.len() == 1);
    let f = oracle(&d, &e);
    assert_eq!(f.len(), a.len(), "oracle must return one value per index");
    f.into_iter().enumerate().map(|(k, fk)| fk + k as f64 * delta).collect()
}

/// A reference solver for the monotone problem that simply checks the
/// monotonicity precondition and falls back to the naive quadratic algorithm.
pub fn monotone_min_plus_convolution_naive(d: &[f64], e: &[f64]) -> Vec<f64> {
    assert!(d.len() == 1 || is_strictly_decreasing(d), "first sequence is not strictly decreasing");
    assert!(
        e.len() == 1 || is_strictly_decreasing(e),
        "second sequence is not strictly decreasing"
    );
    min_plus_convolution(d, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_sequences_are_strictly_decreasing() {
        let a = vec![1.0, 5.0, 5.0, 2.0, 9.0];
        let b = vec![0.0, 0.0, 4.0, 4.0, 4.0];
        let delta = monotone_shift(&a, &b);
        assert!(is_strictly_decreasing(&apply_monotone_shift(&a, delta)));
        assert!(is_strictly_decreasing(&apply_monotone_shift(&b, delta)));
    }

    #[test]
    fn already_decreasing_sequences_get_a_small_shift() {
        let a = vec![5.0, 3.0, 1.0];
        let b = vec![9.0, 4.0, 0.0];
        // All consecutive increases are negative, so Δ = 1.
        assert_eq!(monotone_shift(&a, &b), 1.0);
    }

    #[test]
    fn recovers_the_original_convolution() {
        let a = vec![3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let b = vec![2.0, 6.0, 5.0, 3.0, 5.0, 8.0];
        let via_monotone =
            min_plus_via_monotone_oracle(&a, &b, monotone_min_plus_convolution_naive);
        let direct = min_plus_convolution(&a, &b);
        for (x, y) in via_monotone.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn single_element_sequences() {
        let via_monotone =
            min_plus_via_monotone_oracle(&[7.0], &[-2.0], monotone_min_plus_convolution_naive);
        assert_eq!(via_monotone, vec![5.0]);
    }
}
