//! Section 5.4 — reduction from positive (max,+,M)-convolution to batched
//! MaxRS in `R^1`.
//!
//! This is the technically interesting step of Figure 6's chain.  For
//! sequences `A, B` of length `n` the reduction builds `4n` weighted points on
//! the line (Figure 7): every `A_i` becomes a point of weight `A_i` at
//! coordinate `i` with a *guard* of weight `−A_i` at `i − 0.5`, and every
//! `B_j` becomes a point of weight `B_j` at `2n−1−j` with a guard of weight
//! `−B_j` at `2n−1−j+0.5`.  For a target index `k` the query interval length
//! is `L = 2n−1−k`; Lemma 5.1 shows the batched MaxRS answer for that length
//! equals `max_{i+j=k}(A_i + B_j)` exactly.
//!
//! **Reproduction erratum.**  As literally stated in the paper, an interval of
//! length `2n−1−k` whose left endpoint sits on `A_a` with `a > k` stretches
//! past *every* B guard, so all B contributions cancel and the oracle can
//! report the bare value `A_a` — which may exceed `C_k` (symmetrically for a
//! lone `B_b` with `b > k`).  The proof of Lemma 5.1 (case 3) dismisses these
//! placements as "zero or a single element" without arguing they are
//! dominated, and in general they are not.  We repair the construction with
//! two *wall* points of very negative weight at `−0.5` and `2n−0.5`
//! (co-located with the outermost guards): any placement that overshoots the
//! guarded range on either side now picks up the wall penalty, every interval
//! of the intended form `[i, 2n−1−j]` avoids both walls, and the rest of the
//! paper's case analysis goes through verbatim.  See DESIGN.md ("Errata
//! discovered during reproduction").

use mrs_batched::{BatchedMaxRS1D, LinePoint};

/// A fully materialized batched MaxRS instance produced by the reduction,
/// exposed so experiments and examples can inspect the construction of
/// Figure 7.
#[derive(Clone, Debug)]
pub struct BatchedMaxRSInstance {
    /// The `4n` weighted points (value points and guard points).
    pub points: Vec<LinePoint>,
    /// One query interval length per target index, `L_s = 2n − 1 − k_s`.
    pub lengths: Vec<f64>,
    /// The target indices, in the same order as `lengths`.
    pub targets: Vec<usize>,
}

/// Builds the batched MaxRS instance of Section 5.4 for non-negative
/// sequences `a`, `b` and target indices `indices`.
///
/// # Panics
/// Panics if the sequences differ in length, are empty, contain negative
/// entries, or any target index is out of range.
pub fn build_batched_instance(a: &[f64], b: &[f64], indices: &[usize]) -> BatchedMaxRSInstance {
    assert_eq!(a.len(), b.len(), "sequences must have equal length");
    assert!(!a.is_empty(), "sequences must be non-empty");
    assert!(
        a.iter().chain(b.iter()).all(|&x| x >= 0.0),
        "the positive (max,+,M) reduction requires non-negative sequences"
    );
    let n = a.len();
    let x_offset = (2 * n - 1) as f64;
    let mut points = Vec::with_capacity(4 * n + 2);
    for (i, &ai) in a.iter().enumerate() {
        points.push(LinePoint::new(i as f64, ai));
        points.push(LinePoint::new(i as f64 - 0.5, -ai));
    }
    for (j, &bj) in b.iter().enumerate() {
        points.push(LinePoint::new(x_offset - j as f64, bj));
        points.push(LinePoint::new(x_offset - j as f64 + 0.5, -bj));
    }
    // Wall points (see the module-level erratum note): heavier than the total
    // positive weight, co-located with the outermost guards, they make every
    // placement that overshoots the guarded range strictly worse than the
    // intended `[i, 2n−1−j]` placements.
    let wall = 1.0 + a.iter().sum::<f64>() + b.iter().sum::<f64>();
    points.push(LinePoint::new(-0.5, -wall));
    points.push(LinePoint::new(x_offset + 0.5, -wall));
    let mut lengths = Vec::with_capacity(indices.len());
    for &k in indices {
        assert!(k < n, "target index {k} out of range for sequences of length {n}");
        lengths.push(x_offset - k as f64);
    }
    BatchedMaxRSInstance { points, lengths, targets: indices.to_vec() }
}

/// Solves the positive (max,+,M)-convolution by building the point set of
/// Section 5.4 and querying the batched MaxRS solver once per target index.
pub fn positive_max_plus_indexed_via_batched_maxrs(
    a: &[f64],
    b: &[f64],
    indices: &[usize],
) -> Vec<f64> {
    let instance = build_batched_instance(a, b, indices);
    let solver = BatchedMaxRS1D::new(&instance.points);
    solver.solve(&instance.lengths).into_iter().map(|p| p.value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convolution::max_plus_convolution_indexed;
    use rand::prelude::*;

    #[test]
    fn instance_has_the_figure_7_layout() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![4.0, 5.0, 6.0];
        let inst = build_batched_instance(&a, &b, &[0, 2]);
        assert_eq!(inst.points.len(), 14, "4n value/guard points plus the two wall points");
        // A_0 sits at 0 with its guard at -0.5; B_0 sits at 2n-1 = 5 with its
        // guard at 5.5.
        assert!(inst.points.contains(&LinePoint::new(0.0, 1.0)));
        assert!(inst.points.contains(&LinePoint::new(-0.5, -1.0)));
        assert!(inst.points.contains(&LinePoint::new(5.0, 4.0)));
        assert!(inst.points.contains(&LinePoint::new(5.5, -4.0)));
        // Lengths are 2n-1-k.
        assert_eq!(inst.lengths, vec![5.0, 3.0]);
    }

    #[test]
    fn hand_computed_small_case() {
        let a = vec![2.0, 0.0, 7.0];
        let b = vec![1.0, 5.0, 3.0];
        let indices = vec![0, 1, 2];
        let via_maxrs = positive_max_plus_indexed_via_batched_maxrs(&a, &b, &indices);
        // C_0 = 3, C_1 = max(2+5, 0+1) = 7, C_2 = max(2+3, 0+5, 7+1) = 8.
        assert_eq!(via_maxrs, vec![3.0, 7.0, 8.0]);
    }

    #[test]
    fn singleton_sequences() {
        let via_maxrs = positive_max_plus_indexed_via_batched_maxrs(&[4.0], &[9.0], &[0]);
        assert_eq!(via_maxrs, vec![13.0]);
    }

    #[test]
    fn matches_direct_solver_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..30 {
            let n = rng.gen_range(1..40);
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
            let m = rng.gen_range(1..=n);
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            indices.truncate(m);
            let via_maxrs = positive_max_plus_indexed_via_batched_maxrs(&a, &b, &indices);
            let direct = max_plus_convolution_indexed(&a, &b, &indices);
            for ((x, y), &k) in via_maxrs.iter().zip(&direct).zip(&indices) {
                assert!((x - y).abs() < 1e-9, "target {k}: MaxRS {x} vs direct {y}");
            }
        }
    }

    #[test]
    fn integer_valued_sequences_stay_exact() {
        // Integer weights exercise exact cancellation of the guard points.
        let a: Vec<f64> = (0..16).map(|i| ((i * 7) % 13) as f64).collect();
        let b: Vec<f64> = (0..16).map(|i| ((i * 5 + 3) % 11) as f64).collect();
        let indices: Vec<usize> = (0..16).collect();
        let via_maxrs = positive_max_plus_indexed_via_batched_maxrs(&a, &b, &indices);
        let direct = max_plus_convolution_indexed(&a, &b, &indices);
        assert_eq!(via_maxrs, direct);
    }

    #[test]
    #[should_panic(expected = "non-negative sequences")]
    fn rejects_negative_inputs() {
        build_batched_instance(&[1.0, -1.0], &[0.0, 0.0], &[0]);
    }
}
