//! # mrs-hardness — convolution problems and executable hardness reductions
//!
//! The lower-bound half of the bouquet paper (Sections 5 and 6): the
//! (min,+)-convolution problem family with naive reference solvers
//! ([`convolution`]) and, more importantly, every reduction of the two
//! hardness chains as executable code ([`reductions`]).
//!
//! Running the chains end-to-end demonstrates the content of Theorems 1.3 and
//! 1.4 constructively: a batched MaxRS solver (from `mrs-batched`) answers
//! (min,+)-convolution instances through the Figure 6 chain, and a batched
//! smallest-k-enclosing-interval solver answers them through the Section 6
//! chain — so any `o(mn)` (respectively `o(n²)`) algorithm for those geometric
//! problems would contradict the (min,+)-convolution hardness conjecture.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convolution;
pub mod reductions;

pub use convolution::{
    max_plus_convolution, max_plus_convolution_indexed, min_plus_convolution,
    min_plus_convolution_indexed,
};
pub use reductions::{min_plus_via_batched_maxrs, min_plus_via_bsei};
