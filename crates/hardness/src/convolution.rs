//! The (min,+)/(max,+)-convolution problem family (Section 5).
//!
//! All reference solvers here are the "trivial" quadratic ones; the point of
//! the crate is not to compute convolutions fast (conjecturally impossible,
//! \[CMWW19\]) but to provide ground truth for the reduction chains and the
//! Ω(mn)/Ω(n²) scaling experiments.

/// `(min,+)`-convolution: `C_k = min_{i+j=k} (A_i + B_j)` for `k ∈ 0..n`.
///
/// # Panics
/// Panics if the sequences have different lengths or are empty.
pub fn min_plus_convolution(a: &[f64], b: &[f64]) -> Vec<f64> {
    check_inputs(a, b);
    let n = a.len();
    let mut c = vec![f64::INFINITY; n];
    for (k, c_k) in c.iter_mut().enumerate() {
        for (i, &a_i) in a.iter().enumerate().take(k + 1) {
            *c_k = c_k.min(a_i + b[k - i]);
        }
    }
    c
}

/// `(max,+)`-convolution: `C_k = max_{i+j=k} (A_i + B_j)` for `k ∈ 0..n`.
pub fn max_plus_convolution(a: &[f64], b: &[f64]) -> Vec<f64> {
    check_inputs(a, b);
    let n = a.len();
    let mut c = vec![f64::NEG_INFINITY; n];
    for (k, c_k) in c.iter_mut().enumerate() {
        for (i, &a_i) in a.iter().enumerate().take(k + 1) {
            *c_k = c_k.max(a_i + b[k - i]);
        }
    }
    c
}

/// `(min,+,M)`-convolution (Section 5.1): the `(min,+)`-convolution restricted
/// to the target indices `indices`; entry `s` of the result is `C_{indices[s]}`.
///
/// # Panics
/// Panics if any target index is out of range.
pub fn min_plus_convolution_indexed(a: &[f64], b: &[f64], indices: &[usize]) -> Vec<f64> {
    check_inputs(a, b);
    let n = a.len();
    indices
        .iter()
        .map(|&k| {
            assert!(k < n, "target index {k} out of range for sequences of length {n}");
            (0..=k).map(|i| a[i] + b[k - i]).fold(f64::INFINITY, f64::min)
        })
        .collect()
}

/// `(max,+,M)`-convolution (Section 5.2): the `(max,+)`-convolution restricted
/// to the target indices `indices`.
pub fn max_plus_convolution_indexed(a: &[f64], b: &[f64], indices: &[usize]) -> Vec<f64> {
    check_inputs(a, b);
    let n = a.len();
    indices
        .iter()
        .map(|&k| {
            assert!(k < n, "target index {k} out of range for sequences of length {n}");
            (0..=k).map(|i| a[i] + b[k - i]).fold(f64::NEG_INFINITY, f64::max)
        })
        .collect()
}

/// Returns `true` if every element of the sequence is non-negative (the
/// precondition of the positive `(max,+,M)`-convolution of Section 5.3).
pub fn is_non_negative(seq: &[f64]) -> bool {
    seq.iter().all(|&x| x >= 0.0)
}

/// Returns `true` if the sequence is strictly decreasing (the precondition of
/// the monotone `(min,+)`-convolution of Definition 6.1).
pub fn is_strictly_decreasing(seq: &[f64]) -> bool {
    seq.windows(2).all(|w| w[0] > w[1])
}

fn check_inputs(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "convolution inputs must have equal length");
    assert!(!a.is_empty(), "convolution inputs must be non-empty");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hand_computed_min_plus() {
        let a = vec![1.0, 5.0, 2.0];
        let b = vec![0.0, 3.0, 1.0];
        // C_0 = 1+0; C_1 = min(1+3, 5+0) = 4; C_2 = min(1+1, 5+3, 2+0) = 2.
        assert_eq!(min_plus_convolution(&a, &b), vec![1.0, 4.0, 2.0]);
    }

    #[test]
    fn hand_computed_max_plus() {
        let a = vec![1.0, 5.0, 2.0];
        let b = vec![0.0, 3.0, 1.0];
        // C_0 = 1; C_1 = max(4, 5) = 5; C_2 = max(2, 8, 2) = 8.
        assert_eq!(max_plus_convolution(&a, &b), vec![1.0, 5.0, 8.0]);
    }

    #[test]
    fn indexed_variants_match_full_variants() {
        let a = vec![3.0, -1.0, 4.0, 1.0, 5.0];
        let b = vec![2.0, 7.0, -1.0, 8.0, 2.0];
        let indices = vec![0, 2, 4];
        let full_min = min_plus_convolution(&a, &b);
        let full_max = max_plus_convolution(&a, &b);
        assert_eq!(
            min_plus_convolution_indexed(&a, &b, &indices),
            indices.iter().map(|&k| full_min[k]).collect::<Vec<_>>()
        );
        assert_eq!(
            max_plus_convolution_indexed(&a, &b, &indices),
            indices.iter().map(|&k| full_max[k]).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duality_between_min_and_max() {
        let a = vec![1.0, -2.0, 3.5, 0.0];
        let b = vec![4.0, 2.0, -1.0, 6.0];
        let neg_a: Vec<f64> = a.iter().map(|x| -x).collect();
        let neg_b: Vec<f64> = b.iter().map(|x| -x).collect();
        let min = min_plus_convolution(&a, &b);
        let max_of_neg = max_plus_convolution(&neg_a, &neg_b);
        for (m, mn) in min.iter().zip(&max_of_neg) {
            assert!((m + mn).abs() < 1e-12, "min(A,B) must equal -max(-A,-B)");
        }
    }

    #[test]
    fn predicates() {
        assert!(is_non_negative(&[0.0, 1.0, 2.0]));
        assert!(!is_non_negative(&[0.0, -0.1]));
        assert!(is_strictly_decreasing(&[3.0, 2.0, -1.0]));
        assert!(!is_strictly_decreasing(&[3.0, 3.0]));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn rejects_mismatched_lengths() {
        min_plus_convolution(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn min_is_bounded_by_endpoint_sums(
            a in proptest::collection::vec(-10.0f64..10.0, 1..20),
            shift in -5.0f64..5.0,
        ) {
            let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
            let c = min_plus_convolution(&a, &b);
            for (k, &ck) in c.iter().enumerate() {
                // C_k is at most A_0 + B_k and at least the min over the
                // diagonal of the smallest entries.
                prop_assert!(ck <= a[0] + b[k] + 1e-9);
                let min_a = a.iter().cloned().fold(f64::INFINITY, f64::min);
                let min_b = b.iter().cloned().fold(f64::INFINITY, f64::min);
                prop_assert!(ck >= min_a + min_b - 1e-9);
            }
        }
    }
}
