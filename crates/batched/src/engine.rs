//! Engine integration: expose the batched 1-D solver through the
//! `mrs_core::engine` dispatch layer.
//!
//! [`BatchedIntervalSolver`] wraps [`BatchedMaxRS1D`]: one engine `solve`
//! builds the sorted structure and answers the instance's single interval
//! length with the `O(n)` two-pointer sweep.  For genuinely batched
//! workloads (many lengths over one point set) use
//! [`BatchedIntervalSolver::solve_lengths`] or [`BatchedMaxRS1D`] directly —
//! the per-length cost then drops to `O(n)` with the `O(n log n)` build paid
//! once.
//!
//! [`register`] plugs the solver into a [`Registry`]; the `maxrs` facade's
//! `engine::registry()` calls it so the solver is visible to every consumer
//! of the full workspace.

use std::sync::Arc;
use std::time::Instant;

use mrs_core::engine::{
    BatchCapability, DimSupport, EngineResult, Guarantee, GuaranteeClass, ProblemKind, RangeShape,
    Registry, ShapeClass, SharedIndex, SolveStats, SolverDescriptor, SolverReport,
    WeightedInstance, WeightedSolver,
};
use mrs_core::input::Placement;
use mrs_geom::Point;

use crate::batched_maxrs::BatchedMaxRS1D;
use crate::LinePoint;

/// The batched 1-D MaxRS solver (Section 5 upper bound), dispatchable through
/// the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchedIntervalSolver;

impl BatchedIntervalSolver {
    /// Capability record.
    pub const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "batched-interval-1d",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::Ball,
        dims: DimSupport::Fixed(1),
        guarantee: GuaranteeClass::Exact,
        dynamic: false,
        batch: BatchCapability::IndexShared,
        negative_weights: true,
        reference: "Theorem 1.3 upper bound (O(n log n + m·n))",
    };

    /// Answers many interval lengths over one instance, sharing the
    /// `O(n log n)` build: the batched setting of Theorem 1.3.
    pub fn solve_lengths(
        &self,
        instance: &WeightedInstance<1>,
        lengths: &[f64],
    ) -> Vec<SolverReport<Placement<1>>> {
        let solver = BatchedMaxRS1D::new(&to_line_points(instance));
        lengths
            .iter()
            .map(|&len| {
                // Per-length timing only; the shared O(n log n) build above is
                // amortized across the batch and not charged to any report.
                let start = Instant::now();
                let best = solver.solve_one(len);
                let mut center = Point::<1>::origin();
                center[0] = 0.5 * (best.interval.lo + best.interval.hi);
                SolverReport {
                    solver: Self::DESCRIPTOR.name,
                    placement: Placement { center, value: best.value },
                    guarantee: Guarantee::Exact,
                    stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
                }
            })
            .collect()
    }
}

fn to_line_points(instance: &WeightedInstance<1>) -> Vec<LinePoint> {
    instance.points().iter().map(|wp| LinePoint::new(wp.point[0], wp.weight)).collect()
}

impl WeightedSolver<1> for BatchedIntervalSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, instance: &WeightedInstance<1>) -> EngineResult<SolverReport<Placement<1>>> {
        let name = Self::DESCRIPTOR.name;
        let radius = instance.shape().ball_radius().ok_or(
            mrs_core::engine::EngineError::UnsupportedShape {
                solver: name,
                shape: instance.shape().class(),
            },
        )?;
        let start = Instant::now();
        let solver = BatchedMaxRS1D::new(&to_line_points(instance));
        let best = solver.solve_one(2.0 * radius);
        let mut center = Point::<1>::origin();
        center[0] = 0.5 * (best.interval.lo + best.interval.hi);
        Ok(SolverReport {
            solver: name,
            placement: Placement { center, value: best.value },
            guarantee: Guarantee::Exact,
            stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
        })
    }

    /// The index-sharing batch path (the reference `IndexShared`
    /// implementation): adopt the executor's shared sorted event list in
    /// `O(n)` — built once per batch — and answer every ball query with the
    /// `O(n)` two-pointer sweep, so a batch of `m` queries costs
    /// `O(n log n + m·n)` total instead of `m` independent
    /// `O(n log n)` builds.
    fn solve_all(
        &self,
        _base: &WeightedInstance<1>,
        shapes: &[RangeShape<1>],
        index: &SharedIndex<1>,
        _threads: usize,
    ) -> Vec<EngineResult<SolverReport<Placement<1>>>> {
        let name = Self::DESCRIPTOR.name;
        let solver = BatchedMaxRS1D::from_sorted(index.sorted_line().clone());
        shapes
            .iter()
            .map(|shape| {
                let radius =
                    shape.ball_radius().ok_or(mrs_core::engine::EngineError::UnsupportedShape {
                        solver: name,
                        shape: shape.class(),
                    })?;
                let start = Instant::now();
                let best = solver.solve_one(2.0 * radius);
                let mut center = Point::<1>::origin();
                center[0] = 0.5 * (best.interval.lo + best.interval.hi);
                Ok(SolverReport {
                    solver: name,
                    placement: Placement { center, value: best.value },
                    guarantee: Guarantee::Exact,
                    stats: SolveStats { elapsed: start.elapsed(), ..SolveStats::default() },
                })
            })
            .collect()
    }
}

/// Registers this crate's solvers with an engine registry.
pub fn register(registry: &mut Registry) {
    registry.register_weighted::<1>(Arc::new(BatchedIntervalSolver));
}

/// The full workspace registry under `config`: the `mrs_core` built-ins
/// plus everything this crate contributes.  This is THE one place the
/// "fully wired" solver set is defined — the `maxrs` facade
/// (`engine::registry_with`) and the `mrs_server` query service both
/// delegate here, so the CLI and the server can never drift apart on which
/// solvers exist.
pub fn full_registry(config: mrs_core::engine::EngineConfig) -> Registry {
    let mut registry = Registry::with_config(config);
    register(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::engine::{registry, RangeShape};
    use mrs_geom::WeightedPoint;

    fn line_instance() -> WeightedInstance<1> {
        let points = [0.0, 0.4, 0.9, 3.0, 3.2, 9.0]
            .iter()
            .map(|&x| WeightedPoint::unit(Point::new([x])))
            .collect();
        WeightedInstance::<1>::new(points, RangeShape::interval(1.0))
    }

    #[test]
    fn engine_dispatch_matches_exact_interval_solver() {
        let instance = line_instance();
        let mut reg = registry();
        register(&mut reg);
        let batched = reg.weighted::<1>("batched-interval-1d").unwrap();
        let exact = reg.weighted::<1>("exact-interval-1d").unwrap();
        let a = batched.solve(&instance).unwrap();
        let b = exact.solve(&instance).unwrap();
        assert_eq!(a.placement.value, b.placement.value);
        assert_eq!(instance.value_at(&a.placement.center), a.placement.value);
        assert!(reg.descriptors().iter().any(|d| d.name == "batched-interval-1d"));
    }

    #[test]
    fn batched_lengths_share_one_build() {
        let instance = line_instance();
        let reports = BatchedIntervalSolver.solve_lengths(&instance, &[0.1, 1.0, 10.0]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[1].placement.value, 3.0);
        assert_eq!(reports[2].placement.value, 6.0);
        // Longer intervals never cover less.
        assert!(reports[0].placement.value <= reports[1].placement.value);
    }

    #[test]
    fn box_shape_is_rejected() {
        let instance = WeightedInstance::<1>::axis_box(vec![], [1.0]);
        assert!(BatchedIntervalSolver.solve(&instance).is_err());
    }

    #[test]
    fn solve_all_shares_the_executor_index_and_matches_per_query_solves() {
        let instance = line_instance();
        let index = SharedIndex::<1>::new(instance.shared_points(), Vec::new().into());
        let shapes = [
            RangeShape::interval(0.1),
            RangeShape::interval(1.0),
            RangeShape::interval(10.0),
            RangeShape::<1>::axis_box([1.0]),
        ];
        let results = BatchedIntervalSolver.solve_all(&instance, &shapes, &index, 1);
        assert_eq!(results.len(), 4);
        for (shape, result) in shapes.iter().zip(&results) {
            match result {
                Err(error) => {
                    assert!(shape.ball_radius().is_none(), "unexpected error {error}");
                }
                Ok(report) => {
                    let one = BatchedIntervalSolver.solve(&instance.with_shape(*shape)).unwrap();
                    assert_eq!(report.placement.value, one.placement.value);
                }
            }
        }
        // The sorted event list was built exactly once, by solve_all.
        assert_eq!(index.builds(), 2, "sorted line + Fenwick, shared across all queries");
    }
}
