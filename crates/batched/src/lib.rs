//! # mrs-batched — batched 1-D MaxRS and smallest k-enclosing intervals
//!
//! The batched problems of Sections 5 and 6 of the bouquet paper:
//!
//! * [`batched_maxrs`] — given `n` weighted points on the line and `m`
//!   interval lengths, solve MaxRS for every length in `O(n log n + m·n)`
//!   total.  Theorem 1.3 shows Ω(mn) is required assuming the hardness of
//!   (min,+)-convolution, so this upper bound is essentially tight; the
//!   executable reduction lives in `mrs-hardness`.
//! * [`sei`] — the smallest `k`-enclosing interval for a single `k` (`O(n)`
//!   after sorting) and for all `k ∈ [1, n]` at once (`O(n²)`), matching the
//!   conditional Ω(n²) lower bound of Theorem 1.4.
//! * [`batched_rect2d`] — the planar batched drivers the paper quotes as upper
//!   bounds: `O(m·n log n)` for rectangles and `O(m·n² log n)` for disks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batched_maxrs;
pub mod batched_rect2d;
pub mod engine;
pub mod sei;

pub use batched_maxrs::{batched_maxrs_1d, BatchedMaxRS1D};
pub use batched_rect2d::{batched_disk_maxrs, batched_rect_maxrs};
pub use engine::BatchedIntervalSolver;
pub use sei::{batched_sei_lengths, smallest_k_enclosing_interval, BatchedSei, SeiResult};

// Re-export the 1-D point/placement types so downstream crates (notably the
// hardness reductions) can build batched instances without depending on
// `mrs-core` directly.
pub use mrs_core::exact::interval1d::{IntervalPlacement, LinePoint};
