//! Smallest `k`-enclosing interval (SEI) and its batched version (Section 6).
//!
//! Given `n` points on the real line, the SEI problem asks for the shortest
//! interval containing `k` of them; the batched version asks for all
//! `k ∈ [1, n]` at once.  A sliding window answers a single `k` in `O(n)`
//! after sorting, and the batched version runs that window for every `k`, for
//! `O(n²)` total — the upper bound that Theorem 1.4's conditional Ω(n²) lower
//! bound (via monotone (min,+)-convolution, see `mrs-hardness`) shows is
//! essentially optimal.

use mrs_geom::Interval;

/// Result of a smallest-`k`-enclosing-interval query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeiResult {
    /// The shortest interval found.
    pub interval: Interval,
    /// Number of points it encloses (the queried `k`).
    pub k: usize,
}

impl SeiResult {
    /// Length of the found interval.
    pub fn length(&self) -> f64 {
        self.interval.length()
    }
}

/// A batched SEI solver over a fixed point set.
///
/// # Example
/// ```
/// use mrs_batched::BatchedSei;
///
/// let solver = BatchedSei::new(&[0.0, 1.0, 1.5, 9.0]);
/// assert_eq!(solver.smallest_enclosing(2).length(), 0.5);
/// assert_eq!(solver.all_lengths().len(), 4);
/// ```
///
#[derive(Clone, Debug)]
pub struct BatchedSei {
    xs: Vec<f64>,
}

impl BatchedSei {
    /// Builds the solver (sorts the points) in `O(n log n)`.
    pub fn new(points: &[f64]) -> Self {
        let mut xs = points.to_vec();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("coordinates must be comparable"));
        Self { xs }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The sorted coordinates.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The smallest interval enclosing `k` points, in `O(n)`.
    ///
    /// # Panics
    /// Panics if `k` is zero or exceeds the number of points.
    pub fn smallest_enclosing(&self, k: usize) -> SeiResult {
        let n = self.xs.len();
        assert!(k >= 1 && k <= n, "k must lie in [1, n]; got k={k}, n={n}");
        let mut best_start = 0usize;
        let mut best_len = f64::INFINITY;
        for start in 0..=(n - k) {
            let len = self.xs[start + k - 1] - self.xs[start];
            if len < best_len {
                best_len = len;
                best_start = start;
            }
        }
        SeiResult { interval: Interval::new(self.xs[best_start], self.xs[best_start + k - 1]), k }
    }

    /// The batched problem: the length of the smallest `k`-enclosing interval
    /// for every `k ∈ [1, n]`, in `O(n²)` total.  Entry `k - 1` of the result
    /// is the answer for `k`.
    pub fn all_lengths(&self) -> Vec<f64> {
        (1..=self.xs.len()).map(|k| self.smallest_enclosing(k).length()).collect()
    }
}

/// Convenience function: the smallest `k`-enclosing interval of an unsorted
/// point list.
pub fn smallest_k_enclosing_interval(points: &[f64], k: usize) -> SeiResult {
    BatchedSei::new(points).smallest_enclosing(k)
}

/// Convenience function: the batched SEI lengths of an unsorted point list.
pub fn batched_sei_lengths(points: &[f64]) -> Vec<f64> {
    BatchedSei::new(points).all_lengths()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[test]
    fn simple_instance() {
        let solver = BatchedSei::new(&[0.0, 1.0, 1.2, 5.0, 5.1]);
        assert_eq!(solver.smallest_enclosing(1).length(), 0.0);
        assert!((solver.smallest_enclosing(2).length() - 0.1).abs() < 1e-12);
        assert!((solver.smallest_enclosing(3).length() - 1.2).abs() < 1e-12);
        assert!((solver.smallest_enclosing(5).length() - 5.1).abs() < 1e-12);
        let all = solver.all_lengths();
        assert_eq!(all.len(), 5);
        assert!((all[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn lengths_are_monotone_in_k() {
        let mut rng = StdRng::seed_from_u64(9);
        let points: Vec<f64> = (0..200).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let all = batched_sei_lengths(&points);
        for w in all.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "SEI lengths must be non-decreasing in k");
        }
    }

    #[test]
    fn found_interval_really_encloses_k_points() {
        let mut rng = StdRng::seed_from_u64(10);
        let points: Vec<f64> = (0..80).map(|_| rng.gen_range(0.0..50.0)).collect();
        let solver = BatchedSei::new(&points);
        for k in [1, 2, 10, 40, 80] {
            let res = solver.smallest_enclosing(k);
            let covered = points.iter().filter(|&&x| res.interval.contains(x)).count();
            assert!(covered >= k, "k={k}: interval covers only {covered}");
        }
    }

    #[test]
    #[should_panic(expected = "k must lie in [1, n]")]
    fn rejects_out_of_range_k() {
        BatchedSei::new(&[1.0, 2.0]).smallest_enclosing(3);
    }

    #[test]
    fn duplicate_coordinates() {
        let solver = BatchedSei::new(&[2.0, 2.0, 2.0, 7.0]);
        assert_eq!(solver.smallest_enclosing(3).length(), 0.0);
        assert_eq!(solver.smallest_enclosing(4).length(), 5.0);
    }

    proptest! {
        #[test]
        fn matches_brute_force(points in proptest::collection::vec(-50.0f64..50.0, 1..40)) {
            let solver = BatchedSei::new(&points);
            let mut sorted = points.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for k in 1..=points.len() {
                let mut best = f64::INFINITY;
                for s in 0..=(points.len() - k) {
                    best = best.min(sorted[s + k - 1] - sorted[s]);
                }
                prop_assert!((solver.smallest_enclosing(k).length() - best).abs() < 1e-12);
            }
        }
    }
}
