//! Batched MaxRS in the plane: many rectangle sizes (or disk radii) against
//! one point set.
//!
//! Section 1.2 of the paper frames the batched problem in the plane — `m`
//! rectangle sizes answered by running the exact `O(n log n)` sweep per query,
//! for `O(m·n log n)` total — and notes (via Theorem 1.3) that beating
//! `O(m·n)` is unlikely even on the line.  The open-problems section adds the
//! disk version, answered by the exact `O(n² log n)` sweep per radius.  Both
//! batched drivers are provided here so the upper bounds the paper quotes are
//! runnable.

use mrs_core::exact::disk2d::max_disk_placement;
use mrs_core::exact::rect2d::{max_rect_placement, RectPlacement};
use mrs_core::input::Placement;
use mrs_geom::WeightedPoint;

/// Batched rectangle MaxRS: one exact sweep per requested `(width, height)`
/// size, `O(m·n log n)` total.
pub fn batched_rect_maxrs(points: &[WeightedPoint<2>], sizes: &[(f64, f64)]) -> Vec<RectPlacement> {
    sizes.iter().map(|&(w, h)| max_rect_placement(points, w, h)).collect()
}

/// Batched disk MaxRS: one exact sweep per requested radius, `O(m·n² log n)`
/// total (the upper bound quoted in the paper's open problems).
pub fn batched_disk_maxrs(points: &[WeightedPoint<2>], radii: &[f64]) -> Vec<Placement<2>> {
    radii.iter().map(|&r| max_disk_placement(points, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_geom::Point2;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<WeightedPoint<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                WeightedPoint::new(
                    Point2::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect()
    }

    #[test]
    fn batched_rectangles_are_monotone_in_size() {
        let points = random_points(150, 3);
        let sizes: Vec<(f64, f64)> = (1..8).map(|i| (0.5 * i as f64, 0.5 * i as f64)).collect();
        let answers = batched_rect_maxrs(&points, &sizes);
        assert_eq!(answers.len(), sizes.len());
        for pair in answers.windows(2) {
            assert!(pair[1].value + 1e-9 >= pair[0].value);
        }
    }

    #[test]
    fn batched_disks_are_monotone_in_radius() {
        let points = random_points(80, 4);
        let radii = vec![0.25, 0.5, 1.0, 2.0, 4.0, 16.0];
        let answers = batched_disk_maxrs(&points, &radii);
        for pair in answers.windows(2) {
            assert!(pair[1].value + 1e-9 >= pair[0].value);
        }
        // A huge radius covers everything.
        let total: f64 = points.iter().map(|p| p.weight).sum();
        assert!((answers.last().unwrap().value - total).abs() < 1e-9);
    }

    #[test]
    fn each_batched_answer_matches_the_single_query_solver() {
        let points = random_points(60, 5);
        let sizes = vec![(1.0, 2.0), (2.0, 1.0), (3.0, 0.5)];
        let batched = batched_rect_maxrs(&points, &sizes);
        for (&(w, h), ans) in sizes.iter().zip(&batched) {
            let single = max_rect_placement(&points, w, h);
            assert_eq!(single.value, ans.value);
        }
        let radii = vec![0.7, 1.3];
        let batched = batched_disk_maxrs(&points, &radii);
        for (&r, ans) in radii.iter().zip(&batched) {
            assert_eq!(max_disk_placement(&points, r).value, ans.value);
        }
    }

    #[test]
    fn empty_point_set() {
        assert!(batched_rect_maxrs(&[], &[(1.0, 1.0)])[0].value == 0.0);
        assert!(batched_disk_maxrs(&[], &[1.0])[0].value == 0.0);
    }
}
