//! Batched MaxRS on the real line (Section 5 of the paper).
//!
//! Given `n` weighted points and `m` interval lengths, solve the MaxRS problem
//! for every length.  The solver here sorts the points once and answers each
//! length with a linear two-pointer sweep, for a total of `O(n log n + m·n)` —
//! the upper bound that Theorem 1.3's conditional Ω(mn) lower bound (proved
//! via the (min,+)-convolution reduction in `mrs-hardness`) shows is
//! essentially the best possible.

use mrs_core::exact::interval1d::{IntervalPlacement, LinePoint, SortedLine};
use mrs_geom::Interval;

/// A batched MaxRS solver over a fixed 1-D point set.
///
/// # Example
/// ```
/// use mrs_batched::{BatchedMaxRS1D, LinePoint};
///
/// let points = vec![
///     LinePoint::new(0.0, 1.0),
///     LinePoint::new(0.8, 1.0),
///     LinePoint::new(5.0, 1.0),
/// ];
/// let solver = BatchedMaxRS1D::new(&points);
/// let answers = solver.solve(&[1.0, 10.0]);
/// assert_eq!(answers[0].value, 2.0);
/// assert_eq!(answers[1].value, 3.0);
/// ```
///
#[derive(Clone, Debug)]
pub struct BatchedMaxRS1D {
    xs: Vec<f64>,
    prefix: Vec<f64>,
    line: SortedLine,
}

impl BatchedMaxRS1D {
    /// Builds the solver in `O(n log n)`.
    pub fn new(points: &[LinePoint]) -> Self {
        Self::from_sorted(SortedLine::new(points))
    }

    /// Adopts an already-sorted line in `O(n)`, skipping the sort — the path
    /// the batch executor takes when its shared index has built the sorted
    /// event list once for the whole batch.
    pub fn from_sorted(line: SortedLine) -> Self {
        let xs = line.xs().to_vec();
        let prefix = line.prefix().to_vec();
        Self { xs, prefix, line }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if there are no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Solves MaxRS for a single interval length in `O(n)` with a two-pointer
    /// sweep over the candidate left endpoints (each point, and each point
    /// shifted left by the length).
    pub fn solve_one(&self, len: f64) -> IntervalPlacement {
        assert!(len.is_finite() && len >= 0.0, "interval length must be non-negative");
        let n = self.xs.len();
        if n == 0 {
            return IntervalPlacement { interval: Interval::from_start(0.0, len), value: 0.0 };
        }
        // Candidate left endpoints in increasing order: merge of xs[i] - len and xs[i].
        let mut best = IntervalPlacement {
            interval: Interval::from_start(self.xs[0] - 2.0 * len - 2.0, len),
            value: 0.0,
        };
        let mut lo = 0usize; // first index with xs[lo] >= start - tol
        let mut hi = 0usize; // first index with xs[hi] > start + len + tol
        let mut a = 0usize; // cursor into the shifted candidate list
        let mut b = 0usize; // cursor into the direct candidate list
        let evaluate =
            |start: f64, lo: &mut usize, hi: &mut usize, best: &mut IntervalPlacement| {
                while *lo < n && self.xs[*lo] < start - 1e-12 {
                    *lo += 1;
                }
                while *hi < n && self.xs[*hi] <= start + len + 1e-12 {
                    *hi += 1;
                }
                let value = self.prefix[*hi] - self.prefix[(*lo).min(*hi)];
                if value > best.value + 1e-15 {
                    *best = IntervalPlacement { interval: Interval::from_start(start, len), value };
                }
            };
        while a < n || b < n {
            let next_shifted = if a < n { self.xs[a] - len } else { f64::INFINITY };
            let next_direct = if b < n { self.xs[b] } else { f64::INFINITY };
            if next_shifted <= next_direct {
                evaluate(next_shifted, &mut lo, &mut hi, &mut best);
                a += 1;
            } else {
                evaluate(next_direct, &mut lo, &mut hi, &mut best);
                b += 1;
            }
        }
        best
    }

    /// Solves MaxRS for every length in `lengths`, in `O(m·n)` after the
    /// `O(n log n)` build.
    pub fn solve(&self, lengths: &[f64]) -> Vec<IntervalPlacement> {
        lengths.iter().map(|&len| self.solve_one(len)).collect()
    }

    /// The `O(m·n log n)` reference implementation (per-length binary-search
    /// solver), kept for cross-checking and for the benchmark comparison.
    pub fn solve_logarithmic(&self, lengths: &[f64]) -> Vec<IntervalPlacement> {
        lengths.iter().map(|&len| self.line.max_interval(len)).collect()
    }
}

/// Convenience function: batched MaxRS over an unsorted point list.
pub fn batched_maxrs_1d(points: &[LinePoint], lengths: &[f64]) -> Vec<IntervalPlacement> {
    BatchedMaxRS1D::new(points).solve(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;

    #[test]
    fn empty_input() {
        let solver = BatchedMaxRS1D::new(&[]);
        assert!(solver.is_empty());
        let res = solver.solve(&[1.0, 2.0]);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|r| r.value == 0.0));
    }

    #[test]
    fn matches_single_length_solver() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let n = rng.gen_range(1..60);
            let points: Vec<LinePoint> = (0..n)
                .map(|_| LinePoint::new(rng.gen_range(-20.0..20.0), rng.gen_range(-2.0..5.0)))
                .collect();
            let lengths: Vec<f64> = (0..10).map(|_| rng.gen_range(0.0..15.0)).collect();
            let solver = BatchedMaxRS1D::new(&points);
            let fast = solver.solve(&lengths);
            let slow = solver.solve_logarithmic(&lengths);
            for (f, s) in fast.iter().zip(&slow) {
                assert!(
                    (f.value - s.value).abs() < 1e-9,
                    "two-pointer {} vs binary-search {}",
                    f.value,
                    s.value
                );
            }
        }
    }

    #[test]
    fn increasing_lengths_cover_no_less_weight_for_positive_points() {
        let points: Vec<LinePoint> = (0..50).map(|i| LinePoint::new(i as f64 * 0.7, 1.0)).collect();
        let solver = BatchedMaxRS1D::new(&points);
        let lengths: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let res = solver.solve(&lengths);
        for w in res.windows(2) {
            assert!(w[1].value + 1e-12 >= w[0].value);
        }
    }

    #[test]
    fn guarded_points_behave_like_the_reduction_expects() {
        // The Section 5.4 gadget: positive points with negative guards half a
        // unit to the side.  The best interval of length 3 grabs the two
        // positive points without either guard.
        let points = vec![
            LinePoint::new(0.0, 4.0),
            LinePoint::new(-0.5, -4.0),
            LinePoint::new(3.0, 7.0),
            LinePoint::new(3.5, -7.0),
        ];
        let solver = BatchedMaxRS1D::new(&points);
        let res = solver.solve(&[3.0, 0.5, 10.0]);
        assert_eq!(res[0].value, 11.0);
        assert_eq!(res[1].value, 7.0);
        // Length 10 cannot avoid a guard on one side; the best it can do is end
        // exactly at the second positive point and drop its guard.
        assert_eq!(res[2].value, 7.0);
    }

    proptest! {
        #[test]
        fn value_is_between_zero_and_total_positive_weight(
            coords in proptest::collection::vec((-30.0f64..30.0, -3.0f64..6.0), 1..50),
            lengths in proptest::collection::vec(0.0f64..20.0, 1..10),
        ) {
            let points: Vec<LinePoint> =
                coords.iter().map(|&(x, w)| LinePoint::new(x, w)).collect();
            let positive_total: f64 = points.iter().map(|p| p.weight.max(0.0)).sum();
            let solver = BatchedMaxRS1D::new(&points);
            for r in solver.solve(&lengths) {
                prop_assert!(r.value >= -1e-9);
                prop_assert!(r.value <= positive_total + 1e-9);
            }
        }
    }
}
