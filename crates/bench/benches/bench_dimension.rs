//! E3 (Theorem 1.2): the sampling technique across dimensions — the running
//! time must not blow up like log^d n.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::config::SamplingConfig;
use mrs_core::input::WeightedBallInstance;
use mrs_core::technique1::approx_static_ball;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn run_in_dimension<const D: usize>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
) {
    let points = workloads::uniform_points_d::<D>(200, 5.0, 17);
    let instance = WeightedBallInstance::new(points, 1.0);
    let mut cfg = SamplingConfig::new(0.4).with_seed(5);
    cfg.max_grids = Some(4);
    cfg.max_samples_per_cell = 16;
    group.bench_with_input(BenchmarkId::new("sampling_eps_0.4_n_200", D), &D, |b, _| {
        b.iter(|| black_box(approx_static_ball(&instance, cfg).value));
    });
}

fn bench_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_dimension_scaling");
    run_in_dimension::<2>(&mut group);
    run_in_dimension::<3>(&mut group);
    run_in_dimension::<4>(&mut group);
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dimension
}
criterion_main!(benches);
