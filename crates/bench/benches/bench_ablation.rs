//! Ablation of the design choices called out in DESIGN.md:
//!
//! * how many shifted grids from the Lemma 2.1 family are kept
//!   (`SamplingConfig::max_grids`) — the worst-case guarantee needs all of
//!   them, the practical configurations cap them;
//! * how many sample points are drawn per non-empty cell
//!   (`max_samples_per_cell`);
//! * Technique 1 (point sampling) vs the prior-work input-sampling `(1 − ε)`
//!   baseline on the same planar workload.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::baselines::{approx_disk_by_input_sampling, InputSamplingConfig};
use mrs_core::config::SamplingConfig;
use mrs_core::input::WeightedBallInstance;
use mrs_core::technique1::approx_static_ball;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_ablation(c: &mut Criterion) {
    let points = workloads::clustered_points_2d(1500, 6, 14.0, 1.2, 5);
    let instance = WeightedBallInstance::new(points, 1.0);

    let mut group = c.benchmark_group("ablation_sampling_parameters");
    for &grids in &[1usize, 4, 16] {
        let cfg = SamplingConfig::practical(0.25).with_seed(2).with_max_grids(Some(grids));
        group.bench_with_input(BenchmarkId::new("max_grids", grids), &grids, |b, _| {
            b.iter(|| black_box(approx_static_ball(&instance, cfg).value));
        });
    }
    for &samples in &[8usize, 32, 128] {
        let mut cfg = SamplingConfig::practical(0.25).with_seed(2);
        cfg.max_samples_per_cell = samples;
        cfg.min_samples_per_cell = samples.min(4);
        group.bench_with_input(BenchmarkId::new("samples_per_cell", samples), &samples, |b, _| {
            b.iter(|| black_box(approx_static_ball(&instance, cfg).value));
        });
    }

    // Technique 1 vs the prior-work input-sampling baseline (§1.5 trade-off).
    let t1 = SamplingConfig::practical(0.25).with_seed(3);
    group.bench_function("technique1_point_sampling", |b| {
        b.iter(|| black_box(approx_static_ball(&instance, t1).value));
    });
    let baseline = InputSamplingConfig::new(0.25).with_seed(3);
    group.bench_function("prior_work_input_sampling", |b| {
        b.iter(|| black_box(approx_disk_by_input_sampling(&instance, baseline).value));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ablation
}
criterion_main!(benches);
