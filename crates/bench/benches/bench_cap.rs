//! E9 (Lemma 3.2 / Figure 2): spherical-cap coverage fractions — closed form
//! vs Monte-Carlo estimation cost.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_geom::cap::{
    lemma32_configuration, lemma32_covered_fraction, monte_carlo_covered_fraction,
};
use rand::prelude::*;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_cap_fractions");
    for &d in &[2usize, 5] {
        group.bench_with_input(BenchmarkId::new("closed_form", d), &d, |b, _| {
            b.iter(|| black_box(lemma32_covered_fraction(d, 0.1)));
        });
    }
    group.bench_function("monte_carlo_d3_10k", |b| {
        let mut rng = StdRng::seed_from_u64(97);
        let (cfg_c, cfg_b) = lemma32_configuration::<3>(0.1);
        b.iter(|| black_box(monte_carlo_covered_fraction(&cfg_c, &cfg_b, 10_000, &mut rng)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cap
}
criterion_main!(benches);
