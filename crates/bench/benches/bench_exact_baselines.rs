//! Ablation: the exact baselines the paper builds on — 1-D interval sweep
//! (O(n log n)), rectangle sweep (O(n log n), [IA83]/[NB95]) and the planar
//! disk sweep (O(n² log n), [CL86]) — to show where the quadratic wall sits
//! and why the approximation algorithms are needed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::exact::disk2d::max_disk_placement;
use mrs_core::exact::interval1d::max_interval_placement;
use mrs_core::exact::rect2d::max_rect_placement;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_exact_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_baselines");
    for &n in &[1000usize, 4000] {
        let line = workloads::line_points(n, 500.0, 1);
        group.bench_with_input(BenchmarkId::new("interval_1d", n), &n, |b, _| {
            b.iter(|| black_box(max_interval_placement(&line, 5.0).value));
        });

        let points = workloads::uniform_weighted_2d(n, (n as f64).sqrt() / 4.0, 2);
        group.bench_with_input(BenchmarkId::new("rectangle_sweep", n), &n, |b, _| {
            b.iter(|| black_box(max_rect_placement(&points, 1.0, 1.0).value));
        });
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("disk_sweep", n), &n, |b, _| {
                b.iter(|| black_box(max_disk_placement(&points, 1.0).value));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_exact_baselines
}
criterion_main!(benches);
