//! The CSR hash-grid hot path: build cost, allocation-free visitor queries,
//! and the allocating `within` wrapper, across point counts and radius/cell
//! ratios.  This is the substrate every planar solver leans on, so a
//! regression here is a regression everywhere; the wall-clock-free
//! counterpart lives in `tests/perf_smoke.rs`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_geom::kernels::{set_kernel_mode, KernelMode};
use mrs_geom::{HashGrid, Point2};
use rand::prelude::*;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn clustered_points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let extent = (n as f64).sqrt() * 1.2;
    let centers: Vec<Point2> = (0..8)
        .map(|_| Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..centers.len())];
            Point2::xy(c.x() + rng.gen_range(-2.0..2.0), c.y() + rng.gen_range(-2.0..2.0))
        })
        .collect()
}

fn bench_hashgrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_hashgrid");
    for &n in &[1_000usize, 10_000, 100_000] {
        let points = clustered_points(n, 42);
        let queries = clustered_points(256, 43);

        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(HashGrid::build(1.0, &points).len()));
        });

        let index = HashGrid::build(1.0, &points);
        group.bench_with_input(BenchmarkId::new("for_each_within_r1", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in &queries {
                    index.for_each_within(q, 1.0, |id| acc ^= id);
                }
                black_box(acc)
            });
        });
        // Radius far above the cell side: many rows per query, still one
        // contiguous slot scan per row.
        group.bench_with_input(BenchmarkId::new("for_each_within_r8", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in queries.iter().take(32) {
                    index.for_each_within(q, 8.0, |id| acc ^= id);
                }
                black_box(acc)
            });
        });
        // The allocating convenience wrapper, for comparison with the
        // visitor (the delta is the allocation the solvers no longer pay).
        group.bench_with_input(BenchmarkId::new("within_r1", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = 0usize;
                for q in &queries {
                    acc ^= index.within(q, 1.0).len();
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

/// Scalar vs laned vs sieve throughput of the same queries over the same
/// index: the per-kernel A/B the `kernel_baseline` emitter gates on.  All
/// three modes return bit-identical hits (pinned by
/// `tests/kernel_invariance.rs`), so the delta is pure kernel throughput.
fn bench_kernel_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_modes");
    let points = clustered_points(100_000, 42);
    let queries = clustered_points(256, 43);
    let index = HashGrid::build(1.0, &points);
    for (label, mode) in [
        ("scalar_f64", KernelMode::ScalarF64),
        ("laned_f64", KernelMode::LanedF64),
        ("sieve_f32", KernelMode::SieveF32),
    ] {
        for radius in [1.0, 4.0] {
            let id = BenchmarkId::new(label, format!("r{radius}"));
            group.bench_with_input(id, &radius, |b, &radius| {
                set_kernel_mode(mode);
                b.iter(|| {
                    let mut acc = 0usize;
                    for q in queries.iter().take(64) {
                        index.for_each_within(q, radius, |id| acc ^= id);
                    }
                    black_box(acc)
                });
                set_kernel_mode(KernelMode::SieveF32);
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hashgrid, bench_kernel_modes
}
criterion_main!(benches);
