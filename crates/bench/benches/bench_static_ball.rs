//! E2 (Theorem 1.2): the static sampling technique vs the exact planar disk
//! algorithm as n grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::config::SamplingConfig;
use mrs_core::exact::disk2d::max_disk_placement;
use mrs_core::input::WeightedBallInstance;
use mrs_core::technique1::approx_static_ball;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_static_ball(c: &mut Criterion) {
    let cfg = SamplingConfig::practical(0.25).with_seed(3);
    let mut group = c.benchmark_group("e2_static_ball");
    for &n in &[1000usize, 2000, 4000] {
        let points = workloads::uniform_weighted_2d(n, (n as f64).sqrt() / 4.0, 7);
        let instance = WeightedBallInstance::new(points.clone(), 1.0);
        group.bench_with_input(BenchmarkId::new("sampling_eps_0.25", n), &n, |b, _| {
            b.iter(|| black_box(approx_static_ball(&instance, cfg).value));
        });
        if n <= 2000 {
            group.bench_with_input(BenchmarkId::new("exact_disk_sweep", n), &n, |b, _| {
                b.iter(|| black_box(max_disk_placement(&points, 1.0).value));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_static_ball
}
criterion_main!(benches);
