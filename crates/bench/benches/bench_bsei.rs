//! E5 (Theorem 1.4): batched smallest k-enclosing interval — O(n²) total time
//! matching the conditional Ω(n²) lower bound — plus the Section 6 chain.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrs_batched::BatchedSei;
use mrs_bench::workloads;
use mrs_hardness::reductions::min_plus_via_bsei;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_bsei(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_batched_sei");
    for &n in &[512usize, 2048] {
        let points = workloads::random_sequence(n, 0.0, 1000.0, 41);
        let solver = BatchedSei::new(&points);
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::new("all_k", n), &n, |b, _| {
            b.iter(|| black_box(solver.all_lengths().len()));
        });
    }
    for &n in &[128usize, 512] {
        let a = workloads::random_sequence(n, -50.0, 50.0, 43);
        let b = workloads::random_sequence(n, -50.0, 50.0, 44);
        group.bench_with_input(BenchmarkId::new("section6_chain", n), &n, |bench, _| {
            bench.iter(|| black_box(min_plus_via_bsei(&a, &b).len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_bsei
}
criterion_main!(benches);
