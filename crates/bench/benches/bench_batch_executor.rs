//! Batch execution layer: the shared-index executor vs a one-at-a-time
//! dispatch loop, on the canonical workloads of `mrs_bench::batch`.
//!
//! Two regimes:
//! * `planar_mixed` — mixed exact disk / rectangle / colored-disk queries
//!   through independent solvers, where any win comes from worker fan-out
//!   (machine-dependent: on a single-core box the two modes tie);
//! * `interval_1d` — the Theorem 1.3 amortization, where the index-sharing
//!   `batched-interval-1d` solver pays one `O(n log n)` sort for the whole
//!   batch instead of once per query, so batch mode wins on any machine
//!   (measured with one worker to isolate sharing from fan-out).
//!
//! The committed `BENCH_batch.json` trajectory point is produced from the
//! same workloads by `cargo run --release -p mrs-bench --bin batch_baseline`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrs_bench::batch::{interval_lengths_request, mixed_planar_request, solve_one_at_a_time};
use mrs_core::engine::{BatchExecutor, ExecutorConfig, Registry};
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn batch_registry() -> Registry {
    let mut registry = Registry::default();
    mrs_batched::engine::register(&mut registry);
    registry
}

fn bench_planar_mixed(c: &mut Criterion) {
    let registry = batch_registry();
    // Certification off for timing parity: the one-at-a-time baseline does
    // no certification either.
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: None, certify: false, ..ExecutorConfig::default() },
    );
    let mut group = c.benchmark_group("batch_executor_planar_mixed");
    for &m in &[6usize, 12] {
        let request = mixed_planar_request(300, m, 91);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::new("one_at_a_time", m), &m, |b, _| {
            b.iter(|| black_box(solve_one_at_a_time(&registry, &request)));
        });
        group.bench_with_input(BenchmarkId::new("batch_executor", m), &m, |b, _| {
            b.iter(|| black_box(executor.execute(&request).answers.len()));
        });
    }
    group.finish();
}

fn bench_interval_1d(c: &mut Criterion) {
    let registry = batch_registry();
    let executor = BatchExecutor::with_config(
        &registry,
        // Serial workers isolate the index-sharing amortization from the
        // fan-out speedup (the planar group measures the latter).
        ExecutorConfig { threads: Some(1), certify: false, ..ExecutorConfig::default() },
    );
    let mut group = c.benchmark_group("batch_executor_interval_1d");
    for &m in &[64usize, 256] {
        let request = interval_lengths_request(4096, m, 23);
        group.throughput(Throughput::Elements((m * 4096) as u64));
        group.bench_with_input(BenchmarkId::new("one_at_a_time", m), &m, |b, _| {
            b.iter(|| black_box(solve_one_at_a_time(&registry, &request)));
        });
        group.bench_with_input(BenchmarkId::new("batch_executor", m), &m, |b, _| {
            b.iter(|| black_box(executor.execute(&request).answers.len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_planar_mixed, bench_interval_1d
}
criterion_main!(benches);
