//! E4a (Theorem 1.3): batched MaxRS in R¹ — total time scales like m·n,
//! matching the conditional Ω(mn) lower bound.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mrs_batched::BatchedMaxRS1D;
use mrs_bench::workloads;
use rand::prelude::*;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_batched(c: &mut Criterion) {
    let n = 4096usize;
    let points = workloads::line_points(n, 1000.0, 23);
    let solver = BatchedMaxRS1D::new(&points);
    let mut rng = StdRng::seed_from_u64(9);

    let mut group = c.benchmark_group("e4_batched_maxrs_1d");
    for &m in &[16usize, 128, 1024] {
        let lengths: Vec<f64> = (0..m).map(|_| rng.gen_range(1.0..500.0)).collect();
        group.throughput(Throughput::Elements((m * n) as u64));
        group.bench_with_input(BenchmarkId::new("two_pointer", m), &m, |b, _| {
            b.iter(|| black_box(solver.solve(&lengths).len()));
        });
        group.bench_with_input(BenchmarkId::new("per_length_logn", m), &m, |b, _| {
            b.iter(|| black_box(solver.solve_logarithmic(&lengths).len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_batched
}
criterion_main!(benches);
