//! E8 (Theorem 1.6): the (1 − ε) color-sampling algorithm vs the exact
//! output-sensitive algorithm on large-opt workloads.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::config::ColorSamplingConfig;
use mrs_core::input::ColoredBallInstance;
use mrs_core::technique2::approx_colored_disk_sampling;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_color_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_color_sampling");
    {
        let &(n, colors) = &(1500usize, 150usize);
        let mut sites = workloads::colored_clusters_2d(n / 2, colors, 1, 1.0, 0.8, 71);
        sites.extend(workloads::colored_clusters_2d(n / 2, colors / 4, 10, 60.0, 1.0, 72));
        let instance = ColoredBallInstance::new(sites.clone(), 1.0);

        let mut cfg = ColorSamplingConfig::new(0.25).with_seed(5);
        cfg.c1 = 0.5;
        group.bench_with_input(BenchmarkId::new("color_sampling_eps_0.25", n), &n, |b, _| {
            b.iter(|| black_box(approx_colored_disk_sampling(&instance, cfg).distinct));
        });
        // The exact comparator on the dense hotspot is far too slow for a
        // Criterion loop; the quality-vs-exact comparison is reported by the
        // experiments binary (E8).
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_color_sampling
}
criterion_main!(benches);
