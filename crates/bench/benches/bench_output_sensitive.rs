//! E7 (Theorem 4.6): output-sensitive exact colored MaxRS — cost scales with
//! the planted optimum, while the straightforward candidate-enumeration
//! algorithm does not benefit from a small opt.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::exact::colored_disk2d::exact_colored_disk;
use mrs_core::technique2::output_sensitive_colored_disk;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_output_sensitive(c: &mut Criterion) {
    let n = 600usize;
    let mut group = c.benchmark_group("e7_output_sensitive");
    for &opt in &[4usize, 32] {
        let sites = workloads::colored_planted_opt(n, opt, 61 + opt as u64);
        group.bench_with_input(BenchmarkId::new("theorem_4_6", opt), &opt, |b, _| {
            b.iter(|| black_box(output_sensitive_colored_disk(&sites, 1.0).distinct));
        });
        group.bench_with_input(BenchmarkId::new("straightforward", opt), &opt, |b, _| {
            b.iter(|| black_box(exact_colored_disk(&sites, 1.0).distinct));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_output_sensitive
}
criterion_main!(benches);
