//! E6 (Theorem 1.5): the colored sampling technique vs the exact
//! output-sensitive algorithm.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::config::SamplingConfig;
use mrs_core::input::ColoredBallInstance;
use mrs_core::technique1::approx_colored_ball;
use mrs_core::technique2::output_sensitive_colored_disk;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_colored_ball(c: &mut Criterion) {
    let cfg = SamplingConfig::practical(0.25).with_seed(13);
    let mut group = c.benchmark_group("e6_colored_ball");
    for &(n, colors) in &[(1000usize, 20usize), (4000, 80)] {
        let sites = workloads::colored_clusters_2d(n, colors, 6, 14.0, 1.2, 51);
        let instance = ColoredBallInstance::new(sites.clone(), 1.0);
        group.bench_with_input(BenchmarkId::new("sampling_eps_0.25", n), &n, |b, _| {
            b.iter(|| black_box(approx_colored_ball(&instance, cfg).distinct));
        });
        // The exact comparator is too slow for a Criterion loop at any of
        // these sizes; the quality-and-time comparison lives in the
        // experiments binary (E6).  Keep a single cheap exact case so the
        // baseline still appears in the report.
        if n <= 1000 {
            let small = workloads::colored_clusters_2d(400, 10, 6, 14.0, 1.2, 52);
            group.bench_function("exact_output_sensitive_n_400", |b| {
                b.iter(|| black_box(output_sensitive_colored_disk(&small, 1.0).distinct));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_colored_ball
}
criterion_main!(benches);
