//! E4b (Theorem 1.3): the Figure 6 chain — (min,+)-convolution answered via
//! the batched MaxRS oracle — compared to the naive quadratic convolution.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_hardness::convolution::min_plus_convolution;
use mrs_hardness::reductions::min_plus_via_batched_maxrs;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_reduction_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_figure6_chain");
    for &n in &[128usize, 512] {
        let a = workloads::random_sequence(n, -100.0, 100.0, 31);
        let b = workloads::random_sequence(n, -100.0, 100.0, 32);
        group.bench_with_input(BenchmarkId::new("naive_min_plus", n), &n, |bench, _| {
            bench.iter(|| black_box(min_plus_convolution(&a, &b).len()));
        });
        group.bench_with_input(BenchmarkId::new("via_batched_maxrs", n), &n, |bench, _| {
            bench.iter(|| black_box(min_plus_via_batched_maxrs(&a, &b, 64).len()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_reduction_chain
}
criterion_main!(benches);
