//! E1 (Theorem 1.1): amortized dynamic update cost vs n, against a
//! recompute-from-scratch baseline.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_bench::workloads;
use mrs_core::config::SamplingConfig;
use mrs_core::input::WeightedBallInstance;
use mrs_core::technique1::{approx_static_ball, DynamicBallMaxRS};
use rand::prelude::*;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_dynamic(c: &mut Criterion) {
    let cfg = SamplingConfig::practical(0.25).with_seed(11);
    let mut group = c.benchmark_group("e1_dynamic_maxrs");
    for &n in &[1000usize, 4000] {
        let points = workloads::clustered_points_2d(n, 8, 30.0, 1.5, 42);

        // Amortized cost of a delete+insert pair on a warm structure.
        group.bench_with_input(BenchmarkId::new("update_pair", n), &n, |b, _| {
            let mut dynamic = DynamicBallMaxRS::<2>::new(1.0, cfg);
            let mut ids: Vec<usize> =
                points.iter().map(|p| dynamic.insert(p.point, p.weight)).collect();
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| {
                let victim = rng.gen_range(0..ids.len());
                let id = ids.swap_remove(victim);
                dynamic.remove(id);
                let p = points[victim % points.len()];
                ids.push(dynamic.insert(p.point, p.weight));
                black_box(ids.len())
            });
        });

        // The naive alternative: rebuild a static answer from scratch.  Only
        // benchmarked at the smaller size to keep the Criterion loop short;
        // the full scaling column is in the experiments binary (E1).
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("static_rebuild", n), &n, |b, _| {
                let instance = WeightedBallInstance::new(points.clone(), 1.0);
                b.iter(|| black_box(approx_static_ball(&instance, cfg).value));
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dynamic
}
criterion_main!(benches);
