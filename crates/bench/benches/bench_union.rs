//! E10 (Lemma 4.4 / Figure 5): union-boundary extraction and boundary-crossing
//! counts for two unit-disk sets — the crossing count is linear in the input.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrs_geom::union_disks::{exposed_arc_intersections, union_boundary_arcs};
use mrs_geom::{Ball, Point2};
use rand::prelude::*;
use std::hint::black_box;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn random_disks(n: usize, seed: u64) -> Vec<Ball<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let extent = (n as f64).sqrt() * 1.2;
    (0..n)
        .map(|_| Ball::unit(Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent))))
        .collect()
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_union_boundaries");
    for &n in &[200usize, 800, 3200] {
        let red = random_disks(n, 5);
        let blue = random_disks(n, 6);
        group.bench_with_input(BenchmarkId::new("union_boundary", n), &n, |b, _| {
            b.iter(|| black_box(union_boundary_arcs(&red).len()));
        });
        group.bench_with_input(BenchmarkId::new("cross_set_intersections", n), &n, |b, _| {
            let red_arcs = union_boundary_arcs(&red);
            let blue_arcs = union_boundary_arcs(&blue);
            b.iter(|| {
                black_box(exposed_arc_intersections(&red, &red_arcs, &blue, &blue_arcs).len())
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_union
}
criterion_main!(benches);
