//! # mrs-bench — workload generators and measurement helpers
//!
//! Shared infrastructure for the Criterion benchmarks (`benches/`) and the
//! experiment runner (`src/bin/experiments.rs`) that regenerates every table
//! in EXPERIMENTS.md.  Nothing here is specific to a single experiment: the
//! generators produce the uniform / clustered / planted-optimum workloads the
//! paper's scenarios describe (hotspots, trajectories, customer clusters), and
//! the measurement helpers time closures and format result tables.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Synthetic workload generators.
pub mod workloads {
    use mrs_batched::LinePoint;
    use mrs_geom::{ColoredSite, Point, Point2, WeightedPoint};
    use rand::prelude::*;

    /// Uniform unit-weight points in `[0, extent]²`.
    pub fn uniform_points_2d(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                WeightedPoint::unit(Point2::xy(
                    rng.gen_range(0.0..extent),
                    rng.gen_range(0.0..extent),
                ))
            })
            .collect()
    }

    /// Uniform weighted points in `[0, extent]²` with weights in `[0.5, 3)`.
    pub fn uniform_weighted_2d(n: usize, extent: f64, seed: u64) -> Vec<WeightedPoint<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                WeightedPoint::new(
                    Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)),
                    rng.gen_range(0.5..3.0),
                )
            })
            .collect()
    }

    /// Clustered unit-weight points: `clusters` Gaussian-ish hotspots of
    /// radius `spread` scattered in `[0, extent]²` (the hotspot workloads of
    /// the paper's motivating applications).
    pub fn clustered_points_2d(
        n: usize,
        clusters: usize,
        extent: f64,
        spread: f64,
        seed: u64,
    ) -> Vec<WeightedPoint<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Point2> = (0..clusters.max(1))
            .map(|_| Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
            .collect();
        (0..n)
            .map(|_| {
                let c = centers[rng.gen_range(0..centers.len())];
                WeightedPoint::unit(Point2::xy(
                    c.x() + rng.gen_range(-spread..spread),
                    c.y() + rng.gen_range(-spread..spread),
                ))
            })
            .collect()
    }

    /// Uniform unit-weight points in `[0, extent]^D`.
    pub fn uniform_points_d<const D: usize>(
        n: usize,
        extent: f64,
        seed: u64,
    ) -> Vec<WeightedPoint<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut p = Point::<D>::origin();
                for i in 0..D {
                    p[i] = rng.gen_range(0.0..extent);
                }
                WeightedPoint::unit(p)
            })
            .collect()
    }

    /// Colored sites grouped into clusters: each cluster draws its sites from
    /// a random subset of the color palette (the trajectory-style workloads of
    /// Section 1.3).
    pub fn colored_clusters_2d(
        n: usize,
        colors: usize,
        clusters: usize,
        extent: f64,
        spread: f64,
        seed: u64,
    ) -> Vec<ColoredSite<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Point2> = (0..clusters.max(1))
            .map(|_| Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
            .collect();
        (0..n)
            .map(|_| {
                let c = centers[rng.gen_range(0..centers.len())];
                ColoredSite::new(
                    Point2::xy(
                        c.x() + rng.gen_range(-spread..spread),
                        c.y() + rng.gen_range(-spread..spread),
                    ),
                    rng.gen_range(0..colors.max(1)),
                )
            })
            .collect()
    }

    /// A colored workload with a *planted* optimum: `opt` distinct colors, each
    /// with many duplicate sites, packed inside one unit disk at the origin;
    /// the remaining sites are spread thinly (at most 3 colors per far-away
    /// mini-cluster) so no other placement comes close.  Used by the
    /// output-sensitive experiment (E7): the dense cluster makes candidate
    /// enumeration quadratic in the cluster size, while the per-color unions
    /// collapse its boundary complexity to `O(opt)`.
    pub fn colored_planted_opt(n: usize, opt: usize, seed: u64) -> Vec<ColoredSite<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites = Vec::with_capacity(n);
        let opt = opt.max(1);
        // Half the sites form the planted hotspot, cycling through the `opt`
        // planted colors so every color appears several times.
        let hotspot = (n / 2).max(opt).min(n);
        for i in 0..hotspot {
            sites.push(ColoredSite::new(
                Point2::xy(rng.gen_range(-0.4..0.4), rng.gen_range(-0.4..0.4)),
                i % opt,
            ));
        }
        // Background: isolated mini-clusters of at most 3 colors each, far from
        // the planted optimum and from each other.
        let mut cluster = 0usize;
        while sites.len() < n {
            cluster += 1;
            let cx = 10.0 + 5.0 * (cluster % 97) as f64;
            let cy = 10.0 + 5.0 * (cluster / 97) as f64;
            for k in 0..3 {
                if sites.len() >= n {
                    break;
                }
                sites.push(ColoredSite::new(
                    Point2::xy(cx + rng.gen_range(-0.4..0.4), cy + rng.gen_range(-0.4..0.4)),
                    opt + (cluster * 3 + k) % opt.max(3),
                ));
            }
        }
        sites
    }

    /// Weighted points on the line, uniform in `[0, extent]`.
    pub fn line_points(n: usize, extent: f64, seed: u64) -> Vec<LinePoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| LinePoint::new(rng.gen_range(0.0..extent), rng.gen_range(0.5..2.0)))
            .collect()
    }

    /// A random real sequence for the convolution experiments.
    pub fn random_sequence(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }
}

/// Canonical batch-execution workloads, shared by the batch benchmark, the
/// committed `BENCH_batch.json` baseline emitter, and the E11 experiment so
/// all three measure the same thing.
pub mod batch {
    use mrs_core::engine::{
        BatchQuery, BatchRequest, ColoredInstance, RangeShape, Registry, WeightedInstance,
    };
    use mrs_geom::{Point, WeightedPoint};

    use crate::workloads;

    /// A mixed planar batch: `n` clustered weighted points and `n` clustered
    /// colored sites, with `m` queries cycling exact disk / exact rectangle /
    /// exact colored disk at slowly varying sizes.  The colored queries use
    /// smaller radii — the output-sensitive solver's cost grows steeply with
    /// the covered cluster size, and it dominates the batch otherwise.
    pub fn mixed_planar_request(n: usize, m: usize, seed: u64) -> BatchRequest<2> {
        let points = workloads::clustered_points_2d(n, 6, 20.0, 1.2, seed);
        let sites = workloads::colored_clusters_2d(n, 30, 6, 20.0, 1.2, seed ^ 0x9E37);
        let mut request = BatchRequest::new(points, sites);
        for i in 0..m {
            let size = 0.8 + 0.01 * (i % 40) as f64;
            request.push(match i % 3 {
                0 => BatchQuery::weighted("exact-disk-2d", RangeShape::ball(size)),
                1 => BatchQuery::weighted("exact-rect-2d", RangeShape::rect(size, size)),
                _ => BatchQuery::colored(
                    "output-sensitive-colored-disk",
                    RangeShape::ball(0.25 + 0.005 * (i % 40) as f64),
                ),
            });
        }
        request
    }

    /// The Theorem 1.3 amortization workload: `m` interval lengths over one
    /// set of `n` line points, all answered by the index-sharing
    /// `batched-interval-1d` solver (requires a registry with the
    /// `mrs-batched` solvers registered).
    pub fn interval_lengths_request(n: usize, m: usize, seed: u64) -> BatchRequest<1> {
        let points: Vec<WeightedPoint<1>> = workloads::line_points(n, 1000.0, seed)
            .into_iter()
            .map(|p| WeightedPoint::new(Point::new([p.x]), p.weight))
            .collect();
        let mut request = BatchRequest::over_points(points);
        for i in 0..m {
            let length = 1.0 + 499.0 * (i as f64 + 0.5) / m as f64;
            request.push(BatchQuery::weighted("batched-interval-1d", RangeShape::interval(length)));
        }
        request
    }

    /// The one-at-a-time baseline the batch executor is measured against:
    /// dispatch every query sequentially with a fresh instance each (what a
    /// naive caller writes).  Returns the number of successful answers.
    ///
    /// # Panics
    /// Panics if a query names a solver the registry cannot resolve.
    pub fn solve_one_at_a_time<const D: usize>(
        registry: &Registry,
        request: &BatchRequest<D>,
    ) -> usize {
        let mut ok = 0;
        for query in request.queries() {
            let success = match query {
                BatchQuery::Weighted { solver, shape } => {
                    let instance = WeightedInstance::new(request.points().to_vec(), *shape);
                    registry
                        .weighted::<D>(solver)
                        .expect("workload names a registered solver")
                        .solve(&instance)
                        .is_ok()
                }
                BatchQuery::Colored { solver, shape } => {
                    let instance = ColoredInstance::new(request.sites().to_vec(), *shape);
                    registry
                        .colored::<D>(solver)
                        .expect("workload names a registered solver")
                        .solve(&instance)
                        .is_ok()
                }
            };
            ok += success as usize;
        }
        ok
    }
}

/// The canonical serving workload: dataset CSV generators and the mixed
/// Zipf query pool, shared by `serve_loadgen` (the `BENCH_serve.json`
/// emitter) and `planar_baseline` (the `BENCH_planar.json` emitter) so both
/// measure the same traffic.
pub mod serve {
    use rand::prelude::*;

    /// The 1-D canonical dataset: clustered weighted events on a line,
    /// rendered as `x,weight` CSV.
    pub fn line_csv(n: usize, seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let extent = 1_000.0;
        let centers: Vec<f64> = (0..20).map(|_| rng.gen_range(0.0..extent)).collect();
        let mut csv = String::with_capacity(n * 16);
        for _ in 0..n {
            let c = centers[rng.gen_range(0..centers.len())];
            let x = c + rng.gen_range(-15.0..15.0);
            let weight = rng.gen_range(0.5..3.0);
            csv.push_str(&format!("{x:.5},{weight:.3}\n"));
        }
        csv
    }

    /// The planar mixed-workload dataset: clustered weighted+colored points,
    /// rendered as batch CSV (`x,y,weight,color`).
    pub fn planar_csv(n: usize, seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2D);
        let extent = 100.0;
        let centers: Vec<(f64, f64)> =
            (0..12).map(|_| (rng.gen_range(0.0..extent), rng.gen_range(0.0..extent))).collect();
        let mut csv = String::with_capacity(n * 24);
        for i in 0..n {
            let (cx, cy) = centers[rng.gen_range(0..centers.len())];
            let x = cx + rng.gen_range(-3.0..3.0);
            let y = cy + rng.gen_range(-3.0..3.0);
            let weight = rng.gen_range(0.5..3.0);
            csv.push_str(&format!("{x:.4},{y:.4},{weight:.3},{}\n", i % 50));
        }
        csv
    }

    /// The mixed-solver query pool the Zipfian workload draws from: exact
    /// planar rectangle and colored-rectangle queries over the planar dataset
    /// (named `loadgen`) plus 1-D interval queries (batched and independent)
    /// over the line dataset (named `loadgen1d`).  All pool solvers are exact
    /// with sub-second solves at the pool's dataset sizes — the colored
    /// *disk* solvers are output-sensitive and blow past minutes on clustered
    /// data at this density, so they are exercised by the smoke tests
    /// instead.
    pub fn query_pool(size: usize) -> Vec<String> {
        let mut pool = Vec::with_capacity(size);
        for i in 0..size {
            let step = (i / 4) as f64;
            let body = match i % 4 {
                0 => format!(
                    r#"{{"dataset":"loadgen1d","solver":"batched-interval-1d","shape":{{"interval":{}}}}}"#,
                    10.0 + step
                ),
                1 => format!(
                    r#"{{"dataset":"loadgen","solver":"exact-rect-2d","shape":{{"box":[{},{}]}}}}"#,
                    2.0 + 0.5 * step,
                    1.0 + 0.25 * step
                ),
                2 => format!(
                    r#"{{"dataset":"loadgen","solver":"exact-colored-rect-2d","shape":{{"box":[{},{}]}}}}"#,
                    3.0 + 0.25 * step,
                    2.0 + 0.25 * step
                ),
                _ => format!(
                    r#"{{"dataset":"loadgen1d","solver":"exact-interval-1d","shape":{{"interval":{}}}}}"#,
                    20.0 + step
                ),
            };
            pool.push(body);
        }
        pool
    }

    /// One record of the canonical 1-D update mix: a weighted event near a
    /// random hotspot center, deterministic in `(seed, i)`.  Shared by the
    /// in-process `dynamic_baseline` emitter and the HTTP `serve_loadgen`
    /// update-mix phase, so both mutate the same stream.
    pub fn line_update_record(seed: u64, i: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15C0 ^ i.wrapping_mul(0x9E3779B97F4A7C15));
        let center = rng.gen_range(0.0..1_000.0f64);
        (center + rng.gen_range(-15.0..15.0), rng.gen_range(0.5..3.0))
    }

    /// Draws one Zipf(1.1) index over `weights.len()` entries.
    pub fn zipf_pick(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
        let mut pick = rng.gen_range(0.0..total);
        for (j, w) in weights.iter().enumerate() {
            if pick < *w {
                return j;
            }
            pick -= w;
        }
        0
    }

    /// The Zipf(1.1) weights over a pool of the given size.
    pub fn zipf_weights(size: usize) -> Vec<f64> {
        (0..size).map(|i| 1.0 / ((i + 1) as f64).powf(1.1)).collect()
    }
}

/// Timing and table-formatting helpers for the experiment runner.
pub mod measure {
    use std::time::{Duration, Instant};

    /// Runs `f` once and returns its result together with the elapsed time.
    pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
        let start = Instant::now();
        let out = f();
        (out, start.elapsed())
    }

    /// Runs `f` `reps` times and returns the mean duration (result discarded).
    pub fn time_mean<T>(reps: usize, mut f: impl FnMut() -> T) -> Duration {
        assert!(reps > 0);
        let start = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(f());
        }
        start.elapsed() / reps as u32
    }

    /// Formats a duration in milliseconds with two decimals.
    pub fn ms(d: Duration) -> String {
        format!("{:.2}", d.as_secs_f64() * 1e3)
    }

    /// Formats a duration in microseconds with two decimals.
    pub fn us(d: Duration) -> String {
        format!("{:.2}", d.as_secs_f64() * 1e6)
    }

    /// Prints a table header followed by a separator row.
    pub fn table_header(title: &str, columns: &[&str]) {
        println!("\n### {title}");
        println!("| {} |", columns.join(" | "));
        println!("|{}|", columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    }

    /// Prints one table row.
    pub fn table_row(cells: &[String]) {
        println!("| {} |", cells.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_requested_sizes() {
        assert_eq!(workloads::uniform_points_2d(100, 10.0, 1).len(), 100);
        assert_eq!(workloads::clustered_points_2d(64, 4, 10.0, 1.0, 2).len(), 64);
        assert_eq!(workloads::uniform_points_d::<5>(32, 4.0, 3).len(), 32);
        assert_eq!(workloads::colored_clusters_2d(50, 8, 3, 10.0, 1.0, 4).len(), 50);
        assert_eq!(workloads::line_points(20, 10.0, 5).len(), 20);
        assert_eq!(workloads::random_sequence(16, -1.0, 1.0, 6).len(), 16);
    }

    #[test]
    fn planted_opt_workload_really_plants_the_optimum() {
        use mrs_core::technique2::output_sensitive_colored_disk;
        let sites = workloads::colored_planted_opt(200, 24, 7);
        assert_eq!(sites.len(), 200);
        let placement = output_sensitive_colored_disk(&sites, 1.0);
        assert_eq!(placement.distinct, 24, "the planted cluster must be the optimum");
    }

    #[test]
    fn colored_sites_use_the_requested_palette() {
        let sites = workloads::colored_clusters_2d(200, 9, 4, 10.0, 1.0, 8);
        assert!(sites.iter().all(|s| s.color < 9));
    }

    #[test]
    fn batch_workloads_execute_end_to_end() {
        use mrs_core::engine::{BatchExecutor, Registry};
        let request = batch::mixed_planar_request(120, 9, 3);
        assert_eq!(request.len(), 9);
        let registry = Registry::default();
        assert_eq!(batch::solve_one_at_a_time(&registry, &request), 9);
        let report = BatchExecutor::new(&registry).execute(&request);
        assert!(report.all_ok());
        assert_eq!(report.stats.certify_failures, 0);

        let mut registry = Registry::default();
        mrs_batched::engine::register(&mut registry);
        let line = batch::interval_lengths_request(200, 8, 4);
        let report = BatchExecutor::new(&registry).execute(&line);
        assert!(report.all_ok());
        // Longer intervals never cover less weight.
        let values: Vec<f64> =
            (0..8).map(|i| report.weighted(i).unwrap().placement.value).collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{values:?}");
    }

    #[test]
    fn timing_helpers_are_sane() {
        let (value, elapsed) = measure::time(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(elapsed.as_secs() < 1);
        let mean = measure::time_mean(3, || 1 + 1);
        assert!(mean.as_secs() < 1);
    }
}
