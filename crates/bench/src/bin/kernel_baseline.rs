//! Emits the committed kernel-layer baseline (`BENCH_kernels.json`).
//!
//! Run with `cargo run --release -p mrs-bench --bin kernel_baseline
//! [--smoke] [out.json]` from the repository root.  Two phases:
//!
//! 1. **Per-kernel A/B** — the same clustered 100k-point CSR index queried
//!    under each [`KernelMode`] (scalar f64 reference, laned f64, f32
//!    sieve-then-verify), best of 3, reported as candidates filtered per
//!    second.  Three workloads separate the regimes: `dense_r1` (radius =
//!    cell side on clustered data, ~60% of candidates are true hits),
//!    `wide_r4` (radius ≫ cell side, long contiguous slot rows), and
//!    `sparse_r05` (radius = half the cell side, ~80% of candidates miss —
//!    the sieve's home turf).  The modes return bit-identical hits (pinned
//!    by `tests/kernel_invariance.rs`), so the deltas are pure kernel
//!    throughput; the emitter asserts the laned kernel beats scalar on the
//!    dense workload and the sieve beats scalar on the sparse one.  These
//!    gates are relative — they hold on any machine — and are what CI's
//!    bench job runs (`--smoke`).
//! 2. **End-to-end** (skipped under `--smoke`) — the canonical
//!    `planar_mixed` workload of `BENCH_planar.json` (60 mixed exact
//!    queries over 400 clustered points).  The *candidates-bound* portion
//!    (exact disk sweep + output-sensitive colored disk, the two solvers
//!    whose time is dominated by grid-candidate filtering) must beat the
//!    pre-kernel code by ≥ 2×.
//!
//! The recorded_* constants are the pre-kernel hot loops re-measured on the
//! same single-core runner class this bin targets (best of 3).  The
//! committed `BENCH_planar.json` history (862.990 ms batch, 827.3 ms
//! candidates-bound breakdown) predates the kernel layer but was taken on a
//! faster runner class; the JSON quotes both so drift stays visible.

use std::collections::BTreeMap;
use std::time::Duration;

use mrs_bench::batch::mixed_planar_request;
use mrs_bench::measure::time;
use mrs_core::engine::{BatchAnswer, BatchExecutor, ExecutorConfig};
use mrs_geom::kernels::{set_kernel_mode, KernelMode};
use mrs_geom::{GridQueryStats, HashGrid, Point2};
use rand::prelude::*;

/// Cert-off `planar_mixed` batch wall clock of the pre-kernel code,
/// re-measured on this runner class (best of 3).
const RECORDED_PRE_KERNEL_BATCH_MS: f64 = 1036.6;
/// Candidates-bound solver time (exact disk + output-sensitive colored
/// disk, certified-run breakdown) of the pre-kernel code on this runner
/// class (best of 3).
const RECORDED_PRE_KERNEL_CANDIDATES_BOUND_MS: f64 = 1041.4;
/// The committed `BENCH_planar.json` batch figure (faster runner class),
/// quoted for history.
const COMMITTED_PLANAR_BATCH_MS: f64 = 862.990;

/// The two solvers whose wall time is candidates-bound.
const CANDIDATES_BOUND_SOLVERS: [&str; 2] = ["exact-disk-2d", "output-sensitive-colored-disk"];

const MODES: [KernelMode; 3] = [KernelMode::ScalarF64, KernelMode::LanedF64, KernelMode::SieveF32];

fn clustered_points(n: usize, seed: u64) -> Vec<Point2> {
    let mut rng = StdRng::seed_from_u64(seed);
    let extent = (n as f64).sqrt() * 1.2;
    let centers: Vec<Point2> = (0..8)
        .map(|_| Point2::xy(rng.gen_range(0.0..extent), rng.gen_range(0.0..extent)))
        .collect();
    (0..n)
        .map(|_| {
            let c = centers[rng.gen_range(0..centers.len())];
            Point2::xy(c.x() + rng.gen_range(-2.0..2.0), c.y() + rng.gen_range(-2.0..2.0))
        })
        .collect()
}

fn mode_label(mode: KernelMode) -> &'static str {
    match mode {
        KernelMode::ScalarF64 => "scalar_f64",
        KernelMode::LanedF64 => "laned_f64",
        KernelMode::SieveF32 => "sieve_f32",
    }
}

struct KernelRow {
    mode: &'static str,
    best: Duration,
    candidates: usize,
    hits: usize,
    sieve_rejected: usize,
}

impl KernelRow {
    fn candidates_per_sec(&self) -> f64 {
        self.candidates as f64 / self.best.as_secs_f64()
    }
}

/// Times the query sweep at `radius` under `mode`, best of 3, and returns
/// the mode-independent candidate/hit counts plus the sieve counter.
fn measure_mode(
    index: &HashGrid<2>,
    queries: &[Point2],
    radius: f64,
    mode: KernelMode,
) -> KernelRow {
    set_kernel_mode(mode);
    let mut best = Duration::MAX;
    let mut result = (GridQueryStats::default(), 0usize);
    for _ in 0..3 {
        let (run, elapsed) = time(|| {
            let mut stats = GridQueryStats::default();
            let mut hits = 0usize;
            let mut acc = 0usize;
            for q in queries {
                stats.merge(index.for_each_within(q, radius, |id| {
                    hits += 1;
                    acc ^= id;
                }));
            }
            std::hint::black_box(acc);
            (stats, hits)
        });
        best = best.min(elapsed);
        result = run;
    }
    set_kernel_mode(KernelMode::SieveF32);
    KernelRow {
        mode: mode_label(mode),
        best,
        candidates: result.0.candidates,
        hits: result.1,
        sieve_rejected: result.0.sieve_rejected,
    }
}

struct Workload {
    label: &'static str,
    rows: Vec<KernelRow>,
}

impl Workload {
    /// Throughput of `mode` relative to the scalar f64 reference row.
    fn speedup(&self, mode: &str) -> f64 {
        let row = self.rows.iter().find(|r| r.mode == mode).expect("mode measured");
        row.candidates_per_sec() / self.rows[0].candidates_per_sec()
    }

    fn json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                format!(
                    "{{\"kernel\": \"{}\", \"ms\": {:.3}, \"candidates\": {}, \"hits\": {}, \
                     \"candidates_per_sec\": {:.0}, \"sieve_rejected\": {}}}",
                    row.mode,
                    row.best.as_secs_f64() * 1e3,
                    row.candidates,
                    row.hits,
                    row.candidates_per_sec(),
                    row.sieve_rejected,
                )
            })
            .collect();
        format!(
            "{{\"workload\": \"{}\", \"laned_speedup_vs_scalar\": {:.2}, \
             \"sieve_speedup_vs_scalar\": {:.2}, \"kernels\": [{}]}}",
            self.label,
            self.speedup("laned_f64"),
            self.speedup("sieve_f32"),
            rows.join(", "),
        )
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => out_path = other.to_string(),
        }
    }

    // ---- Phase 1: per-kernel A/B over one CSR index. ---------------------
    let points = clustered_points(100_000, 42);
    // Query from the dataset itself so every query lands in a populated
    // neighbourhood and the candidate counts are non-trivial.
    let queries: Vec<Point2> = points.iter().step_by(1_000).copied().collect();
    let index = HashGrid::build(1.0, &points);
    let workloads: Vec<Workload> = [("dense_r1", 1.0), ("wide_r4", 4.0), ("sparse_r05", 0.5)]
        .into_iter()
        .map(|(label, radius)| Workload {
            label,
            rows: MODES
                .into_iter()
                .map(|mode| measure_mode(&index, &queries, radius, mode))
                .collect(),
        })
        .collect();
    for workload in &workloads {
        let scalar = &workload.rows[0];
        assert!(
            workload.rows.iter().all(|r| r.candidates == scalar.candidates),
            "the candidate count is mode-independent"
        );
        assert!(
            workload.rows.iter().all(|r| r.hits == scalar.hits),
            "every mode returns the same hits"
        );
        eprintln!("{}: {} candidates, {} hits", workload.label, scalar.candidates, scalar.hits);
        for row in &workload.rows {
            eprintln!(
                "  {:<10} {:>8.1} ms | {:>6.1}M candidates/s | {} sieve-rejected",
                row.mode,
                row.best.as_secs_f64() * 1e3,
                row.candidates_per_sec() / 1e6,
                row.sieve_rejected,
            );
        }
    }
    let laned_dense = workloads[0].speedup("laned_f64");
    let sieve_sparse = workloads[2].speedup("sieve_f32");

    // ---- Phase 2: the candidates-bound planar batch. ---------------------
    let end_to_end = if smoke {
        None
    } else {
        let registry = mrs_batched::engine::full_registry(Default::default());
        let request = mixed_planar_request(400, 60, 91);

        // Certified runs: correctness plus the per-solver breakdown, best of
        // 3 on the candidates-bound sum (per-solver elapsed is as noisy as
        // any other wall clock).
        let mut candidates_bound = Duration::MAX;
        let mut breakdown: BTreeMap<&'static str, Duration> = BTreeMap::new();
        let mut counters = (0usize, 0usize);
        for _ in 0..3 {
            let certified = BatchExecutor::new(&registry).execute(&request);
            assert!(certified.all_ok(), "every batch query must succeed");
            assert_eq!(certified.stats.certify_failures, 0, "certification must hold");
            let mut run: BTreeMap<&'static str, Duration> = BTreeMap::new();
            for answer in &certified.answers {
                match answer {
                    BatchAnswer::Weighted(r) => {
                        *run.entry(r.solver).or_default() += r.stats.elapsed
                    }
                    BatchAnswer::Colored(r) => *run.entry(r.solver).or_default() += r.stats.elapsed,
                    BatchAnswer::Failed(_) => {}
                }
            }
            let bound: Duration =
                CANDIDATES_BOUND_SOLVERS.iter().filter_map(|solver| run.get(solver)).copied().sum();
            if bound < candidates_bound {
                candidates_bound = bound;
                breakdown = run;
            }
            counters = (certified.stats.sieve_rejected, certified.stats.candidates_examined);
        }

        // Cert-off batch wall clock, best of 3 (matching BENCH_planar.json).
        let timed = BatchExecutor::with_config(
            &registry,
            ExecutorConfig { threads: None, certify: false, ..ExecutorConfig::default() },
        );
        let mut batch = Duration::MAX;
        for _ in 0..3 {
            let (report, elapsed) = time(|| timed.execute(&request));
            assert!(report.all_ok(), "every batch query must succeed");
            batch = batch.min(elapsed);
        }

        let candidates_bound_ms = candidates_bound.as_secs_f64() * 1e3;
        let batch_ms = batch.as_secs_f64() * 1e3;
        let candidates_bound_speedup =
            RECORDED_PRE_KERNEL_CANDIDATES_BOUND_MS / candidates_bound_ms;
        let batch_speedup = RECORDED_PRE_KERNEL_BATCH_MS / batch_ms;
        eprintln!(
            "planar_mixed: candidates-bound {candidates_bound_ms:.0} ms \
             ({candidates_bound_speedup:.2}x vs pre-kernel \
             {RECORDED_PRE_KERNEL_CANDIDATES_BOUND_MS:.0} ms) | batch {batch_ms:.0} ms \
             ({batch_speedup:.2}x vs pre-kernel {RECORDED_PRE_KERNEL_BATCH_MS:.0} ms)"
        );
        let breakdown_json: Vec<String> = breakdown
            .iter()
            .map(|(solver, elapsed)| format!("\"{solver}\": {:.3}", elapsed.as_secs_f64() * 1e3))
            .collect();
        let json = format!(
            "{{\"n\": 400, \"m\": 60, \"batch_ms\": {batch_ms:.3}, \"candidates_bound_ms\": \
             {candidates_bound_ms:.3}, \"recorded_pre_kernel_batch_ms\": \
             {RECORDED_PRE_KERNEL_BATCH_MS}, \"recorded_pre_kernel_candidates_bound_ms\": \
             {RECORDED_PRE_KERNEL_CANDIDATES_BOUND_MS}, \"committed_planar_batch_ms\": \
             {COMMITTED_PLANAR_BATCH_MS}, \"speedup_candidates_bound\": \
             {candidates_bound_speedup:.2}, \"speedup_batch\": {batch_speedup:.2}, \
             \"sieve_rejected\": {}, \"candidates_examined\": {}, \"breakdown_ms\": {{{}}}}}",
            counters.0,
            counters.1,
            breakdown_json.join(", "),
        );
        Some((json, candidates_bound_speedup, batch_speedup))
    };

    // ---- The committed artifact. ----------------------------------------
    let workloads_json: Vec<String> = workloads.iter().map(Workload::json).collect();
    let json = format!(
        "{{\n  \"schema\": \"maxrs-kernel-bench-v1\",\n  \"note\": \"multi-lane CSR filter \
         kernels: scalar f64 reference vs laned f64 vs f32 sieve-then-verify over one clustered \
         100k-point index, best-of-3; end_to_end gates compare the candidates-bound planar \
         solvers against the pre-kernel hot loops re-measured on this runner class \
         (committed_planar_batch_ms is the older faster-runner history)\",\n  \"workloads\": \
         [\n    {}\n  ],\n  \"end_to_end\": {}\n}}\n",
        workloads_json.join(",\n    "),
        end_to_end.as_ref().map_or("null", |(json, _, _)| json.as_str()),
    );
    std::fs::write(&out_path, &json).expect("writing the baseline file must succeed");
    println!("{json}");
    println!("wrote {out_path}");

    // ---- Gates. ----------------------------------------------------------
    // Relative, machine-independent: each laned kernel must beat the scalar
    // reference on its home workload, same machine, same process.
    assert!(
        laned_dense >= 1.2,
        "laned f64 must beat the scalar reference by 1.2x on dense_r1 (got {laned_dense:.2}x)"
    );
    assert!(
        sieve_sparse >= 1.2,
        "the f32 sieve must beat the scalar reference by 1.2x on sparse_r05 (got \
         {sieve_sparse:.2}x)"
    );
    if let Some((_, candidates_bound_speedup, batch_speedup)) = end_to_end {
        assert!(
            candidates_bound_speedup >= 2.0,
            "candidates-bound planar time must beat the pre-kernel loops by 2x \
             (got {candidates_bound_speedup:.2}x)"
        );
        assert!(
            batch_speedup >= 1.7,
            "planar batch wall clock must beat the pre-kernel loops by 1.7x \
             (got {batch_speedup:.2}x)"
        );
        println!("laned kernels beat the pre-kernel candidates-bound time by >= 2x");
    } else {
        println!("smoke mode: relative kernel gates only");
    }
}
