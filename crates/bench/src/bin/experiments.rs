//! Experiment runner: regenerates every table of EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p mrs-bench --bin experiments`.
//! Each section below corresponds to one experiment id (E1–E10) in
//! DESIGN.md / EXPERIMENTS.md and validates one of the paper's claims:
//! running-time shapes, approximation floors, and the executable hardness
//! chains.  Absolute times depend on the machine; the *shapes* (who wins, how
//! quantities scale) are what the tables are for.

use mrs_batched::engine::BatchedIntervalSolver;
use mrs_batched::BatchedSei;
use mrs_bench::measure::{ms, table_header, table_row, time, time_mean, us};
use mrs_bench::workloads;
use mrs_core::config::{ColorSamplingConfig, SamplingConfig};
use mrs_core::engine::{
    BatchExecutor, ColoredInstance, EngineConfig, ExecutorConfig, RangeShape, Registry,
    WeightedInstance,
};
use mrs_core::technique1::DynamicBallMaxRS;
use mrs_geom::cap::{
    lemma32_configuration, lemma32_covered_fraction, monte_carlo_covered_fraction,
};
use mrs_geom::union_disks::{exposed_arc_intersections, union_boundary_arcs};
use mrs_geom::Ball;
use mrs_hardness::convolution::min_plus_convolution;
use mrs_hardness::reductions::{min_plus_via_batched_maxrs, min_plus_via_bsei};
use rand::prelude::*;

/// The engine registry the experiments dispatch through, with this suite's
/// sampling configuration.
fn experiment_registry(sampling: SamplingConfig) -> Registry {
    let mut registry = Registry::with_config(EngineConfig {
        sampling,
        color_sampling: ColorSamplingConfig::default(),
    });
    mrs_batched::engine::register(&mut registry);
    registry
}

fn main() {
    println!("# MaxRS experiment suite");
    println!("(shapes matter, absolute numbers are machine-dependent)");

    e1_dynamic_updates();
    e2_static_ball_vs_exact();
    e3_dimension_scaling();
    e4_batched_maxrs_and_figure6_chain();
    e5_bsei_and_section6_chain();
    e6_colored_ball();
    e7_output_sensitive();
    e8_color_sampling();
    e9_cap_fractions();
    e10_union_intersections();
    e11_batch_executor();

    println!("\nall experiments completed");
}

/// E1 (Theorem 1.1): amortized dynamic update time vs n, against the cost of
/// recomputing a static answer from scratch after every update.
fn e1_dynamic_updates() {
    table_header(
        "E1 — dynamic MaxRS (Theorem 1.1): amortized update cost vs n",
        &["n", "update µs (amortized)", "static rebuild ms", "answer / exact"],
    );
    let cfg = SamplingConfig::practical(0.25).with_seed(11);
    for &n in &[1000usize, 2000, 4000, 8000] {
        let points = workloads::clustered_points_2d(n, 8, 30.0, 1.5, 42 + n as u64);
        let mut rng = StdRng::seed_from_u64(7);

        let mut dynamic = DynamicBallMaxRS::<2>::new(1.0, cfg);
        let (_, build) = time(|| {
            for p in &points {
                dynamic.insert(p.point, p.weight);
            }
        });
        // Mixed update stream: delete a random live point, insert a fresh one.
        let updates = 1000usize;
        let mut live: Vec<usize> = (0..n).collect();
        let (_, update_time) = time(|| {
            for i in 0..updates {
                let victim = rng.gen_range(0..live.len());
                let id = live.swap_remove(victim);
                dynamic.remove(id);
                let p = points[i % n];
                live.push(dynamic.insert(p.point, p.weight));
            }
        });
        let per_update = update_time / updates as u32;

        // Recompute-from-scratch baseline: one full static build of the same
        // sampling structure (what a naive "re-run on every update" would pay).
        let registry = experiment_registry(cfg);
        let static_solver = registry.weighted::<2>("approx-static-ball").unwrap();
        let instance = WeightedInstance::ball(points.clone(), 1.0);
        let (_, rebuild) = time(|| static_solver.solve(&instance).unwrap());

        // Solution quality against the exact planar algorithm (only affordable
        // for the smaller sizes).
        let quality = if n <= 2000 {
            let exact = registry.weighted::<2>("exact-disk-2d").unwrap().solve(&instance).unwrap();
            let answer = dynamic.best().map(|p| p.value).unwrap_or(0.0);
            format!("{:.2}", answer / exact.placement.value)
        } else {
            "-".to_string()
        };
        let _ = build;
        table_row(&[n.to_string(), us(per_update), ms(rebuild), quality]);
    }
}

/// E2 (Theorem 1.2): static sampling technique vs the exact disk algorithm.
fn e2_static_ball_vs_exact() {
    table_header(
        "E2 — static ball MaxRS (Theorem 1.2): sampling vs exact, d = 2, ε = 0.25",
        &["workload", "n", "sampling ms", "exact ms", "ratio (≥ 0.25 required)"],
    );
    let registry = experiment_registry(SamplingConfig::practical(0.25).with_seed(3));
    let sampler = registry.weighted::<2>("approx-static-ball").unwrap();
    let exact_disk = registry.weighted::<2>("exact-disk-2d").unwrap();
    for (name, points) in [
        ("uniform", workloads::uniform_weighted_2d(2000, 12.0, 1)),
        ("clustered", workloads::clustered_points_2d(2000, 6, 12.0, 1.0, 2)),
        ("uniform", workloads::uniform_weighted_2d(4000, 16.0, 3)),
    ] {
        let n = points.len();
        let instance = WeightedInstance::ball(points, 1.0);
        let (approx, t_approx) = time(|| sampler.solve(&instance).unwrap());
        let (exact, t_exact) = time(|| exact_disk.solve(&instance).unwrap());
        table_row(&[
            name.to_string(),
            n.to_string(),
            ms(t_approx),
            ms(t_exact),
            format!("{:.2}", approx.placement.value / exact.placement.value),
        ]);
    }
}

/// E3 (Theorem 1.2): running time as the dimension grows — the point of the
/// technique is that the log-factor does not become log^d.
fn e3_dimension_scaling() {
    table_header(
        "E3 — sampling technique vs dimension (n = 300, ε = 0.4)",
        &["d", "grids", "cells", "time ms", "value / point-lower-bound"],
    );
    fn run<const D: usize>() -> [String; 5] {
        let points = workloads::uniform_points_d::<D>(300, 5.0, 17);
        let instance = WeightedInstance::ball(points.clone(), 1.0);
        let mut cfg = SamplingConfig::new(0.4).with_seed(5);
        cfg.max_grids = Some(4);
        cfg.max_samples_per_cell = 16;
        let solver = experiment_registry(cfg).weighted::<D>("approx-static-ball").unwrap();
        let (report, elapsed) = time(|| solver.solve(&instance).unwrap());
        // Lower bound on opt: the best depth over input locations.
        let lb = points.iter().map(|p| instance.value_at(&p.point)).fold(0.0f64, f64::max);
        [
            D.to_string(),
            report.stats.grids.unwrap_or(0).to_string(),
            report.stats.cells.unwrap_or(0).to_string(),
            ms(elapsed),
            format!("{:.2}", report.placement.value / lb.max(1.0)),
        ]
    }
    table_row(&run::<2>());
    table_row(&run::<3>());
    table_row(&run::<4>());
}

/// E4 (Theorem 1.3): batched MaxRS cost grows like m·n, and the Figure 6 chain
/// reproduces (min,+)-convolution through the batched MaxRS oracle.
fn e4_batched_maxrs_and_figure6_chain() {
    table_header(
        "E4a — batched MaxRS in R¹: total time vs m (n = 4096)",
        &["m", "total ms", "ns per (m·n) pair"],
    );
    let n = 4096usize;
    let points = workloads::line_points(n, 1000.0, 23);
    let line: Vec<mrs_geom::WeightedPoint<1>> = points
        .iter()
        .map(|p| mrs_geom::WeightedPoint::new(mrs_geom::Point::new([p.x]), p.weight))
        .collect();
    let instance = WeightedInstance::<1>::new(line, RangeShape::interval(1.0));
    let solver = BatchedIntervalSolver;
    let mut rng = StdRng::seed_from_u64(9);
    for &m in &[16usize, 64, 256, 1024] {
        let lengths: Vec<f64> = (0..m).map(|_| rng.gen_range(1.0..500.0)).collect();
        // One engine call answers all m lengths, sharing the O(n log n) build
        // (the Theorem 1.3 amortization).  Each report's stats.elapsed covers
        // only its own sweep, so summing them isolates the per-pair cost the
        // table is about, excluding the shared build.
        let reps = 3u32;
        let mut sweep_total = std::time::Duration::ZERO;
        for _ in 0..reps {
            let reports = solver.solve_lengths(&instance, &lengths);
            sweep_total += reports.iter().map(|r| r.stats.elapsed).sum::<std::time::Duration>();
        }
        let elapsed = sweep_total / reps;
        let per_pair = elapsed.as_secs_f64() * 1e9 / (m * n) as f64;
        table_row(&[m.to_string(), ms(elapsed), format!("{per_pair:.1}")]);
    }

    table_header(
        "E4b — Figure 6 chain: (min,+)-convolution via batched MaxRS",
        &["n", "naive ms", "via chain ms", "max |error|"],
    );
    for &cn in &[128usize, 256, 512] {
        let a = workloads::random_sequence(cn, -100.0, 100.0, 31);
        let b = workloads::random_sequence(cn, -100.0, 100.0, 32);
        let (naive, t_naive) = time(|| min_plus_convolution(&a, &b));
        let (chain, t_chain) = time(|| min_plus_via_batched_maxrs(&a, &b, 64));
        let err = naive.iter().zip(&chain).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
        table_row(&[cn.to_string(), ms(t_naive), ms(t_chain), format!("{err:.1e}")]);
    }
}

/// E5 (Theorem 1.4): batched SEI cost grows like n², and the Section 6 chain
/// reproduces (min,+)-convolution through the BSEI oracle.
fn e5_bsei_and_section6_chain() {
    table_header(
        "E5 — batched smallest k-enclosing interval: time vs n, and the Section 6 chain",
        &["n", "BSEI total ms", "ns per n² pair", "chain max |error|"],
    );
    for &n in &[512usize, 1024, 2048, 4096] {
        let points: Vec<f64> = workloads::random_sequence(n, 0.0, 1000.0, 41);
        let solver = BatchedSei::new(&points);
        let elapsed = time_mean(3, || solver.all_lengths());
        let per_pair = elapsed.as_secs_f64() * 1e9 / (n * n) as f64;

        let err = if n <= 1024 {
            let a = workloads::random_sequence(n.min(512), -50.0, 50.0, 43);
            let b = workloads::random_sequence(n.min(512), -50.0, 50.0, 44);
            let naive = min_plus_convolution(&a, &b);
            let chain = min_plus_via_bsei(&a, &b);
            let err = naive.iter().zip(&chain).map(|(x, y)| (x - y).abs()).fold(0.0f64, f64::max);
            format!("{err:.1e}")
        } else {
            "-".to_string()
        };
        table_row(&[n.to_string(), ms(elapsed), format!("{per_pair:.2}"), err]);
    }
}

/// E6 (Theorem 1.5): colored sampling technique vs the exact colored answer.
fn e6_colored_ball() {
    table_header(
        "E6 — colored ball MaxRS (Theorem 1.5): sampling vs exact, ε = 0.25",
        &["n", "colors", "sampling ms", "exact ms", "ratio (≥ 0.25 required)"],
    );
    let registry = experiment_registry(SamplingConfig::practical(0.25).with_seed(13));
    let sampler = registry.colored::<2>("approx-colored-ball").unwrap();
    let exact_solver = registry.colored::<2>("output-sensitive-colored-disk").unwrap();
    for &(n, colors) in &[(1000usize, 20usize), (2000, 40), (4000, 80)] {
        let sites = workloads::colored_clusters_2d(n, colors, 6, 14.0, 1.2, 51 + n as u64);
        let instance = ColoredInstance::ball(sites, 1.0);
        let (approx, t_approx) = time(|| sampler.solve(&instance).unwrap());
        // The exact comparator is only affordable at the smaller sizes.
        if n <= 2000 {
            let (exact, t_exact) = time(|| exact_solver.solve(&instance).unwrap());
            table_row(&[
                n.to_string(),
                colors.to_string(),
                ms(t_approx),
                ms(t_exact),
                format!(
                    "{:.2}",
                    approx.placement.distinct as f64 / exact.placement.distinct as f64
                ),
            ]);
        } else {
            table_row(&[
                n.to_string(),
                colors.to_string(),
                ms(t_approx),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
    }
}

/// E7 (Theorem 4.6): the output-sensitive exact algorithm's cost scales with
/// the answer, not with n², while the straightforward candidate-enumeration
/// algorithm does not care how small opt is.
fn e7_output_sensitive() {
    table_header(
        "E7 — output-sensitive exact colored MaxRS (Theorem 4.6), n = 1200",
        &["planted opt", "found", "crossings k", "output-sensitive ms", "straightforward ms"],
    );
    let n = 1200usize;
    let registry = experiment_registry(SamplingConfig::default());
    let fast = registry.colored::<2>("output-sensitive-colored-disk").unwrap();
    let slow = registry.colored::<2>("exact-colored-disk-enum").unwrap();
    for &opt in &[4usize, 16, 64, 256] {
        let sites = workloads::colored_planted_opt(n, opt, 61 + opt as u64);
        let instance = ColoredInstance::ball(sites, 1.0);
        let (report, t_fast) = time(|| fast.solve(&instance).unwrap());
        let (_, t_slow) = time(|| slow.solve(&instance).unwrap());
        table_row(&[
            opt.to_string(),
            report.placement.distinct.to_string(),
            report.stats.candidates.unwrap_or(0).to_string(),
            ms(t_fast),
            ms(t_slow),
        ]);
    }
}

/// E8 (Theorem 1.6): the color-sampling (1 − ε) algorithm vs the exact
/// output-sensitive algorithm on large-opt workloads.
fn e8_color_sampling() {
    table_header(
        "E8 — color sampling (Theorem 1.6) on large-opt workloads",
        &["n", "opt (exact)", "ε", "branch", "answer", "ratio", "sampling ms", "exact ms"],
    );
    for &(n, colors) in &[(2000usize, 200usize)] {
        // Dense single hotspot so opt ≈ number of colors.
        let mut sites = workloads::colored_clusters_2d(n / 2, colors, 1, 1.0, 0.8, 71);
        sites.extend(workloads::colored_clusters_2d(n / 2, colors / 4, 10, 60.0, 1.0, 72));
        let instance = ColoredInstance::ball(sites, 1.0);
        let base_registry = experiment_registry(SamplingConfig::default());
        let (exact, t_exact) = time(|| {
            base_registry
                .colored::<2>("output-sensitive-colored-disk")
                .unwrap()
                .solve(&instance)
                .unwrap()
        });
        for &eps in &[0.2f64, 0.35] {
            let mut cfg = ColorSamplingConfig::new(eps).with_seed(5);
            cfg.c1 = 0.5;
            let registry = Registry::with_config(EngineConfig {
                sampling: SamplingConfig::default(),
                color_sampling: cfg,
            });
            let sampler = registry.colored::<2>("approx-colored-disk-sampling").unwrap();
            let (report, t_approx) = time(|| sampler.solve(&instance).unwrap());
            // `samples` carries the kept-color count iff the sampled branch ran.
            let branch = match report.stats.samples {
                None => "exact".to_string(),
                Some(kept) => format!("sampled ({kept} colors)"),
            };
            table_row(&[
                n.to_string(),
                exact.placement.distinct.to_string(),
                format!("{eps}"),
                branch,
                report.placement.distinct.to_string(),
                format!(
                    "{:.2}",
                    report.placement.distinct as f64 / exact.placement.distinct as f64
                ),
                ms(t_approx),
                ms(t_exact),
            ]);
        }
    }
}

/// E9 (Lemma 3.2 / Figure 2): spherical-cap coverage fractions.
fn e9_cap_fractions() {
    table_header(
        "E9 — Lemma 3.2 cap fractions: covered fraction vs the 1/2 − Θ(ε) floor",
        &["d", "ε", "closed form", "Monte Carlo", "1/2 − 2.5ε"],
    );
    let mut rng = StdRng::seed_from_u64(97);
    for &d in &[2usize, 3, 5] {
        for &eps in &[0.05f64, 0.1, 0.2] {
            let exact = lemma32_covered_fraction(d, eps);
            let mc = match d {
                2 => {
                    let (c, b) = lemma32_configuration::<2>(eps);
                    monte_carlo_covered_fraction(&c, &b, 20_000, &mut rng)
                }
                3 => {
                    let (c, b) = lemma32_configuration::<3>(eps);
                    monte_carlo_covered_fraction(&c, &b, 20_000, &mut rng)
                }
                _ => {
                    let (c, b) = lemma32_configuration::<5>(eps);
                    monte_carlo_covered_fraction(&c, &b, 20_000, &mut rng)
                }
            };
            table_row(&[
                d.to_string(),
                format!("{eps}"),
                format!("{exact:.4}"),
                format!("{mc:.4}"),
                format!("{:.4}", 0.5 - 2.5 * eps),
            ]);
        }
    }
}

/// E11 (batch execution layer): answering a mixed weighted/colored query
/// batch through the shared-index executor vs a one-at-a-time dispatch loop
/// over the same workload.
fn e11_batch_executor() {
    table_header(
        "E11 — batch executor: shared indexes + worker fan-out vs one-at-a-time",
        &["workload", "m", "one-at-a-time ms", "batch ms", "speedup", "threads", "index builds"],
    );
    let registry = experiment_registry(SamplingConfig::practical(0.25).with_seed(7));
    // Certification off: the one-at-a-time loop does no certification, so
    // leaving it on would charge the batch side for extra work the loop
    // never does.
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: None, certify: false, ..ExecutorConfig::default() },
    );
    let planar: Vec<(&str, _)> = vec![
        ("planar mixed (n = 400)", mrs_bench::batch::mixed_planar_request(400, 24, 91)),
        ("planar mixed (n = 400)", mrs_bench::batch::mixed_planar_request(400, 48, 91)),
    ];
    for (name, request) in planar {
        let (ok, t_loop) = time(|| mrs_bench::batch::solve_one_at_a_time(&registry, &request));
        assert_eq!(ok, request.len());
        let (report, t_batch) = time(|| executor.execute(&request));
        assert!(report.all_ok(), "every batch query must succeed");
        table_row(&[
            name.to_string(),
            request.len().to_string(),
            ms(t_loop),
            ms(t_batch),
            format!("{:.2}x", t_loop.as_secs_f64() / t_batch.as_secs_f64()),
            report.stats.threads.to_string(),
            report.stats.index_builds.to_string(),
        ]);
    }
    // The Theorem 1.3 amortization case: m interval lengths over one line.
    let request = mrs_bench::batch::interval_lengths_request(4096, 256, 23);
    let (ok, t_loop) = time(|| mrs_bench::batch::solve_one_at_a_time(&registry, &request));
    assert_eq!(ok, request.len());
    let (report, t_batch) = time(|| executor.execute(&request));
    assert!(report.all_ok(), "every interval query must succeed");
    table_row(&[
        "interval 1-D (n = 4096)".to_string(),
        request.len().to_string(),
        ms(t_loop),
        ms(t_batch),
        format!("{:.2}x", t_loop.as_secs_f64() / t_batch.as_secs_f64()),
        report.stats.threads.to_string(),
        report.stats.index_builds.to_string(),
    ]);
}

/// E10 (Lemma 4.4 / Figure 5): the number of crossings between the union
/// boundaries of two disk sets grows linearly, not quadratically.
fn e10_union_intersections() {
    table_header(
        "E10 — Lemma 4.4: |I(D_R, D_B)| vs |D_R| + |D_B|",
        &["disks per set", "crossings", "crossings / (|R|+|B|)"],
    );
    let mut rng = StdRng::seed_from_u64(101);
    for &n in &[100usize, 400, 1600] {
        let extent = (n as f64).sqrt() * 1.2;
        let gen = |rng: &mut StdRng| -> Vec<Ball<2>> {
            (0..n)
                .map(|_| {
                    Ball::unit(mrs_geom::Point2::xy(
                        rng.gen_range(0.0..extent),
                        rng.gen_range(0.0..extent),
                    ))
                })
                .collect()
        };
        let red = gen(&mut rng);
        let blue = gen(&mut rng);
        let red_arcs = union_boundary_arcs(&red);
        let blue_arcs = union_boundary_arcs(&blue);
        let crossings = exposed_arc_intersections(&red, &red_arcs, &blue, &blue_arcs).len();
        table_row(&[
            n.to_string(),
            crossings.to_string(),
            format!("{:.2}", crossings as f64 / (2 * n) as f64),
        ]);
    }
}
