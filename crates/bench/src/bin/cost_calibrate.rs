//! Fits the `auto` meta-solver's per-solver cost models and prints the
//! `COEFFICIENTS` table committed in `mrs_core::engine::cost`.
//!
//! For every solver that reports deterministic work counters, the harness
//! runs a spread of seeded workloads (sizes × densities × query radii ×
//! clustering), measures `cost::actual_work` per answered query, and fits
//! the seven-coefficient linear model over `cost::CostFeatures` by
//! *nonnegative* least squares (active-set over normal equations with a
//! tiny ridge term, solved by Gaussian elimination — no external
//! dependencies).  Solvers without counters cost exactly `n` under the
//! measure and keep their exact `[0,1,0,0,0,0,0]` row.
//!
//! Usage: `cargo run --release -p mrs-bench --bin cost_calibrate`
//! then paste the printed rows into `crates/core/src/engine/cost.rs`.

use mrs_batched::engine::full_registry;
use mrs_bench::workloads;
use mrs_core::engine::cost::{actual_work, CostFeatures, InstanceProfile};
use mrs_core::engine::{
    BatchExecutor, BatchQuery, BatchRequest, EngineConfig, RangeShape, Registry,
};

/// The seed every workload derives from: calibration is reproducible.
const SEED: u64 = 20250808;

/// One observation: a feature row and the work the solver actually did.
struct Sample {
    x: [f64; 7],
    y: f64,
}

fn main() {
    let registry = full_registry(EngineConfig::practical(0.25).with_seed(SEED));

    println!("fitting per-solver cost models (deterministic counter measure)\n");
    let mut rows: Vec<(String, [f64; 7])> = Vec::new();
    for (solver, samples) in [
        ("exact-disk-2d", weighted_samples(&registry, "exact-disk-2d")),
        ("approx-static-ball", weighted_samples(&registry, "approx-static-ball")),
        (
            "output-sensitive-colored-disk",
            colored_samples(&registry, "output-sensitive-colored-disk"),
        ),
        (
            "approx-colored-disk-sampling",
            colored_samples(&registry, "approx-colored-disk-sampling"),
        ),
    ] {
        let coeff = fit(&samples);
        report_fit(solver, &samples, &coeff);
        rows.push((solver.to_string(), coeff));
    }

    println!("\n// paste into COEFFICIENTS in crates/core/src/engine/cost.rs:");
    for (name, c) in &rows {
        println!(
            "    (\"{name}\", [{:.6}, {:.6}, {:.6}, {:.6}, {:.6}, {:.6}, {:.6}]),",
            c[0], c[1], c[2], c[3], c[4], c[5], c[6]
        );
    }
}

/// Weighted calibration grid: uniform and clustered point sets across sizes,
/// ball radii sweeping the fill range.  Counters for the index-shared
/// solvers flow through the batch executor (their per-query `solve` path
/// reports none), which is also exactly how the `auto` router invokes them.
fn weighted_samples(registry: &Registry, solver: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for &n in &[200usize, 400, 800, 1600] {
        for clustered in [false, true] {
            let points = if clustered {
                workloads::clustered_points_2d(n, 6, 20.0, 1.2, SEED ^ n as u64)
            } else {
                workloads::uniform_points_2d(n, 20.0, SEED ^ n as u64)
            };
            let profile = InstanceProfile::of_points(&points);
            let mut request = BatchRequest::new(points, Vec::new());
            let mut features: Vec<CostFeatures> = Vec::new();
            for &radius in &[0.2, 0.5, 1.0, 2.0, 4.0] {
                let shape = RangeShape::ball(radius);
                features.push(profile.features(&shape));
                request.push(BatchQuery::weighted(solver, shape));
            }
            let report = BatchExecutor::new(registry).execute(&request);
            for (i, f) in features.iter().enumerate() {
                let answer = report.weighted(i).expect("calibration query answers");
                samples
                    .push(Sample { x: f.as_array(), y: actual_work(&answer.stats, profile.len()) });
            }
        }
    }
    samples
}

/// Colored calibration grid: clustered palettes of varying size; radii stay
/// small for the output-sensitive solver, whose cost climbs steeply with the
/// covered cluster size.
fn colored_samples(registry: &Registry, solver: &str) -> Vec<Sample> {
    let mut samples = Vec::new();
    for &n in &[200usize, 400, 800] {
        for &colors in &[8usize, 30] {
            let sites =
                workloads::colored_clusters_2d(n, colors, 6, 20.0, 1.2, SEED ^ (n * colors) as u64);
            let profile = InstanceProfile::of_sites(&sites);
            let mut request = BatchRequest::new(Vec::new(), sites);
            let mut features: Vec<CostFeatures> = Vec::new();
            for &radius in &[0.2, 0.35, 0.5, 0.8] {
                let shape = RangeShape::ball(radius);
                features.push(profile.features(&shape));
                request.push(BatchQuery::colored(solver, shape));
            }
            let report = BatchExecutor::new(registry).execute(&request);
            for (i, f) in features.iter().enumerate() {
                let answer = report.colored(i).expect("calibration query answers");
                samples
                    .push(Sample { x: f.as_array(), y: actual_work(&answer.stats, profile.len()) });
            }
        }
    }
    samples
}

/// Nonnegative weighted least squares: minimizes relative error (weights
/// `1/y²` — the router ranks solvers multiplicatively, and an unweighted
/// fit is dominated by the largest workloads) subject to every coefficient
/// being `≥ 0`.  The sign constraint is what makes the fit safe to route
/// on: features are nonnegative, so predictions are nonnegative and
/// monotone in every feature — an unconstrained fit here produces large
/// negative terms whose floored predictions would make `auto` blindly
/// prefer the mispriced solver on out-of-sample instances.
///
/// Solved by the classic active-set reduction: fit unconstrained on the
/// active columns (normal equations + Gaussian elimination), drop the most
/// negative coefficient, repeat until all remaining are nonnegative.
fn fit(samples: &[Sample]) -> [f64; 7] {
    let mut active = [true; 7];
    loop {
        let coeff = fit_active(samples, &active);
        let worst = (0..7)
            .filter(|&i| active[i] && coeff[i] < -1e-12)
            .min_by(|&a, &b| coeff[a].total_cmp(&coeff[b]));
        match worst {
            Some(i) => active[i] = false,
            None => {
                let mut out = [0.0; 7];
                for i in 0..7 {
                    out[i] = if active[i] { coeff[i].max(0.0) } else { 0.0 };
                }
                return out;
            }
        }
    }
}

/// The unconstrained weighted fit restricted to the active feature columns
/// (inactive columns are fixed at zero): normal equations
/// `(XᵀWX + λI) c = XᵀWy` with a tiny ridge, Gaussian elimination with
/// partial pivoting.
fn fit_active(samples: &[Sample], active: &[bool; 7]) -> [f64; 7] {
    let mut xtx = [[0.0f64; 7]; 7];
    let mut xty = [0.0f64; 7];
    for s in samples {
        let w = 1.0 / s.y.max(1.0).powi(2);
        for i in 0..7 {
            if !active[i] {
                continue;
            }
            xty[i] += w * s.x[i] * s.y;
            for j in 0..7 {
                if active[j] {
                    xtx[i][j] += w * s.x[i] * s.x[j];
                }
            }
        }
    }
    let ridge = 1e-9 * (0..7).map(|i| xtx[i][i]).sum::<f64>().max(1e-12);
    for i in 0..7 {
        // Inactive columns get an identity row, pinning their coefficient
        // to zero without degenerating the system.
        xtx[i][i] += if active[i] { ridge } else { 1.0 };
    }

    let mut a = [[0.0f64; 8]; 7];
    for i in 0..7 {
        a[i][..7].copy_from_slice(&xtx[i]);
        a[i][7] = xty[i];
    }
    for col in 0..7 {
        let pivot = (col..7)
            .max_by(|&p, &q| a[p][col].abs().total_cmp(&a[q][col].abs()))
            .expect("non-empty range");
        a.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 0.0, "singular normal equations despite the ridge");
        let pivot_row = a[col];
        for (row, r) in a.iter_mut().enumerate() {
            if row == col {
                continue;
            }
            let factor = r[col] / diag;
            for (rk, pk) in r[col..].iter_mut().zip(&pivot_row[col..]) {
                *rk -= factor * pk;
            }
        }
    }
    let mut coeff = [0.0f64; 7];
    for i in 0..7 {
        coeff[i] = a[i][7] / a[i][i];
    }
    coeff
}

/// Prints fit quality: R² plus mean relative error, the quantity the
/// `auto` router's ranking actually depends on.
fn report_fit(solver: &str, samples: &[Sample], coeff: &[f64; 7]) {
    let n = samples.len() as f64;
    let mean_y = samples.iter().map(|s| s.y).sum::<f64>() / n;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let mut rel = 0.0;
    for s in samples {
        let pred: f64 = coeff.iter().zip(s.x).map(|(c, x)| c * x).sum::<f64>().max(1.0);
        ss_res += (s.y - pred).powi(2);
        ss_tot += (s.y - mean_y).powi(2);
        rel += ((s.y - pred).abs() / s.y.max(1.0)).min(10.0);
    }
    let r2 = if ss_tot > 0.0 { 1.0 - ss_res / ss_tot } else { 1.0 };
    println!(
        "{solver:<32} {:>4} samples   R² = {r2:.4}   mean |rel err| = {:.1}%",
        samples.len(),
        100.0 * rel / n
    );
}
