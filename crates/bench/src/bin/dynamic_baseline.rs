//! The committed dynamic-update baseline (`BENCH_dynamic.json`): versioned
//! delta-overlay serving vs the bump-epoch-and-rebuild strategy it
//! replaces.
//!
//! ```text
//! cargo run --release -p mrs-bench --bin dynamic_baseline -- \
//!     [--smoke] [--out BENCH_dynamic.json] [--n POINTS] [--updates U] [--seed S]
//! ```
//!
//! The workload is the acceptance scenario of the versioned-dataset PR: a
//! 100k-point 1-D dataset under a 1% update mix (alternating inserts and
//! deletes), with a query after every update — two thirds `dynamic-ball`
//! (the solver an update-heavy workload exists for), one third
//! `batched-interval-1d`:
//!
//! * `batched-interval-1d` — exact; the overlay path answers off the
//!   *merged* sorted event list (`O(n)` merge of the base generation's
//!   cached order with the sorted delta) instead of a from-scratch
//!   `O(n log n)` rebuild, and must be **byte-identical** to the rebuild at
//!   every version;
//! * `dynamic-ball` — the Theorem 1.1 tracker, **incrementally
//!   maintained** across every mutation (`O(ε^{-2d-2} log n)` per update)
//!   and read without rebuilding anything.
//!
//! The baseline re-runs each sampled query the way the pre-versioning
//! server would after an epoch bump: a fresh `SharedIndex` over the live
//! snapshot for the interval query (full re-sort), and a from-scratch
//! `dynamic-ball` dispatch (rebuild the whole sampling structure) for the
//! tracker query.
//!
//! Exit code is non-zero if any answer is uncertified, any overlay interval
//! answer differs bit-for-bit from its rebuild, or the post-update query
//! p50 speedup falls below the committed 5× floor.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use mrs_bench::serve::{line_csv, line_update_record};
use mrs_core::engine::{
    BatchExecutor, BatchQuery, BatchRequest, EngineConfig, ExecutorConfig, LatencySummary,
    Mutation, RangeShape, ScriptOutcome, ScriptStep, VersionedDataset,
};
use mrs_server::service::latency_json;
use mrs_server::{full_registry, Json};
use rand::prelude::*;

const INTERVAL_LENGTH: f64 = 25.0;
const BALL_RADIUS: f64 = 12.5;

struct Config {
    smoke: bool,
    out: Option<String>,
    n: usize,
    updates: usize,
    seed: u64,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config { smoke: false, out: None, n: 0, updates: 0, seed: 2026 };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = None;
    let mut updates = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: usize, name: &str| {
            args.get(i + 1).cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match args[i].as_str() {
            "--smoke" => {
                config.smoke = true;
                i += 1;
            }
            "--out" => {
                config.out = Some(value(i, "--out")?);
                i += 2;
            }
            "--n" => {
                n = Some(value(i, "--n")?.parse().map_err(|_| "--n: invalid count")?);
                i += 2;
            }
            "--updates" => {
                updates =
                    Some(value(i, "--updates")?.parse().map_err(|_| "--updates: invalid count")?);
                i += 2;
            }
            "--seed" => {
                config.seed = value(i, "--seed")?.parse().map_err(|_| "--seed: invalid seed")?;
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    config.n = n.unwrap_or(if config.smoke { 10_000 } else { 100_000 });
    config.updates = updates.unwrap_or(config.n / 100);
    Ok(config)
}

#[derive(Default)]
struct Violations(Vec<String>);

impl Violations {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        if !ok {
            let what = what.into();
            eprintln!("VIOLATION: {what}");
            self.0.push(what);
        }
    }
}

/// The bump-epoch baseline for one interval query: a fresh index over the
/// live snapshot (full re-sort), certification on.  Returns (elapsed,
/// value bits) so the overlay answer can be compared bit for bit.
fn baseline_interval(
    executor: &BatchExecutor<'_>,
    live: std::sync::Arc<[mrs_geom::WeightedPoint<1>]>,
) -> (Duration, u64, f64) {
    let started = Instant::now();
    let request = BatchRequest::from_shared(live, Vec::new().into()).with_query(
        BatchQuery::weighted("batched-interval-1d", RangeShape::ball(INTERVAL_LENGTH / 2.0)),
    );
    let report = executor.execute(&request);
    let answer = report.weighted(0).expect("baseline interval query succeeds");
    let center = answer.placement.center[0];
    (started.elapsed(), answer.placement.value.to_bits(), center)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut violations = Violations::default();

    eprintln!("generating {} line points...", config.n);
    let csv = line_csv(config.n, config.seed);
    let points = mrs_core::input::parse_line_csv(&csv).expect("generated CSV parses");
    let coords: Vec<f64> = points.iter().map(|p| p.point[0]).collect();
    let dataset = VersionedDataset::new(points, Vec::new());

    let engine_config = EngineConfig::practical(0.25).with_seed(config.seed);
    let registry = full_registry(engine_config);
    let executor = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: None, certify: true, ..ExecutorConfig::default() },
    );

    // Warm-up: the one-time builds (generation sorted line, the resident
    // dynamic tracker) are reported separately — they are paid once per
    // dataset lifetime, not per update.
    let interval_query =
        BatchQuery::weighted("batched-interval-1d", RangeShape::ball(INTERVAL_LENGTH / 2.0));
    let dynamic_query = BatchQuery::weighted("dynamic-ball", RangeShape::ball(BALL_RADIUS));
    let warm_started = Instant::now();
    let warm = executor.execute_script(
        &dataset,
        &[ScriptStep::Query(interval_query.clone()), ScriptStep::Query(dynamic_query.clone())],
    );
    let warm_time = warm_started.elapsed();
    violations.check(warm.all_ok(), "warm-up queries must succeed");
    violations.check(
        warm.outcomes.iter().all(|o| o.answer().is_none() || o.certified() == Some(true)),
        "warm-up answers must certify",
    );
    eprintln!(
        "one-time builds (sorted line + dynamic tracker): {:.1} ms",
        warm_time.as_secs_f64() * 1e3
    );

    // The update/query mix: every update is followed by one query,
    // alternating the two kinds.  Updates alternate inserts (fresh records)
    // and deletes (coordinates of known records).
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xFEED);
    let mut overlay_interval: Vec<Duration> = Vec::new();
    let mut overlay_dynamic: Vec<Duration> = Vec::new();
    let mut baseline_interval_samples: Vec<Duration> = Vec::new();
    let mut baseline_dynamic_samples: Vec<Duration> = Vec::new();
    let mut update_time = Duration::ZERO;
    let mut deletes_missed = 0usize;
    let mut uncertified = 0usize;
    // Interval rebuilds are cheap to sample often; the from-scratch
    // dynamic rebuild costs seconds at 100k, so it is sampled sparsely —
    // its variance is tiny next to the orders-of-magnitude gap.
    let baseline_every = (config.updates / 8).max(1);
    let dynamic_baseline_every = (config.updates / 4).max(1);

    for u in 0..config.updates {
        let mutation = if u % 2 == 0 {
            let (x, w) = line_update_record(config.seed, u as u64);
            Mutation::Insert {
                point: mrs_geom::WeightedPoint::new(mrs_geom::Point::new([x]), w),
                color: None,
            }
        } else {
            Mutation::Delete {
                point: mrs_geom::Point::new([coords[rng.gen_range(0..coords.len())]]),
            }
        };
        let update_started = Instant::now();
        let report = dataset.apply(std::slice::from_ref(&mutation));
        update_time += update_started.elapsed();
        deletes_missed += report.outcome.missed;

        // Post-update query through the delta overlay: 2/3 dynamic-ball,
        // 1/3 exact interval.
        let interval_round = u % 3 == 0;
        let query = if interval_round { &interval_query } else { &dynamic_query };
        let query_started = Instant::now();
        let script = executor.execute_script(&dataset, &[ScriptStep::Query(query.clone())]);
        let elapsed = query_started.elapsed();
        let ScriptOutcome::Answer { version, certified, answer } = &script.outcomes[0] else {
            unreachable!("query step answers");
        };
        violations.check(answer.is_ok(), format!("post-update query {u} failed"));
        if *certified != Some(true) {
            uncertified += 1;
        }
        violations.check(
            *version == report.version,
            format!("stale answer: computed at v{version}, dataset at v{}", report.version),
        );
        if interval_round {
            overlay_interval.push(elapsed);
        } else {
            overlay_dynamic.push(elapsed);
        }

        // Periodically pay the pre-versioning cost: bump the epoch and
        // rebuild everything the query needs from scratch.
        if u % baseline_every == 0 {
            let live = dataset.view().live_points();
            let (rebuild_elapsed, rebuild_bits, _center) =
                baseline_interval(&executor, live.clone());
            baseline_interval_samples.push(rebuild_elapsed);
            if interval_round {
                // The overlay interval answer at this version must equal the
                // rebuild bit for bit (both are exact solvers).
                let overlay_bits =
                    answer.weighted().map(|r| r.placement.value.to_bits()).unwrap_or(0);
                violations.check(
                    overlay_bits == rebuild_bits,
                    format!(
                        "update {u}: overlay answer {} != rebuild {}",
                        f64::from_bits(overlay_bits),
                        f64::from_bits(rebuild_bits)
                    ),
                );
            }
        }
        if u % dynamic_baseline_every == 0 {
            let live = dataset.view().live_points();
            let instance = mrs_core::engine::WeightedInstance::from_shared(
                live,
                RangeShape::ball(BALL_RADIUS),
            );
            let solver = registry.weighted::<1>("dynamic-ball").expect("registered");
            let started = Instant::now();
            let rebuilt = solver.solve(&instance).expect("baseline dynamic solve succeeds");
            baseline_dynamic_samples.push(started.elapsed());
            violations
                .check(rebuilt.placement.value >= 0.0, "baseline dynamic solve returned nonsense");
        }
    }

    violations.check(uncertified == 0, format!("{uncertified} uncertified answers"));

    let overlay_mixed: Vec<Duration> =
        overlay_interval.iter().chain(overlay_dynamic.iter()).copied().collect();
    // The overlay samples carry the workload's own 1:2 interval:dynamic
    // proportions (one real measurement per query).  The baseline's
    // from-scratch dynamic rebuild costs seconds, so it is *sampled*
    // sparsely; to compare medians of the same workload, replicate the
    // dynamic samples up to the workload proportion (weighting the
    // empirical distribution, not inventing measurements).
    let mut baseline_mixed: Vec<Duration> = baseline_interval_samples.clone();
    if !baseline_dynamic_samples.is_empty() {
        let want = 2 * baseline_interval_samples.len().max(1);
        let reps = want.div_ceil(baseline_dynamic_samples.len());
        for _ in 0..reps {
            baseline_mixed.extend_from_slice(&baseline_dynamic_samples);
        }
    }
    let overlay = LatencySummary::from_durations(&overlay_mixed);
    let baseline = LatencySummary::from_durations(&baseline_mixed);
    let overlay_i = LatencySummary::from_durations(&overlay_interval);
    let overlay_d = LatencySummary::from_durations(&overlay_dynamic);
    let baseline_i = LatencySummary::from_durations(&baseline_interval_samples);
    let baseline_d = LatencySummary::from_durations(&baseline_dynamic_samples);

    let speedup_p50 = baseline.p50.as_secs_f64() / overlay.p50.as_secs_f64().max(1e-12);
    let speedup_dynamic = baseline_d.p50.as_secs_f64() / overlay_d.p50.as_secs_f64().max(1e-12);
    let speedup_interval = baseline_i.p50.as_secs_f64() / overlay_i.p50.as_secs_f64().max(1e-12);
    let updates_per_sec = config.updates as f64 / update_time.as_secs_f64().max(1e-12);

    violations.check(
        speedup_p50 >= 5.0,
        format!("post-update query p50 speedup {speedup_p50:.2}× below the 5× floor"),
    );
    violations.check(
        speedup_dynamic >= 5.0,
        format!("dynamic-ball speedup {speedup_dynamic:.2}× below the 5× floor"),
    );

    eprintln!(
        "updates: {} at {:.0}/s | post-update p50: overlay {:.2} ms vs rebuild {:.2} ms \
         ({speedup_p50:.1}×) | interval {speedup_interval:.1}× | dynamic {speedup_dynamic:.1}× \
         | compactions {} | uncertified {uncertified}",
        config.updates,
        updates_per_sec,
        overlay.p50.as_secs_f64() * 1e3,
        baseline.p50.as_secs_f64() * 1e3,
        dataset.compactions(),
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::str("dynamic")),
        (
            "config".into(),
            Json::Obj(vec![
                ("n".into(), Json::num(config.n as f64)),
                ("updates".into(), Json::num(config.updates as f64)),
                ("update_mix".into(), Json::str("1% of n; alternating insert/delete")),
                ("seed".into(), Json::num(config.seed as f64)),
                ("smoke".into(), Json::Bool(config.smoke)),
            ]),
        ),
        ("one_time_builds_us".into(), Json::num(warm_time.as_secs_f64() * 1e6)),
        ("updates_per_sec".into(), Json::num(updates_per_sec)),
        ("deletes_missed".into(), Json::num(deletes_missed as f64)),
        ("final_version".into(), Json::num(dataset.version() as f64)),
        ("delta_size".into(), Json::num(dataset.view().delta_size() as f64)),
        ("compactions".into(), Json::num(dataset.compactions() as f64)),
        ("post_update_overlay".into(), latency_json(&overlay)),
        ("post_update_rebuild".into(), latency_json(&baseline)),
        ("overlay_interval".into(), latency_json(&overlay_i)),
        ("overlay_dynamic".into(), latency_json(&overlay_d)),
        ("rebuild_interval".into(), latency_json(&baseline_i)),
        ("rebuild_dynamic".into(), latency_json(&baseline_d)),
        ("speedup_p50".into(), Json::num(speedup_p50)),
        ("speedup_interval_p50".into(), Json::num(speedup_interval)),
        ("speedup_dynamic_p50".into(), Json::num(speedup_dynamic)),
        ("uncertified".into(), Json::num(uncertified as f64)),
        ("violations".into(), Json::num(violations.0.len() as f64)),
    ]);
    if let Some(path) = &config.out {
        std::fs::write(path, report.render() + "\n").expect("write the baseline file");
        eprintln!("wrote {path}");
    } else {
        println!("{}", report.render());
    }

    if violations.0.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} violation(s); failing", violations.0.len());
        ExitCode::FAILURE
    }
}
