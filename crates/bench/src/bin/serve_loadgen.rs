//! Open-loop load generator for `maxrs serve`, and the emitter of the
//! committed serving baseline (`BENCH_serve.json`).
//!
//! Run the server first, then:
//!
//! ```text
//! cargo run --release -p mrs-bench --bin serve_loadgen -- \
//!     --addr 127.0.0.1:7070 [--smoke] [--out BENCH_serve.json] \
//!     [--n POINTS] [--requests Q] [--pool P] [--seed S] [--pipeline-depth N]
//! ```
//!
//! The driver measures the three serving regimes on one canonical query —
//! a fixed-length interval MaxRS over a 1-D dataset, answered by the
//! paper's Theorem 1.3 batched solver (exact, `index-shared`):
//!
//! * **cold one-shot** — the full per-invocation pipeline a one-shot
//!   `maxrs` run pays, re-done in process (CSV parse + fresh registry +
//!   fresh index + sorted-line build + solve + certify).  No process spawn
//!   is included, so the recorded cold/warm ratio *understates* the real
//!   CLI gap.
//! * **warm index** — `POST /query` with `"cache": false` against the
//!   resident dataset: the catalog-owned sorted event list is already
//!   built, so only the per-query scan runs.
//! * **cache hit** — the same `POST /query` with caching on: the solver is
//!   skipped entirely.
//!
//! It then fires a mixed open-loop workload (planar rectangle + colored
//! disk + 1-D interval queries, Zipfian reuse over a query pool, one
//! keep-alive connection) and records total QPS plus the server's own
//! `/stats` counters, followed by a **pipelined keep-alive** phase: the
//! same mix issued `--pipeline-depth` requests per coalesced write, gating
//! on in-order responses (strictly increasing `X-Request-Id`s), zero
//! uncertified answers, and — on a full run — at least ten times the
//! committed sequential baseline's throughput.  Exit code is non-zero if
//! any response is non-2xx, any answer is uncertified, or any other
//! checked invariant fails.
//!
//! `--chaos` runs the deterministic fault-injection harness instead (see
//! [`run_chaos`]): malformed frames, oversized bodies, slow-loris drips,
//! mid-body disconnects, a connection flood past the bounded queue, panic
//! injection through the test-only `chaos-panic` solver, and an expired
//! deadline storm — gating on zero worker deaths, zero uncertified
//! answers, well-formed 5xx responses, and p50 recovery.  The target
//! server must be booted with `--chaos-solver` and a small
//! `--queue-capacity`.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use mrs_bench::serve::{line_csv, planar_csv, query_pool, zipf_pick, zipf_weights};
use mrs_core::engine::{
    BatchExecutor, BatchQuery, BatchRequest, EngineConfig, LatencySummary, RangeShape,
};
use mrs_server::service::latency_json;
use mrs_server::{full_registry, Client, Json, PipelineRequest};
use rand::prelude::*;

struct Config {
    addr: String,
    smoke: bool,
    /// Run the update-mix phase only: mutate resident datasets through
    /// `POST /datasets/{name}/insert|delete` and fail on any uncertified or
    /// stale-version answer (an answer computed at an older version than
    /// the mutation the client already observed).
    update_mix: bool,
    /// Run the seeded fault-injection harness instead of the load phases.
    chaos: bool,
    out: Option<String>,
    /// Points in the 1-D canonical dataset (the planar mixed dataset gets
    /// a tenth of this).
    n: usize,
    requests: usize,
    pool: usize,
    seed: u64,
    /// Requests per pipelined burst in the pipelined keep-alive phase.
    pipeline_depth: usize,
}

fn flag_value(args: &[String], i: usize, name: &str) -> Result<String, String> {
    args.get(i + 1).cloned().ok_or_else(|| format!("{name} requires a value"))
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        addr: "127.0.0.1:7070".to_string(),
        smoke: false,
        update_mix: false,
        chaos: false,
        out: None,
        n: 0,
        requests: 0,
        pool: 64,
        seed: 2025,
        pipeline_depth: 32,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut n = None;
    let mut requests = None;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                config.smoke = true;
                i += 1;
            }
            "--update-mix" => {
                config.update_mix = true;
                i += 1;
            }
            "--chaos" => {
                config.chaos = true;
                i += 1;
            }
            "--addr" => {
                config.addr = flag_value(&args, i, "--addr")?;
                i += 2;
            }
            "--out" => {
                config.out = Some(flag_value(&args, i, "--out")?);
                i += 2;
            }
            "--n" => {
                n = Some(flag_value(&args, i, "--n")?.parse().map_err(|_| "--n: invalid count")?);
                i += 2;
            }
            "--requests" => {
                requests = Some(
                    flag_value(&args, i, "--requests")?
                        .parse()
                        .map_err(|_| "--requests: invalid count")?,
                );
                i += 2;
            }
            "--pool" => {
                config.pool =
                    flag_value(&args, i, "--pool")?.parse().map_err(|_| "--pool: invalid count")?;
                i += 2;
            }
            "--seed" => {
                config.seed =
                    flag_value(&args, i, "--seed")?.parse().map_err(|_| "--seed: invalid seed")?;
                i += 2;
            }
            "--pipeline-depth" => {
                config.pipeline_depth = flag_value(&args, i, "--pipeline-depth")?
                    .parse()
                    .map_err(|_| "--pipeline-depth: invalid depth")?;
                if config.pipeline_depth == 0 {
                    return Err("--pipeline-depth must be at least 1".into());
                }
                i += 2;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    config.n = n.unwrap_or(if config.smoke { 50_000 } else { 400_000 });
    config.requests = requests.unwrap_or(if config.smoke { 300 } else { 2_000 });
    Ok(config)
}

/// The canonical single query all three regimes are measured on: an
/// interval of this length over the 1-D dataset, exact via Theorem 1.3.
const CANONICAL_SOLVER: &str = "batched-interval-1d";
const CANONICAL_LENGTH: f64 = 25.0;

/// The pipelined-throughput gate: the committed sequential mixed baseline
/// is 2619 q/s (one request per round trip); the pipelined phase on the
/// epoll runtime must clear ten times that, or the full (non-smoke) run
/// fails.
const PIPELINE_GATE_QPS: f64 = 10.0 * 2619.0;

/// The cold one-shot pipeline: parse the CSV, build a registry, execute the
/// canonical query over a fresh (per-call) index with certification on —
/// everything a one-shot invocation redoes per query.
fn cold_one_shot(csv: &str) -> (Duration, f64) {
    let started = Instant::now();
    let points = mrs_core::input::parse_line_csv(csv).expect("generated CSV parses");
    let registry = full_registry(EngineConfig::practical(0.25));
    let request = BatchRequest::<1>::over_points(points).with_query(BatchQuery::weighted(
        CANONICAL_SOLVER,
        RangeShape::ball(CANONICAL_LENGTH / 2.0),
    ));
    let report = BatchExecutor::new(&registry).execute(&request);
    assert!(report.all_ok(), "cold one-shot query must succeed");
    assert_eq!(report.stats.certify_failures, 0, "cold one-shot must certify");
    let value = report.weighted(0).expect("weighted answer").placement.value;
    (started.elapsed(), value)
}

/// One measured request; returns (elapsed, status, body).
fn timed(client: &mut Client, path: &str, body: &str) -> (Duration, u16, String) {
    let started = Instant::now();
    let (status, response) = client.post(path, body).expect("request I/O");
    (started.elapsed(), status, response)
}

/// Tracks every violation the run saw; the process exits non-zero if any.
#[derive(Default)]
struct Violations(Vec<String>);

impl Violations {
    fn check(&mut self, ok: bool, what: impl Into<String>) {
        if !ok {
            let what = what.into();
            eprintln!("VIOLATION: {what}");
            self.0.push(what);
        }
    }
}

/// Parses a `/query` response body and checks status + certification.
fn check_answer(violations: &mut Violations, status: u16, body: &str, context: &str) {
    violations.check((200..300).contains(&status), format!("{context}: status {status}: {body}"));
    if let Ok(parsed) = Json::parse(body) {
        if let Some(answer) = parsed.get("answer") {
            violations.check(
                answer.get("certified").and_then(Json::as_bool) == Some(true),
                format!("{context}: uncertified answer: {body}"),
            );
        }
    } else {
        violations.check(false, format!("{context}: unparseable body: {body}"));
    }
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut violations = Violations::default();

    // 0. The server must be up.
    let mut client = match Client::connect(config.addr.as_str()) {
        Ok(client) => client,
        Err(error) => {
            eprintln!("error: cannot connect to {}: {error}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    let (status, _) = client.get("/healthz").expect("healthz I/O");
    if status != 200 {
        eprintln!("error: /healthz answered {status}");
        return ExitCode::FAILURE;
    }

    if config.chaos {
        return run_chaos(&config);
    }
    if config.update_mix {
        return run_update_mix(&config, &mut client);
    }

    // 1. The datasets, and the cold one-shot baseline (best of 3).
    // The planar mixed-workload dataset is capped: its colored-disk queries
    // are output-sensitive in the number of sites, and the mixed phase
    // measures caching and solver mix, not planar scaling.
    let planar_n = (config.n / 10).min(10_000);
    eprintln!("generating {} line points + {planar_n} planar points...", config.n);
    let line = line_csv(config.n, config.seed);
    let planar = planar_csv(planar_n, config.seed);
    let mut cold = Duration::MAX;
    let mut cold_value = 0.0;
    for _ in 0..3 {
        let (elapsed, value) = cold_one_shot(&line);
        if elapsed < cold {
            cold = elapsed;
            cold_value = value;
        }
    }
    eprintln!("cold one-shot: {:.2} ms (value {cold_value:.3})", cold.as_secs_f64() * 1e3);

    // 2. Upload both datasets.
    let (upload, status, body) = timed(&mut client, "/datasets/loadgen1d?dim=1", &line);
    violations.check(status == 200, format!("1-D upload: status {status}: {body}"));
    let (_, status, body) = timed(&mut client, "/datasets/loadgen", &planar);
    violations.check(status == 200, format!("planar upload: status {status}: {body}"));
    eprintln!("upload (1-D): {:.2} ms", upload.as_secs_f64() * 1e3);

    // 3. Warm-index latency: cache bypassed, index resident.  The first
    // request warms the sorted line; the repeats are the measurement.
    let warm_body = format!(
        r#"{{"dataset":"loadgen1d","solver":"{CANONICAL_SOLVER}","shape":{{"interval":{CANONICAL_LENGTH}}},"cache":false}}"#
    );
    let (_, status, body) = timed(&mut client, "/query", &warm_body);
    check_answer(&mut violations, status, &body, "warm-up query");
    let builds_before = dataset_index_builds(&mut client, "loadgen1d");
    let mut warm_samples = Vec::new();
    let mut warm_value = f64::NAN;
    for i in 0..30 {
        let (elapsed, status, body) = timed(&mut client, "/query", &warm_body);
        check_answer(&mut violations, status, &body, &format!("warm query {i}"));
        warm_samples.push(elapsed);
        if let Ok(parsed) = Json::parse(&body) {
            warm_value = parsed
                .get("answer")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            violations.check(
                parsed.get("cached").and_then(Json::as_bool) == Some(false),
                format!("warm query {i} must bypass the cache: {body}"),
            );
        }
    }
    let builds_after = dataset_index_builds(&mut client, "loadgen1d");
    violations.check(
        builds_before == builds_after,
        format!(
            "resident index must be built exactly once: builds went {builds_before} → {builds_after}"
        ),
    );
    let warm = LatencySummary::from_durations(&warm_samples);

    // 4. Cache-hit latency: same query with caching on.
    let hit_body = format!(
        r#"{{"dataset":"loadgen1d","solver":"{CANONICAL_SOLVER}","shape":{{"interval":{CANONICAL_LENGTH}}}}}"#
    );
    let (_, status, body) = timed(&mut client, "/query", &hit_body); // populate
    check_answer(&mut violations, status, &body, "cache-populate query");
    let mut hit_samples = Vec::new();
    for i in 0..30 {
        let (elapsed, status, body) = timed(&mut client, "/query", &hit_body);
        check_answer(&mut violations, status, &body, &format!("cache-hit query {i}"));
        if let Ok(parsed) = Json::parse(&body) {
            violations.check(
                parsed.get("cached").and_then(Json::as_bool) == Some(true),
                format!("cache-hit query {i} must hit: {body}"),
            );
        }
        hit_samples.push(elapsed);
    }
    let hits = LatencySummary::from_durations(&hit_samples);

    // 5. Mixed open-loop workload with Zipfian reuse over a query pool.
    let pool = query_pool(config.pool);
    let weights = zipf_weights(pool.len());
    let zipf_total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBEEF);
    let mut mixed_samples = Vec::with_capacity(config.requests);
    let mixed_started = Instant::now();
    for i in 0..config.requests {
        let index = zipf_pick(&weights, zipf_total, &mut rng);
        let (elapsed, status, body) = timed(&mut client, "/query", &pool[index]);
        check_answer(&mut violations, status, &body, &format!("mixed request {i}"));
        mixed_samples.push(elapsed);
    }
    let mixed_wall = mixed_started.elapsed();
    let mixed = LatencySummary::from_durations(&mixed_samples);
    let qps = config.requests as f64 / mixed_wall.as_secs_f64();

    // 6. Pipelined keep-alive: the same Zipfian mix, issued `--pipeline-depth`
    // requests per coalesced write on one connection.  Gates: every burst's
    // responses arrive in request order (strictly increasing X-Request-Ids —
    // the loadgen is the only client), every answer is certified, and on a
    // full run the throughput clears [`PIPELINE_GATE_QPS`].
    let depth = config.pipeline_depth;
    let bursts = (config.requests / depth).max(8);
    let mut pipe_rng = StdRng::seed_from_u64(config.seed ^ 0xF1FE);
    let mut pipelined_requests = 0usize;
    let mut burst_samples = Vec::with_capacity(bursts);
    let pipelined_started = Instant::now();
    for burst in 0..bursts {
        let bodies: Vec<&str> = (0..depth)
            .map(|_| pool[zipf_pick(&weights, zipf_total, &mut pipe_rng)].as_str())
            .collect();
        let requests: Vec<PipelineRequest> =
            bodies.iter().map(|body| PipelineRequest::post("/query", body)).collect();
        let burst_started = Instant::now();
        let responses = client.pipeline(&requests).expect("pipelined I/O");
        burst_samples.push(burst_started.elapsed());
        pipelined_requests += responses.len();
        let mut last_id = 0u64;
        for (i, (status, headers, body)) in responses.iter().enumerate() {
            check_answer(
                &mut violations,
                *status,
                body,
                &format!("pipelined burst {burst} response {i}"),
            );
            let id = headers
                .iter()
                .find(|(name, _)| name == "x-request-id")
                .and_then(|(_, value)| value.strip_prefix("r-"))
                .and_then(|digits| digits.parse::<u64>().ok());
            match id {
                Some(id) if id > last_id => last_id = id,
                _ => violations.check(
                    false,
                    format!(
                        "pipelined burst {burst} response {i}: X-Request-Id {id:?} is not \
                         strictly increasing (responses out of order)"
                    ),
                ),
            }
        }
    }
    let pipelined_wall = pipelined_started.elapsed();
    let pipelined_qps = pipelined_requests as f64 / pipelined_wall.as_secs_f64();
    let burst_latency = LatencySummary::from_durations(&burst_samples);
    eprintln!(
        "pipelined: {pipelined_requests} requests at depth {depth} → {pipelined_qps:.0} q/s \
         ({:.1}× the sequential mix)",
        pipelined_qps / qps,
    );
    if !config.smoke {
        violations.check(
            pipelined_qps >= PIPELINE_GATE_QPS,
            format!(
                "pipelined throughput {pipelined_qps:.0} q/s is below the \
                 {PIPELINE_GATE_QPS:.0} q/s gate (10× the sequential baseline)"
            ),
        );
    }

    // 7. Server-side counters.
    let (status, stats_body) = client.get("/stats").expect("stats I/O");
    violations.check(status == 200, format!("/stats answered {status}"));
    let stats = Json::parse(&stats_body).expect("stats body parses");
    let cache = stats.get("cache").expect("stats carries cache counters");
    let cache_hits = cache.get("hits").and_then(Json::as_f64).unwrap_or(0.0);
    violations.check(cache_hits > 0.0, "the Zipfian workload must produce cache hits");
    check_metrics(&mut violations, &mut client, true);

    // 8. Verdicts and the baseline artifact.
    let speedup_warm = cold.as_secs_f64() / warm.p50.as_secs_f64();
    let speedup_hit = cold.as_secs_f64() / hits.p50.as_secs_f64();
    violations.check(
        (warm_value - cold_value).abs() < 1e-9,
        format!("warm answer {warm_value} must equal cold answer {cold_value} (exact solver)"),
    );
    violations.check(
        speedup_warm >= 5.0,
        format!("warm-index speedup {speedup_warm:.2}× below the 5× floor"),
    );
    violations.check(hits.p50 <= warm.p50, "cache hits must not be slower than warm-index queries");

    eprintln!(
        "warm-index p50 {:.1} µs ({speedup_warm:.1}× vs cold) | cache-hit p50 {:.1} µs \
         ({speedup_hit:.1}× vs cold) | mixed {:.0} q/s over {} requests",
        warm.p50.as_secs_f64() * 1e6,
        hits.p50.as_secs_f64() * 1e6,
        qps,
        config.requests,
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::str("serve")),
        (
            "config".into(),
            Json::Obj(vec![
                ("n_line".into(), Json::num(config.n as f64)),
                ("n_planar".into(), Json::num(planar_n as f64)),
                ("requests".into(), Json::num(config.requests as f64)),
                ("pool".into(), Json::num(config.pool as f64)),
                ("seed".into(), Json::num(config.seed as f64)),
                ("smoke".into(), Json::Bool(config.smoke)),
            ]),
        ),
        (
            "canonical_query".into(),
            Json::Obj(vec![
                ("solver".into(), Json::str(CANONICAL_SOLVER)),
                ("interval_length".into(), Json::num(CANONICAL_LENGTH)),
            ]),
        ),
        ("cold_one_shot_us".into(), Json::num(cold.as_secs_f64() * 1e6)),
        ("upload_us".into(), Json::num(upload.as_secs_f64() * 1e6)),
        ("warm_index".into(), latency_json(&warm)),
        ("cache_hit".into(), latency_json(&hits)),
        ("speedup_warm_vs_cold".into(), Json::num(speedup_warm)),
        ("speedup_cache_hit_vs_cold".into(), Json::num(speedup_hit)),
        (
            "mixed".into(),
            Json::Obj(vec![
                ("requests".into(), Json::num(config.requests as f64)),
                ("wall_us".into(), Json::num(mixed_wall.as_secs_f64() * 1e6)),
                ("qps".into(), Json::num(qps)),
                ("latency".into(), latency_json(&mixed)),
            ]),
        ),
        (
            "pipelined".into(),
            Json::Obj(vec![
                ("depth".into(), Json::num(depth as f64)),
                ("requests".into(), Json::num(pipelined_requests as f64)),
                ("wall_us".into(), Json::num(pipelined_wall.as_secs_f64() * 1e6)),
                ("qps".into(), Json::num(pipelined_qps)),
                ("speedup_vs_sequential".into(), Json::num(pipelined_qps / qps)),
                ("gate_qps".into(), Json::num(PIPELINE_GATE_QPS)),
                ("burst_latency".into(), latency_json(&burst_latency)),
            ]),
        ),
        ("server_cache".into(), cache.clone()),
        ("violations".into(), Json::num(violations.0.len() as f64)),
    ]);
    if let Some(path) = &config.out {
        std::fs::write(path, report.render() + "\n").expect("write the baseline file");
        eprintln!("wrote {path}");
    } else {
        println!("{}", report.render());
    }

    if violations.0.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} violation(s); failing", violations.0.len());
        ExitCode::FAILURE
    }
}

/// The update-mix phase: mutate resident datasets through the streaming
/// endpoints and gate on correctness, not speed —
///
/// * every answer must be 2xx and **certified**;
/// * after the client observed a mutation land at version `v`, a repeated
///   query must answer at version ≥ `v` with `"cached": false` the first
///   time (a `cached: true` replay of the pre-mutation answer, or a
///   version below `v`, is a **stale-version answer** and fails the run);
/// * `/stats` must show fine-grained cache invalidations.
fn run_update_mix(config: &Config, client: &mut Client) -> ExitCode {
    use mrs_bench::serve::line_update_record;

    let mut violations = Violations::default();
    let rounds = if config.smoke { 20 } else { 100 };
    let n = config.n.min(50_000);
    eprintln!("update-mix: {n} line points + {} planar points, {rounds} rounds...", n / 10);
    let line = line_csv(n, config.seed);
    let planar = planar_csv((n / 10).min(5_000), config.seed);
    let (_, status, body) = timed(client, "/datasets/loadgen1d?dim=1", &line);
    violations.check(status == 200, format!("1-D upload: status {status}: {body}"));
    let (_, status, body) = timed(client, "/datasets/loadgen", &planar);
    violations.check(status == 200, format!("planar upload: status {status}: {body}"));

    let query_body = format!(
        r#"{{"dataset":"loadgen1d","solver":"{CANONICAL_SOLVER}","shape":{{"interval":{CANONICAL_LENGTH}}}}}"#
    );
    let dynamic_body = format!(
        r#"{{"dataset":"loadgen1d","solver":"dynamic-ball","shape":{{"ball":{}}}}}"#,
        CANONICAL_LENGTH / 2.0
    );
    let mut post_update_samples = Vec::with_capacity(rounds);
    let mut update_samples = Vec::with_capacity(rounds);
    let mut inserted_coords: Vec<f64> = Vec::new();
    for round in 0..rounds {
        // Prime the cache with the canonical query, so the post-mutation
        // repeat can only be fresh if invalidation worked.
        let (_, status, body) = timed(client, "/query", &query_body);
        check_answer(&mut violations, status, &body, &format!("round {round} prime"));

        // Mutate: inserts on even rounds, deletes of previously inserted
        // records on odd rounds (when available).
        let (path, record) = if round % 2 == 0 || inserted_coords.is_empty() {
            let (x, w) = line_update_record(config.seed, round as u64);
            inserted_coords.push(x);
            ("/datasets/loadgen1d/insert", format!("{x},{w}\n"))
        } else {
            let x = inserted_coords.remove(0);
            ("/datasets/loadgen1d/delete", format!("{x}\n"))
        };
        let (elapsed, status, body) = timed(client, path, &record);
        violations.check(status == 200, format!("round {round} {path}: status {status}: {body}"));
        update_samples.push(elapsed);
        let mutated_version = Json::parse(&body)
            .ok()
            .and_then(|j| j.get("mutated").and_then(|m| m.get("version")).and_then(Json::as_f64))
            .unwrap_or(f64::NAN);
        violations.check(
            mutated_version.is_finite(),
            format!("round {round}: mutation response carries no version: {body}"),
        );

        // The post-update query: must recompute at (or after) the mutated
        // version — never replay the pre-mutation cache entry.
        let (elapsed, status, body) = timed(client, "/query", &query_body);
        check_answer(&mut violations, status, &body, &format!("round {round} post-update"));
        post_update_samples.push(elapsed);
        if let Ok(parsed) = Json::parse(&body) {
            violations.check(
                parsed.get("cached").and_then(Json::as_bool) == Some(false),
                format!("round {round}: stale cached answer replayed after a mutation: {body}"),
            );
            let answered_version = parsed
                .get("answer")
                .and_then(|a| a.get("version"))
                .and_then(Json::as_f64)
                .unwrap_or(f64::NAN);
            violations.check(
                answered_version >= mutated_version,
                format!(
                    "round {round}: stale-version answer v{answered_version} after mutation \
                     v{mutated_version}"
                ),
            );
        }

        // The incrementally maintained tracker answers too (uncached
        // solver path exercises the dynamic sampler end to end).
        let (_, status, body) = timed(client, "/query", &dynamic_body);
        check_answer(&mut violations, status, &body, &format!("round {round} dynamic"));
    }

    // A few planar mutations keep the 2-D path honest.
    for round in 0..5 {
        let body = format!("{},{},2\n", 3.0 + round as f64 * 0.1, 4.0);
        let (_, status, response) = timed(client, "/datasets/loadgen/insert", &body);
        violations.check(status == 200, format!("planar insert: status {status}: {response}"));
        let (_, status, response) = timed(
            client,
            "/query",
            r#"{"dataset":"loadgen","solver":"exact-rect-2d","shape":{"box":[2.0,2.0]}}"#,
        );
        check_answer(&mut violations, status, &response, "planar post-update query");
    }

    // Server-side counters: invalidations must be fine-grained and nonzero.
    let (status, stats_body) = client.get("/stats").expect("stats I/O");
    violations.check(status == 200, format!("/stats answered {status}"));
    let stats = Json::parse(&stats_body).expect("stats body parses");
    let cache = stats.get("cache").expect("stats carries cache counters");
    let invalidations = cache.get("invalidations").and_then(Json::as_f64).unwrap_or(-1.0);
    violations.check(
        invalidations > 0.0,
        format!("mutations must invalidate cached answers fine-grained, got {invalidations}"),
    );
    let dataset_version = stats
        .get("datasets")
        .and_then(Json::as_arr)
        .and_then(|ds| {
            ds.iter().find(|d| d.get("name").and_then(Json::as_str) == Some("loadgen1d"))
        })
        .and_then(|d| d.get("version"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    violations.check(
        dataset_version as usize >= rounds,
        format!("every mutation must bump the version, got v{dataset_version} after {rounds}"),
    );
    check_metrics(&mut violations, client, true);

    let updates = LatencySummary::from_durations(&update_samples);
    let post_update = LatencySummary::from_durations(&post_update_samples);
    eprintln!(
        "update-mix: {rounds} rounds | update p50 {:.1} µs | post-update query p50 {:.1} µs | \
         {invalidations} cache invalidations | dataset at v{dataset_version}",
        updates.p50.as_secs_f64() * 1e6,
        post_update.p50.as_secs_f64() * 1e6,
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::str("serve_update_mix")),
        (
            "config".into(),
            Json::Obj(vec![
                ("n_line".into(), Json::num(n as f64)),
                ("rounds".into(), Json::num(rounds as f64)),
                ("seed".into(), Json::num(config.seed as f64)),
                ("smoke".into(), Json::Bool(config.smoke)),
            ]),
        ),
        ("update".into(), latency_json(&updates)),
        ("post_update_query".into(), latency_json(&post_update)),
        ("cache_invalidations".into(), Json::num(invalidations)),
        ("dataset_version".into(), Json::num(dataset_version)),
        ("violations".into(), Json::num(violations.0.len() as f64)),
    ]);
    if let Some(path) = &config.out {
        std::fs::write(path, report.render() + "\n").expect("write the baseline file");
        eprintln!("wrote {path}");
    } else {
        println!("{}", report.render());
    }

    if violations.0.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} violation(s); failing", violations.0.len());
        ExitCode::FAILURE
    }
}

/// The deterministic fault-injection harness (`--chaos`): a seeded
/// sequence of hostile clients, each phase followed by proof the worker
/// pool recovered.  Phases, in order:
///
/// 1. malformed frames (binary junk, truncated request lines, bogus
///    `Content-Length`) — any response must be a well-formed 4xx/5xx;
/// 2. an oversized body announced with `Expect: 100-continue` — rejected
///    `413` before any body byte, never invited with `100 Continue`;
/// 3. slow-loris drips — partial headers trickled on several sockets,
///    then abandoned; the pool must not pin workers on them;
/// 4. mid-body disconnects — complete headers, a fraction of the
///    promised body, then a close;
/// 5. a connection flood past the bounded queue — the accept loop must
///    shed the overflow with well-formed `503` + `Retry-After` and keep
///    accepting afterwards;
/// 6. panic injection through the test-only `chaos-panic` solver — every
///    response a well-formed `500`, the `/stats` panic counter counts
///    them, and the pool keeps serving;
/// 7. an expired-deadline storm (`X-Deadline-Ms: 0`) — typed `504`
///    timeouts, counted, and **never cached** (the first clean repeat
///    must compute, the second must replay from cache).
///
/// Run-wide gates: zero worker deaths (the server answers a certified
/// query after every phase), zero uncertified answers, every observed
/// 5xx well-formed JSON, in-flight drains to zero, and the post-chaos
/// warm p50 stays within 1.5× of the pre-chaos baseline (+2 ms absolute
/// slack for CI jitter).
///
/// The server must be booted with `--chaos-solver` (phase 6 queries it)
/// and a `--queue-capacity` of at most 256 so phase 5 can overflow the
/// queue with a bounded flood.
fn run_chaos(config: &Config) -> ExitCode {
    use mrs_server::{RetryPolicy, RetryingClient};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    let mut violations = Violations::default();
    // The control-plane client retries sheds and reconnects after the
    // flood drops its parked connection — satellite proof the retry path
    // works against a real overloaded server.  `max_backoff` trims the
    // server-directed waits so the harness stays fast.
    let policy = RetryPolicy {
        base_backoff: Duration::from_millis(10),
        max_backoff: Duration::from_millis(200),
        seed: config.seed,
        ..RetryPolicy::default()
    };
    let mut client = RetryingClient::new(config.addr.as_str(), policy).expect("address resolves");

    // 0. Preconditions and counter baselines.
    let overload = overload_stats(&mut client, &mut violations);
    let queue_capacity = field(&overload, "queue_capacity");
    violations.check(
        queue_capacity > 0.0 && queue_capacity <= 256.0,
        format!(
            "the chaos run needs a small bounded queue (boot the server with \
             --queue-capacity <= 256), got {queue_capacity}"
        ),
    );
    let shed_before = field(&overload, "shed");
    let panics_before = field(&overload, "panics");
    let deadline_before = field(&overload, "deadline_exceeded");

    // 1. The dataset and the pre-chaos warm baseline.
    let n = config.n.min(50_000);
    eprintln!("chaos: uploading {n} line points...");
    let line = line_csv(n, config.seed);
    let (status, body) = client.post("/datasets/chaos1d?dim=1", &line).expect("upload I/O");
    violations.check(status == 200, format!("chaos upload: status {status}: {body}"));
    let warm_body = format!(
        r#"{{"dataset":"chaos1d","solver":"{CANONICAL_SOLVER}","shape":{{"interval":{CANONICAL_LENGTH}}},"cache":false}}"#
    );
    let reps = if config.smoke { 15 } else { 40 };
    let before = warm_p50(&mut client, &warm_body, reps, &mut violations, "baseline");
    eprintln!("chaos: pre-chaos warm p50 {:.1} µs", before.as_secs_f64() * 1e6);

    // 2. Malformed frames: a response, if any, must be a well-formed
    // error; silently dropping the connection is also acceptable.
    let malformed: &[&[u8]] = &[
        b"\x00\x01\x02\x03\x04garbage\r\n\r\n",
        b"GET\r\n\r\n",
        b"POST /query HTTP/1.1\r\nContent-Length: nonsense\r\n\r\n",
        b"FETCH /query HTTP/9.9\r\n\r\n",
    ];
    for (i, payload) in malformed.iter().enumerate() {
        if let Some(text) = raw_exchange(&config.addr, payload, Duration::from_millis(500)) {
            check_error_frame(&mut violations, &text, &format!("malformed frame {i}"));
        }
    }
    assert_alive(&mut client, &warm_body, &mut violations, "after malformed frames");

    // 3. Oversized body with `Expect: 100-continue`.
    let oversized: &[u8] =
        b"POST /datasets/x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 999999999999\r\n\r\n";
    match raw_exchange(&config.addr, oversized, Duration::from_secs(2)) {
        None => violations.check(false, "oversized body: the server sent no response"),
        Some(text) => {
            violations.check(text.starts_with("HTTP/1.1 413"), format!("oversized body: {text:?}"));
            violations.check(
                !text.contains("100 Continue"),
                "oversized body: an interim 100 Continue invited the upload",
            );
            check_error_frame(&mut violations, &text, "oversized body");
        }
    }
    assert_alive(&mut client, &warm_body, &mut violations, "after the oversized body");

    // 4. Slow-loris: drip partial headers on several sockets, then vanish.
    let loris = if config.smoke { 4 } else { 8 };
    let mut drips = Vec::new();
    for _ in 0..loris {
        if let Ok(mut stream) = TcpStream::connect(config.addr.as_str()) {
            let _ = stream.write_all(b"POST /query HTTP/1.1\r\nContent-Le");
            drips.push(stream);
        }
    }
    std::thread::sleep(Duration::from_millis(300));
    for mut stream in drips {
        let _ = stream.write_all(b"ngth: 10\r\n"); // headers never complete
    }
    assert_alive(&mut client, &warm_body, &mut violations, "after slow-loris");

    // 5. Mid-body disconnects: complete headers, a sliver of body, gone.
    for _ in 0..4 {
        if let Ok(mut stream) = TcpStream::connect(config.addr.as_str()) {
            let _ =
                stream.write_all(b"POST /query HTTP/1.1\r\nContent-Length: 1000\r\n\r\n{\"datas");
        }
    }
    std::thread::sleep(Duration::from_millis(200));
    assert_alive(&mut client, &warm_body, &mut violations, "after mid-body disconnects");

    // 6. Connection flood past the bounded queue.
    let flood = (queue_capacity as usize + 32).min(512);
    eprintln!("chaos: flooding {flood} connections against a {queue_capacity}-slot queue...");
    let mut sockets = Vec::with_capacity(flood);
    for _ in 0..flood {
        match TcpStream::connect(config.addr.as_str()) {
            Ok(stream) => sockets.push(stream),
            Err(_) => break, // backlog exhausted: the flood already peaked
        }
    }
    // Scan from the most recent connections (the likeliest to be shed)
    // until three sheds prove the 503s are well-formed.
    let mut shed_seen = 0usize;
    for stream in sockets.iter_mut().rev().take(32) {
        if shed_seen >= 3 {
            break;
        }
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        let mut text = String::new();
        let mut buf = [0u8; 2048];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(k) => text.push_str(&String::from_utf8_lossy(&buf[..k])),
            }
        }
        if !text.is_empty() && check_error_frame(&mut violations, &text, "flood shed") == Some(503)
        {
            shed_seen += 1;
        }
    }
    drop(sockets);
    violations.check(
        shed_seen >= 1,
        format!("a {flood}-connection flood past a {queue_capacity}-slot queue shed nothing"),
    );
    std::thread::sleep(Duration::from_millis(300)); // workers drain the dropped flood
    let overload_mid = overload_stats(&mut client, &mut violations);
    violations.check(
        field(&overload_mid, "shed") > shed_before,
        "the flood must increment the /stats shed counter",
    );
    assert_alive(&mut client, &warm_body, &mut violations, "after the connection flood");

    // 7. Panic injection: the test-only solver fires inside a worker.
    let panic_shots = if config.smoke { 3 } else { 5 };
    let chaos_query = r#"{"dataset":"chaos1d","solver":"chaos-panic","shape":{"ball":1.0}}"#;
    for i in 0..panic_shots {
        let (status, body) = client.post("/query", chaos_query).expect("chaos query I/O");
        violations.check(
            status == 500,
            format!(
                "chaos-panic shot {i}: status {status} (boot the server with --chaos-solver): \
                 {body}"
            ),
        );
        violations.check(
            Json::parse(&body).ok().is_some_and(|j| j.get("error").is_some()),
            format!("chaos-panic shot {i}: 500 body is not a JSON error: {body}"),
        );
    }
    assert_alive(&mut client, &warm_body, &mut violations, "after panic injection");

    // 8. Expired-deadline storm, over a plain client that can set headers.
    let deadline_shots = if config.smoke { 3 } else { 5 };
    let deadline_body = format!(
        r#"{{"dataset":"chaos1d","solver":"{CANONICAL_SOLVER}","shape":{{"interval":{}}}}}"#,
        CANONICAL_LENGTH * 2.0
    );
    let mut plain = Client::connect(config.addr.as_str()).expect("connect for the deadline storm");
    for i in 0..deadline_shots {
        let (status, _, body) = plain
            .request_with("POST", "/query", &[("X-Deadline-Ms", "0")], &deadline_body)
            .expect("deadline query I/O");
        violations.check(status == 504, format!("deadline shot {i}: status {status}: {body}"));
        violations.check(
            body.contains("exceeded its deadline"),
            format!("deadline shot {i}: not the typed timeout: {body}"),
        );
    }
    let cached =
        |body: &str| Json::parse(body).ok().and_then(|j| j.get("cached").and_then(Json::as_bool));
    let (status, body) = plain.post("/query", &deadline_body).expect("deadline I/O");
    check_answer(&mut violations, status, &body, "post-deadline compute");
    violations.check(
        cached(&body) == Some(false),
        format!("a deadline-expired query left a cache entry behind: {body}"),
    );
    let (status, body) = plain.post("/query", &deadline_body).expect("deadline I/O");
    check_answer(&mut violations, status, &body, "post-deadline replay");
    violations.check(
        cached(&body) == Some(true),
        format!("the clean compute must be cached on replay: {body}"),
    );

    // 9. Recovery: latency, counters, exposition.
    let after = warm_p50(&mut client, &warm_body, reps, &mut violations, "recovery");
    let bound = before.mul_f64(1.5) + Duration::from_millis(2);
    violations.check(
        after <= bound,
        format!(
            "post-chaos warm p50 {:.1} µs exceeds 1.5× the {:.1} µs baseline",
            after.as_secs_f64() * 1e6,
            before.as_secs_f64() * 1e6
        ),
    );
    let overload_end = overload_stats(&mut client, &mut violations);
    violations.check(
        field(&overload_end, "inflight") == 0.0,
        format!("in-flight must drain to zero, got {}", field(&overload_end, "inflight")),
    );
    violations.check(
        field(&overload_end, "panics") >= panics_before + panic_shots as f64,
        format!(
            "panics counter {} must cover the {panic_shots} injected panics",
            field(&overload_end, "panics")
        ),
    );
    violations.check(
        field(&overload_end, "deadline_exceeded") >= deadline_before + deadline_shots as f64,
        format!(
            "deadline_exceeded counter {} must cover the {deadline_shots} expired queries",
            field(&overload_end, "deadline_exceeded")
        ),
    );
    check_metrics(&mut violations, &mut plain, true);

    let counters = client.counters();
    eprintln!(
        "chaos: recovered warm p50 {:.1} µs (baseline {:.1} µs) | {} sheds | {} panics | \
         {} deadline timeouts | client retries {} ({} honored Retry-After)",
        after.as_secs_f64() * 1e6,
        before.as_secs_f64() * 1e6,
        field(&overload_end, "shed") - shed_before,
        field(&overload_end, "panics") - panics_before,
        field(&overload_end, "deadline_exceeded") - deadline_before,
        counters.retries,
        counters.retry_after_honored,
    );

    let report = Json::Obj(vec![
        ("bench".into(), Json::str("serve_chaos")),
        (
            "config".into(),
            Json::Obj(vec![
                ("n_line".into(), Json::num(n as f64)),
                ("seed".into(), Json::num(config.seed as f64)),
                ("smoke".into(), Json::Bool(config.smoke)),
                ("queue_capacity".into(), Json::num(queue_capacity)),
                ("flood_connections".into(), Json::num(flood as f64)),
                ("panic_shots".into(), Json::num(panic_shots as f64)),
                ("deadline_shots".into(), Json::num(deadline_shots as f64)),
            ]),
        ),
        ("warm_p50_before_us".into(), Json::num(before.as_secs_f64() * 1e6)),
        ("warm_p50_after_us".into(), Json::num(after.as_secs_f64() * 1e6)),
        ("sheds".into(), Json::num(field(&overload_end, "shed") - shed_before)),
        ("panics".into(), Json::num(field(&overload_end, "panics") - panics_before)),
        (
            "deadline_exceeded".into(),
            Json::num(field(&overload_end, "deadline_exceeded") - deadline_before),
        ),
        (
            "client_retries".into(),
            Json::Obj(vec![
                ("attempts".into(), Json::num(counters.attempts as f64)),
                ("retries".into(), Json::num(counters.retries as f64)),
                ("retry_after_honored".into(), Json::num(counters.retry_after_honored as f64)),
                ("budget_exhausted".into(), Json::num(counters.budget_exhausted as f64)),
            ]),
        ),
        ("violations".into(), Json::num(violations.0.len() as f64)),
    ]);
    if let Some(path) = &config.out {
        std::fs::write(path, report.render() + "\n").expect("write the chaos baseline file");
        eprintln!("wrote {path}");
    } else {
        println!("{}", report.render());
    }

    if violations.0.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} violation(s); failing", violations.0.len());
        ExitCode::FAILURE
    }
}

/// The `/stats` `overload` object (empty on any parse failure, which the
/// per-field checks then surface as `-1` readings).
fn overload_stats(client: &mut mrs_server::RetryingClient, violations: &mut Violations) -> Json {
    let (status, body) = client.get("/stats").expect("stats I/O");
    violations.check(status == 200, format!("/stats answered {status}"));
    Json::parse(&body)
        .ok()
        .and_then(|stats| stats.get("overload").cloned())
        .unwrap_or(Json::Obj(Vec::new()))
}

/// A numeric field of a JSON object, `-1` when missing.
fn field(obj: &Json, key: &str) -> f64 {
    obj.get(key).and_then(Json::as_f64).unwrap_or(-1.0)
}

/// The warm (cache-bypassing) p50 over `reps` certified queries.
fn warm_p50(
    client: &mut mrs_server::RetryingClient,
    body: &str,
    reps: usize,
    violations: &mut Violations,
    context: &str,
) -> Duration {
    let mut samples = Vec::with_capacity(reps);
    for i in 0..reps {
        let started = Instant::now();
        let (status, text) = client.post("/query", body).expect("query I/O");
        samples.push(started.elapsed());
        check_answer(violations, status, &text, &format!("{context} warm query {i}"));
    }
    LatencySummary::from_durations(&samples).p50
}

/// Proof of life after a chaos phase: `/healthz` answers and a certified
/// query still computes — i.e. no worker died.
fn assert_alive(
    client: &mut mrs_server::RetryingClient,
    warm_body: &str,
    violations: &mut Violations,
    context: &str,
) {
    let (status, _) = client.get("/healthz").expect("healthz I/O");
    violations.check(status == 200, format!("{context}: /healthz answered {status}"));
    let (status, body) = client.post("/query", warm_body).expect("query I/O");
    check_answer(violations, status, &body, context);
}

/// Connects, writes the raw payload, and collects whatever the server
/// sends back until EOF or the timeout.  `None` when the server sent
/// nothing — silently dropping a hostile connection is acceptable.
fn raw_exchange(addr: &str, payload: &[u8], timeout: Duration) -> Option<String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    let _ = stream.write_all(payload);
    let _ = stream.flush();
    let mut text = String::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                text.push_str(&String::from_utf8_lossy(&buf[..k]));
                if text.len() > 65_536 {
                    break;
                }
            }
        }
    }
    (!text.is_empty()).then_some(text)
}

/// A raw error exchange must still be well-formed HTTP: an `HTTP/1.1`
/// 4xx/5xx status line, a parseable JSON `error` body, and — for sheds —
/// a `Retry-After` header.  Returns the parsed status code.
fn check_error_frame(violations: &mut Violations, text: &str, context: &str) -> Option<u16> {
    let status: Option<u16> = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|code| code.parse().ok());
    let Some(status) = status else {
        violations.check(false, format!("{context}: unparseable response: {text:?}"));
        return None;
    };
    violations
        .check((400..600).contains(&status), format!("{context}: hostile input answered {status}"));
    let body = text.split_once("\r\n\r\n").map(|(_, body)| body).unwrap_or("");
    violations.check(
        Json::parse(body).ok().is_some_and(|j| j.get("error").is_some()),
        format!("{context}: error body is not JSON with an `error` field: {body:?}"),
    );
    if status == 503 {
        violations.check(
            text.to_ascii_lowercase().contains("retry-after:"),
            format!("{context}: a 503 without Retry-After"),
        );
    }
    Some(status)
}

/// Fetches `GET /metrics` and checks the Prometheus exposition text is
/// well-formed: every `_bucket` series is monotone non-decreasing in `le`
/// with its `+Inf` bucket equal to the family's `_count`, and the
/// per-endpoint request histogram carries the complete label set (all
/// eight routed endpoints appear even when unvisited).  After traffic has
/// flowed, per-solver and per-dataset histogram series must exist too.
fn check_metrics(violations: &mut Violations, client: &mut Client, traffic: bool) {
    let (status, body) = client.get("/metrics").expect("metrics I/O");
    violations.check(status == 200, format!("/metrics answered {status}"));

    // Group bucket lines by (family, labels-without-le); collect counts.
    use std::collections::BTreeMap;
    let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, f64> = BTreeMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (series, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => {
                violations.check(false, format!("/metrics: malformed line: {line}"));
                continue;
            }
        };
        let value: f64 = match value.parse() {
            Ok(value) => value,
            Err(_) => {
                violations.check(false, format!("/metrics: non-numeric sample: {line}"));
                continue;
            }
        };
        if let Some((name, labels)) = series.split_once('{') {
            let labels = labels.trim_end_matches('}');
            if let Some(family) = name.strip_suffix("_bucket") {
                let mut le = f64::NAN;
                let rest: Vec<&str> = labels
                    .split(',')
                    .filter(|pair| match pair.strip_prefix("le=\"") {
                        Some(bound) => {
                            let bound = bound.trim_end_matches('"');
                            le = if bound == "+Inf" {
                                f64::INFINITY
                            } else {
                                bound.parse().unwrap_or(f64::NAN)
                            };
                            false
                        }
                        None => true,
                    })
                    .collect();
                violations.check(le.is_finite() || le == f64::INFINITY, format!("bad le: {line}"));
                buckets
                    .entry(format!("{family}{{{}}}", rest.join(",")))
                    .or_default()
                    .push((le, value));
            } else if let Some(family) = name.strip_suffix("_count") {
                counts.insert(format!("{family}{{{labels}}}"), value);
            }
        }
    }

    violations.check(!buckets.is_empty(), "/metrics must expose histogram bucket series");
    for (series, samples) in &buckets {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("le bounds are ordered"));
        violations.check(
            sorted.windows(2).all(|w| w[0].1 <= w[1].1),
            format!("/metrics: non-monotone bucket series {series}"),
        );
        let inf = sorted.last().expect("series has buckets");
        violations.check(
            inf.0 == f64::INFINITY,
            format!("/metrics: {series} is missing its +Inf bucket"),
        );
        match counts.get(series) {
            None => violations.check(false, format!("/metrics: {series} has no _count")),
            Some(count) => violations.check(
                inf.1 == *count,
                format!("/metrics: {series}: +Inf bucket {} != count {count}", inf.1),
            ),
        }
    }

    // Label-set completeness: the per-endpoint family always renders all
    // eight endpoints, visited or not.
    for endpoint in ["healthz", "solvers", "datasets", "mutate", "query", "batch", "stats", "other"]
    {
        violations.check(
            buckets.contains_key(&format!(
                "maxrs_request_duration_seconds{{endpoint=\"{endpoint}\"}}"
            )),
            format!("/metrics: endpoint label set incomplete: missing {endpoint}"),
        );
    }
    if traffic {
        violations.check(
            buckets.keys().any(|k| k.starts_with("maxrs_solver_duration_seconds{")),
            "/metrics: no per-solver histogram after traffic",
        );
        violations.check(
            buckets.keys().any(|k| k.starts_with("maxrs_dataset_query_duration_seconds{")),
            "/metrics: no per-dataset histogram after traffic",
        );
    }
}

/// The named dataset's `index_builds` counter as served by `/stats`.
fn dataset_index_builds(client: &mut Client, name: &str) -> f64 {
    let (status, body) = client.get("/stats").expect("stats I/O");
    assert_eq!(status, 200, "/stats must answer");
    let stats = Json::parse(&body).expect("stats body parses");
    stats
        .get("datasets")
        .and_then(Json::as_arr)
        .and_then(|datasets| {
            datasets.iter().find(|d| d.get("name").and_then(Json::as_str) == Some(name))
        })
        .and_then(|d| d.get("index_builds"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("dataset {name} is listed in /stats"))
}
