//! Emits the committed batch-execution baseline (`BENCH_batch.json`).
//!
//! Run with `cargo run --release -p mrs-bench --bin batch_baseline [out.json]`
//! from the repository root.  Measures the canonical `mrs_bench::batch`
//! workloads — the same ones `benches/bench_batch_executor.rs` runs — in
//! both modes (one-at-a-time loop vs shared-index executor) and writes one
//! JSON trajectory point, so later PRs have a recorded perf floor to beat.
//! Absolute times are machine-dependent; the speedups are the signal.

use std::time::Duration;

use mrs_bench::batch::{interval_lengths_request, mixed_planar_request, solve_one_at_a_time};
use mrs_bench::measure::time;
use mrs_core::engine::{BatchExecutor, BatchRequest, ExecutorConfig, Registry};

/// One measured workload row of the baseline file.
struct Row {
    name: &'static str,
    n: usize,
    m: usize,
    one_at_a_time: Duration,
    batch: Duration,
    threads: usize,
    index_builds: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.one_at_a_time.as_secs_f64() / self.batch.as_secs_f64()
    }
}

/// Best-of-`reps` timing of both modes on one request.  The timed executor
/// runs with certification off — the one-at-a-time loop does no
/// certification either, so the comparison measures execution alone; one
/// untimed certified pass checks correctness separately.
fn measure<const D: usize>(
    name: &'static str,
    n: usize,
    registry: &Registry,
    request: &BatchRequest<D>,
    reps: usize,
) -> Row {
    let timed = BatchExecutor::with_config(
        registry,
        ExecutorConfig { threads: None, certify: false, ..ExecutorConfig::default() },
    );
    let certifying = BatchExecutor::new(registry);
    let certified = certifying.execute(request);
    assert!(certified.all_ok(), "{name}: every batch query must succeed");
    assert_eq!(certified.stats.certify_failures, 0, "{name}: certification must hold");

    let mut one_at_a_time = Duration::MAX;
    let mut batch = Duration::MAX;
    let mut threads = 0;
    let mut index_builds = 0;
    for _ in 0..reps {
        let (ok, t_loop) = time(|| solve_one_at_a_time(registry, request));
        assert_eq!(ok, request.len(), "{name}: every query must succeed");
        let (report, t_batch) = time(|| timed.execute(request));
        assert!(report.all_ok(), "{name}: every batch query must succeed");
        one_at_a_time = one_at_a_time.min(t_loop);
        batch = batch.min(t_batch);
        threads = report.stats.threads;
        index_builds = report.stats.index_builds;
    }
    Row { name, n, m: request.len(), one_at_a_time, batch, threads, index_builds }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_batch.json".to_string());
    let mut registry = Registry::default();
    mrs_batched::engine::register(&mut registry);

    let rows = [
        measure("planar_mixed", 400, &registry, &mixed_planar_request(400, 60, 91), 3),
        measure("interval_1d", 4096, &registry, &interval_lengths_request(4096, 256, 23), 3),
    ];

    let mut json = String::from("{\n  \"schema\": \"maxrs-batch-bench-v1\",\n");
    json.push_str(
        "  \"note\": \"best-of-3 wall clock, certification off in both modes; absolute ms are machine-dependent, speedups are the signal\",\n",
    );
    json.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"m\": {}, \"one_at_a_time_ms\": {:.3}, \
             \"batch_ms\": {:.3}, \"speedup\": {:.2}, \"threads\": {}, \"index_builds\": {}}}{}\n",
            row.name,
            row.n,
            row.m,
            row.one_at_a_time.as_secs_f64() * 1e3,
            row.batch.as_secs_f64() * 1e3,
            row.speedup(),
            row.threads,
            row.index_builds,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("writing the baseline file must succeed");
    println!("{json}");
    println!("wrote {out_path}");
    // The planar speedup is machine-dependent (it comes from fan-out, which a
    // single-core box cannot deliver); the interval amortization is not — the
    // index-sharing solver must beat per-query rebuilding everywhere.
    let interval = rows.iter().find(|r| r.name == "interval_1d").expect("interval row exists");
    assert!(
        interval.speedup() > 1.0,
        "interval_1d: batch mode must beat the one-at-a-time loop (got {:.2}x)",
        interval.speedup()
    );
    println!("batch mode beats one-at-a-time on the amortization workload");
}
