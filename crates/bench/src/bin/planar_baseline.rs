//! Emits the committed planar hot-path baseline (`BENCH_planar.json`).
//!
//! Run with `cargo run --release -p mrs-bench --bin planar_baseline
//! [out.json]` from the repository root.  Two phases, both compared against
//! the figures the pre-flattening code committed:
//!
//! 1. **Batch** — the canonical `planar_mixed` workload of
//!    `BENCH_batch.json` (60 mixed exact disk / rectangle / colored-disk
//!    queries over 400 clustered points), one-at-a-time vs the shared-index
//!    executor, best of 3.  The pre-flattening baseline recorded
//!    7889.9 ms batch wall at a 1.06× speedup; the CSR grid,
//!    allocation-free kernels, and index-shared solvers must beat that wall
//!    clock by ≥ 3×.  Every exact answer is asserted byte-identical between
//!    the two modes.
//! 2. **Serve** — the mixed Zipf workload of `BENCH_serve.json` driven
//!    against an in-process `mrs_server` over real TCP (same datasets, same
//!    query pool as `serve_loadgen`).  The pre-flattening baseline recorded
//!    ~127 q/s; the flattened planar path must exceed 3× that.
//!
//! Absolute times are machine-dependent; both recorded baselines were taken
//! on the same class of single-core runner this bin targets, and the JSON
//! records the measured-to-recorded ratios so drift is visible.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use mrs_bench::batch::{mixed_planar_request, solve_one_at_a_time};
use mrs_bench::measure::time;
use mrs_bench::serve::{line_csv, planar_csv, query_pool, zipf_pick, zipf_weights};
use mrs_core::engine::{
    BatchAnswer, BatchExecutor, BatchQuery, BatchRequest, ColoredInstance, ExecutorConfig,
    Registry, WeightedInstance,
};
use mrs_server::{serve, Client, Json, ServerConfig};
use rand::prelude::*;

/// The batch wall clock and speedup the pre-flattening code committed in
/// `BENCH_batch.json` (`planar_mixed` row).
const RECORDED_BATCH_MS: f64 = 7889.939;
/// The mixed-Zipf throughput the pre-flattening code committed in
/// `BENCH_serve.json`.
const RECORDED_SERVE_QPS: f64 = 126.953;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_planar.json".to_string());
    let registry = mrs_batched::engine::full_registry(Default::default());

    // ---- Phase 1: the planar_mixed batch. -------------------------------
    let request = mixed_planar_request(400, 60, 91);

    // Correctness first: a certified run, plus a per-query reference dispatch
    // whose exact answers the batch must reproduce byte for byte.
    let certified = BatchExecutor::new(&registry).execute(&request);
    assert!(certified.all_ok(), "every batch query must succeed");
    assert_eq!(certified.stats.certify_failures, 0, "certification must hold");
    let identical = assert_exact_answers_identical(&registry, &request, &certified.answers);

    // Per-solver wall-time breakdown of the certified run.
    let mut breakdown: BTreeMap<&'static str, Duration> = BTreeMap::new();
    for answer in &certified.answers {
        match answer {
            BatchAnswer::Weighted(r) => *breakdown.entry(r.solver).or_default() += r.stats.elapsed,
            BatchAnswer::Colored(r) => *breakdown.entry(r.solver).or_default() += r.stats.elapsed,
            BatchAnswer::Failed(_) => {}
        }
    }

    // Timed runs, certification off in both modes (matching BENCH_batch.json).
    let timed = BatchExecutor::with_config(
        &registry,
        ExecutorConfig { threads: None, certify: false, ..ExecutorConfig::default() },
    );
    let mut one_at_a_time = Duration::MAX;
    let mut batch = Duration::MAX;
    let mut threads = 0;
    let mut index_builds = 0;
    for _ in 0..3 {
        let (ok, t_loop) = time(|| solve_one_at_a_time(&registry, &request));
        assert_eq!(ok, request.len(), "every one-at-a-time query must succeed");
        let (report, t_batch) = time(|| timed.execute(&request));
        assert!(report.all_ok(), "every batch query must succeed");
        one_at_a_time = one_at_a_time.min(t_loop);
        batch = batch.min(t_batch);
        threads = report.stats.threads;
        index_builds = report.stats.index_builds;
    }
    let batch_ms = batch.as_secs_f64() * 1e3;
    let speedup_vs_recorded = RECORDED_BATCH_MS / batch_ms;
    eprintln!(
        "planar_mixed: loop {:.0} ms | batch {batch_ms:.0} ms | {speedup_vs_recorded:.2}x vs the \
         recorded {RECORDED_BATCH_MS:.0} ms baseline",
        one_at_a_time.as_secs_f64() * 1e3,
    );
    for (solver, elapsed) in &breakdown {
        eprintln!("  {solver:<32} {:.1} ms", elapsed.as_secs_f64() * 1e3);
    }

    // ---- Phase 2: the mixed-Zipf serving workload. ----------------------
    let serve_stats = measure_serve_mixed();
    let serve_speedup = serve_stats.qps / RECORDED_SERVE_QPS;
    eprintln!(
        "serve mixed: {:.0} q/s over {} requests | {serve_speedup:.2}x vs the recorded \
         {RECORDED_SERVE_QPS:.0} q/s baseline",
        serve_stats.qps, serve_stats.requests,
    );

    // ---- The committed artifact. ----------------------------------------
    let breakdown_json: Vec<String> = breakdown
        .iter()
        .map(|(solver, elapsed)| format!("\"{solver}\": {:.3}", elapsed.as_secs_f64() * 1e3))
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"maxrs-planar-bench-v1\",\n  \"note\": \"flattened planar hot path: \
         CSR hash-grid + allocation-free kernels + index-shared planar solvers; best-of-3 wall \
         clock, certification off in timed modes; recorded_* figures are the committed \
         pre-flattening baselines (BENCH_batch.json / BENCH_serve.json, same runner class)\",\n  \
         \"planar_mixed\": {{\"n\": 400, \"m\": 60, \"one_at_a_time_ms\": {:.3}, \"batch_ms\": \
         {:.3}, \"recorded_batch_ms\": {RECORDED_BATCH_MS}, \"speedup_vs_recorded\": {:.2}, \
         \"speedup_vs_loop\": {:.2}, \"threads\": {threads}, \"index_builds\": {index_builds}, \
         \"candidates_examined\": {}, \"grid_cells_visited\": {}, \"exact_answers_identical\": \
         {identical}, \"breakdown_ms\": {{{}}}}},\n  \"serve_mixed\": {{\"requests\": {}, \
         \"pool\": {}, \"wall_us\": {:.0}, \"qps\": {:.2}, \"recorded_qps\": \
         {RECORDED_SERVE_QPS}, \"speedup_vs_recorded\": {:.2}, \"p50_us\": {:.1}, \"p95_us\": \
         {:.1}, \"violations\": {}}}\n}}\n",
        one_at_a_time.as_secs_f64() * 1e3,
        batch_ms,
        speedup_vs_recorded,
        one_at_a_time.as_secs_f64() / batch.as_secs_f64(),
        certified.stats.candidates_examined,
        certified.stats.grid_cells_visited,
        breakdown_json.join(", "),
        serve_stats.requests,
        serve_stats.pool,
        serve_stats.wall.as_secs_f64() * 1e6,
        serve_stats.qps,
        serve_speedup,
        serve_stats.p50.as_secs_f64() * 1e6,
        serve_stats.p95.as_secs_f64() * 1e6,
        serve_stats.violations,
    );
    std::fs::write(&out_path, &json).expect("writing the baseline file must succeed");
    println!("{json}");
    println!("wrote {out_path}");

    assert_eq!(serve_stats.violations, 0, "every served answer must be 2xx and certified");
    assert!(
        speedup_vs_recorded >= 3.0,
        "planar_mixed batch must beat the recorded baseline by 3x (got {speedup_vs_recorded:.2}x)"
    );
    assert!(
        serve_speedup >= 3.0,
        "serve mixed throughput must beat the recorded baseline by 3x (got {serve_speedup:.2}x)"
    );
    println!("flattened planar hot path beats both recorded baselines by >= 3x");
}

/// Dispatches every query of the request individually (fresh instances, the
/// naive path) and asserts the batch's exact answers equal the individual
/// answers byte for byte.  Returns `true` (or panics), so the JSON can quote
/// the verdict.
fn assert_exact_answers_identical(
    registry: &Registry,
    request: &BatchRequest<2>,
    batch_answers: &[BatchAnswer<2>],
) -> bool {
    for (query, batch_answer) in request.queries().iter().zip(batch_answers) {
        match query {
            BatchQuery::Weighted { solver, shape } => {
                let reference = registry
                    .weighted::<2>(solver)
                    .expect("workload names a registered solver")
                    .solve(&WeightedInstance::from_shared(request.shared_points(), *shape))
                    .expect("reference dispatch succeeds");
                let got = batch_answer.weighted().expect("batch answered the weighted query");
                if reference.guarantee.is_exact() {
                    assert_eq!(
                        reference.placement.value.to_bits(),
                        got.placement.value.to_bits(),
                        "{solver}: batch value must be byte-identical"
                    );
                    assert_eq!(
                        reference.placement.center, got.placement.center,
                        "{solver}: batch center must be byte-identical"
                    );
                }
            }
            BatchQuery::Colored { solver, shape } => {
                let reference = registry
                    .colored::<2>(solver)
                    .expect("workload names a registered solver")
                    .solve(&ColoredInstance::from_shared(request.shared_sites(), *shape))
                    .expect("reference dispatch succeeds");
                let got = batch_answer.colored().expect("batch answered the colored query");
                if reference.guarantee.is_exact() {
                    assert_eq!(
                        reference.placement.distinct, got.placement.distinct,
                        "{solver}: batch distinct-count must match"
                    );
                    assert_eq!(
                        reference.placement.center, got.placement.center,
                        "{solver}: batch center must be byte-identical"
                    );
                }
            }
        }
    }
    true
}

struct ServeMixedStats {
    requests: usize,
    pool: usize,
    wall: Duration,
    qps: f64,
    p50: Duration,
    p95: Duration,
    violations: usize,
}

/// Boots an in-process `mrs_server`, uploads the canonical loadgen datasets,
/// and drives the same mixed Zipf pool `serve_loadgen` fires, counting any
/// non-2xx or uncertified answer as a violation.
fn measure_serve_mixed() -> ServeMixedStats {
    const N_LINE: usize = 400_000;
    const REQUESTS: usize = 2_000;
    const POOL: usize = 64;
    const SEED: u64 = 2025;

    let server =
        serve(ServerConfig { addr: "127.0.0.1:0".into(), seed: Some(SEED), ..Default::default() })
            .expect("server binds an ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect to the server");

    eprintln!("generating {} line points + 10000 planar points...", N_LINE);
    let (status, body) =
        client.post("/datasets/loadgen1d?dim=1", &line_csv(N_LINE, SEED)).expect("upload I/O");
    assert_eq!(status, 200, "1-D upload: {body}");
    let (status, body) =
        client.post("/datasets/loadgen", &planar_csv(10_000, SEED)).expect("upload I/O");
    assert_eq!(status, 200, "planar upload: {body}");

    let pool = query_pool(POOL);
    let weights = zipf_weights(pool.len());
    let total: f64 = weights.iter().sum();
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xBEEF);
    let mut violations = 0usize;
    let mut samples = Vec::with_capacity(REQUESTS);
    let started = Instant::now();
    for _ in 0..REQUESTS {
        let index = zipf_pick(&weights, total, &mut rng);
        let request_started = Instant::now();
        let (status, body) = client.post("/query", &pool[index]).expect("request I/O");
        samples.push(request_started.elapsed());
        if !(200..300).contains(&status) {
            violations += 1;
            continue;
        }
        let certified = Json::parse(&body)
            .ok()
            .and_then(|parsed| {
                parsed.get("answer").and_then(|a| a.get("certified")).and_then(Json::as_bool)
            })
            .unwrap_or(false);
        if !certified {
            violations += 1;
        }
    }
    let wall = started.elapsed();
    server.shutdown();

    let summary = mrs_core::engine::LatencySummary::from_durations(&samples);
    ServeMixedStats {
        requests: REQUESTS,
        pool: POOL,
        wall,
        qps: REQUESTS as f64 / wall.as_secs_f64(),
        p50: summary.p50,
        p95: summary.p95,
        violations,
    }
}
