//! Spherical-cap surface areas, used to validate the volume argument of
//! Lemma 3.2: if the boundary of a unit ball passes within distance `ε²` of
//! the center of a ball `C` of radius `ε`, then the unit ball covers at least
//! a `1/2 − Θ(ε)` fraction of `∂C`'s surface measure.

use crate::ball::Ball;
use crate::point::Point;
use crate::sphere::sample_unit_sphere;
use rand::Rng;

/// The incomplete integral `G_d(x) = ∫_0^x (1 - t²)^{(d-1)/2} dt` from the
/// hyperspherical-cap area formula (\[Chu86\]); evaluated with composite
/// Simpson quadrature.
pub fn g_integral(d: usize, x: f64) -> f64 {
    let x = x.clamp(0.0, 1.0);
    if x == 0.0 {
        return 0.0;
    }
    // Substitute t = sin(u): the integral becomes ∫_0^{arcsin x} cos(u)^d du,
    // whose integrand is smooth even for d = 0 (where the original form has an
    // inverse-square-root singularity at t = 1).
    let upper = x.asin();
    let f = |u: f64| u.cos().powi(d as i32);
    let panels = 4096;
    let h = upper / panels as f64;
    let mut acc = f(0.0) + f(upper);
    for i in 1..panels {
        let u = i as f64 * h;
        acc += if i % 2 == 0 { 2.0 * f(u) } else { 4.0 * f(u) };
    }
    acc * h / 3.0
}

/// Fraction of the surface measure of the unit sphere `S^{d-1} ⊂ R^d` lying in
/// the cap `{x : x_d ≥ q}` for `q ∈ [-1, 1]`.
///
/// For `d = 2` this is `arccos(q)/π`; for `d = 3` it is `(1 - q)/2`; in general
/// it follows the estimate of \[Chu86\]/\[Wik\] used in the proof of Lemma 3.2:
/// `1/2 − G_{d-2}(q) / (2 G_{d-2}(1))` for `q ≥ 0` (and symmetric for `q < 0`).
pub fn cap_fraction(d: usize, q: f64) -> f64 {
    assert!(d >= 2, "cap_fraction requires dimension at least 2");
    let q = q.clamp(-1.0, 1.0);
    if q < 0.0 {
        return 1.0 - cap_fraction(d, -q);
    }
    0.5 - g_integral(d - 2, q) / (2.0 * g_integral(d - 2, 1.0))
}

/// The threshold height `b` of Lemma 3.2: for a unit ball whose boundary
/// passes through a point at distance `ε²` from the center of a radius-`ε`
/// ball `C` (tangency configuration of Figure 2), the covered part of `∂C` is
/// the cap `{x ∈ ∂C : x_d ≥ b}` with `b = (3ε² + ε⁴) / (2 + 2ε²)`.
pub fn lemma32_cap_height(eps: f64) -> f64 {
    (3.0 * eps * eps + eps.powi(4)) / (2.0 + 2.0 * eps * eps)
}

/// The exact fraction of `∂C`'s surface measure covered by the unit ball in
/// the configuration of Lemma 3.2, as a function of the dimension and `ε`.
/// Lemma 3.2 asserts this is at least `1/2 − Θ(ε)`.
pub fn lemma32_covered_fraction(d: usize, eps: f64) -> f64 {
    let b = lemma32_cap_height(eps);
    cap_fraction(d, b / eps)
}

/// Monte-Carlo estimate of the fraction of `∂C` covered by `cover`, using
/// `samples` uniform points on `∂C`.  Used to cross-check the closed form and
/// by the E9 experiment.
pub fn monte_carlo_covered_fraction<const D: usize, R: Rng + ?Sized>(
    c: &Ball<D>,
    cover: &Ball<D>,
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0);
    let mut hit = 0usize;
    for _ in 0..samples {
        let dir = sample_unit_sphere::<D, R>(rng);
        let p = c.center.add_point(&dir.scale(c.radius));
        if cover.contains(&p) {
            hit += 1;
        }
    }
    hit as f64 / samples as f64
}

/// Builds the exact geometric configuration of Lemma 3.2 / Figure 2(a) in
/// `R^D`: returns `(C, B)` where `C` is the radius-`ε` ball at the origin and
/// `B` is the unit ball centered at `(0, …, 0, 1 + ε²)`, whose boundary passes
/// through the point at distance `ε²` below its center line.
pub fn lemma32_configuration<const D: usize>(eps: f64) -> (Ball<D>, Ball<D>) {
    let c = Ball::new(Point::origin(), eps);
    let mut b_center = Point::<D>::origin();
    b_center[D - 1] = 1.0 + eps * eps;
    let b = Ball::unit(b_center);
    (c, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn g_integral_known_values() {
        // G_0(x) = arcsin(x); G_1(x) = x; G_2(x) = (x sqrt(1-x²) + arcsin x)/2.
        assert!((g_integral(0, 1.0) - PI / 2.0).abs() < 1e-6);
        assert!((g_integral(0, 0.5) - 0.5f64.asin()).abs() < 1e-6);
        assert!((g_integral(1, 0.7) - 0.7).abs() < 1e-9);
        let x: f64 = 0.3;
        let expected = (x * (1.0 - x * x).sqrt() + x.asin()) / 2.0;
        assert!((g_integral(2, x) - expected).abs() < 1e-8);
    }

    #[test]
    fn cap_fraction_closed_forms() {
        for q in [0.0, 0.1, 0.4, 0.9] {
            let circle = cap_fraction(2, q);
            assert!((circle - q.acos() / PI).abs() < 1e-6, "d=2 q={q}");
            let sphere = cap_fraction(3, q);
            assert!((sphere - (1.0 - q) / 2.0).abs() < 1e-6, "d=3 q={q}");
        }
        // Hemisphere and degenerate caps.
        assert!((cap_fraction(5, 0.0) - 0.5).abs() < 1e-9);
        assert!(cap_fraction(4, 1.0).abs() < 1e-9);
        assert!((cap_fraction(4, -1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lemma32_height_bounds() {
        // The paper notes ε² ≤ b ≤ 2ε² for all ε ∈ (0,1).
        for eps in [0.05, 0.1, 0.25, 0.5, 0.9] {
            let b = lemma32_cap_height(eps);
            assert!(b >= eps * eps - 1e-12, "eps={eps} b={b}");
            assert!(b <= 2.0 * eps * eps + 1e-12, "eps={eps} b={b}");
        }
    }

    #[test]
    fn lemma32_fraction_is_at_least_half_minus_theta_eps() {
        // Lemma 3.2: covered fraction ≥ 1/2 − Θ(ε).  With the explicit d=2
        // bound from the paper (1/π · arccos(2ε) ≥ 1/2 − 2ε) a factor of 2.5
        // comfortably covers every dimension we exercise.
        for d in 2..=6usize {
            for eps in [0.02, 0.05, 0.1, 0.2, 0.3] {
                let frac = lemma32_covered_fraction(d, eps);
                assert!(frac >= 0.5 - 2.5 * eps, "d={d} eps={eps} fraction={frac}");
                assert!(frac <= 0.5 + 1e-9, "cover cannot exceed half: d={d} eps={eps}");
            }
        }
    }

    #[test]
    fn closed_form_matches_monte_carlo_2d() {
        let mut rng = StdRng::seed_from_u64(9);
        let eps = 0.2;
        let (c, b) = lemma32_configuration::<2>(eps);
        let mc = monte_carlo_covered_fraction(&c, &b, 40_000, &mut rng);
        let exact = lemma32_covered_fraction(2, eps);
        assert!((mc - exact).abs() < 0.02, "mc={mc} exact={exact}");
    }

    #[test]
    fn closed_form_matches_monte_carlo_4d() {
        let mut rng = StdRng::seed_from_u64(10);
        let eps = 0.25;
        let (c, b) = lemma32_configuration::<4>(eps);
        let mc = monte_carlo_covered_fraction(&c, &b, 40_000, &mut rng);
        let exact = lemma32_covered_fraction(4, eps);
        assert!((mc - exact).abs() < 0.02, "mc={mc} exact={exact}");
    }
}
