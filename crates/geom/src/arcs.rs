//! Angular-interval arithmetic on circle boundaries.
//!
//! Section 4 of the paper works with the boundaries `∂U_c` of per-color unions
//! of unit disks; those boundaries are collections of circular arcs.  This
//! module provides the interval bookkeeping needed to extract them: which
//! angular portion of one circle is covered by another disk, unions of covered
//! portions, and complements (the *exposed* arcs).

use crate::ball::Ball;

/// Full turn, `2π`.
pub const TAU: f64 = std::f64::consts::TAU;

/// Normalizes an angle to `[0, 2π)`.
pub fn normalize_angle(theta: f64) -> f64 {
    let mut t = theta % TAU;
    if t < 0.0 {
        t += TAU;
    }
    if t >= TAU {
        t -= TAU;
    }
    t
}

/// An angular interval on a circle, traversed counter-clockwise from `start`
/// for `width` radians.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AngularInterval {
    /// Start angle, normalized to `[0, 2π)`.
    pub start: f64,
    /// Width in radians, in `(0, 2π]`.
    pub width: f64,
}

impl AngularInterval {
    /// Creates an interval from a start angle and width.
    ///
    /// # Panics
    /// Panics if `width` is not in `(0, 2π]`.
    pub fn new(start: f64, width: f64) -> Self {
        assert!(width > 0.0 && width <= TAU + 1e-9, "angular width {width} out of range");
        Self { start: normalize_angle(start), width: width.min(TAU) }
    }

    /// The full circle.
    pub fn full() -> Self {
        Self { start: 0.0, width: TAU }
    }

    /// Creates the interval centered at `center` with the given `half_width`.
    pub fn centered(center: f64, half_width: f64) -> Self {
        Self::new(center - half_width, 2.0 * half_width)
    }

    /// End angle (may exceed `2π`; compare with `start + width`).
    pub fn end(&self) -> f64 {
        self.start + self.width
    }

    /// Returns `true` if the interval contains the angle `theta` (closed).
    pub fn contains(&self, theta: f64) -> bool {
        let t = normalize_angle(theta);
        let rel = if t >= self.start { t - self.start } else { t + TAU - self.start };
        rel <= self.width + 1e-12
    }

    /// Splits the interval into at most two non-wrapping segments
    /// `(lo, hi) ⊆ [0, 2π]`.
    pub fn segments(&self) -> Vec<(f64, f64)> {
        if self.end() <= TAU + 1e-15 {
            vec![(self.start, self.end().min(TAU))]
        } else {
            vec![(self.start, TAU), (0.0, self.end() - TAU)]
        }
    }
}

/// Merges a list of non-wrapping segments on `[0, 2π]` into disjoint sorted
/// segments.
fn merge_segments(mut segments: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    segments.retain(|(lo, hi)| hi > lo);
    segments.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(segments.len());
    for (lo, hi) in segments {
        match merged.last_mut() {
            Some(last) if lo <= last.1 + 1e-12 => {
                last.1 = last.1.max(hi);
            }
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// The union of a collection of angular intervals, as disjoint non-wrapping
/// segments on `[0, 2π]`.
pub fn union_of_intervals(intervals: &[AngularInterval]) -> Vec<(f64, f64)> {
    let mut segments = Vec::with_capacity(intervals.len() * 2);
    for interval in intervals {
        segments.extend(interval.segments());
    }
    merge_segments(segments)
}

/// Total angular measure (in radians) of the union of the intervals.
pub fn covered_measure(intervals: &[AngularInterval]) -> f64 {
    union_of_intervals(intervals).iter().map(|(lo, hi)| hi - lo).sum()
}

/// The complement of the union of `intervals` on the circle, as non-wrapping
/// segments on `[0, 2π]`.  These are the *exposed* portions of a disk's
/// boundary once the covering intervals from its neighbours are removed.
pub fn complement_on_circle(intervals: &[AngularInterval]) -> Vec<(f64, f64)> {
    let covered = union_of_intervals(intervals);
    if covered.is_empty() {
        return vec![(0.0, TAU)];
    }
    let mut gaps = Vec::new();
    let mut cursor = 0.0;
    for (lo, hi) in &covered {
        if *lo > cursor + 1e-12 {
            gaps.push((cursor, *lo));
        }
        cursor = cursor.max(*hi);
    }
    if cursor < TAU - 1e-12 {
        gaps.push((cursor, TAU));
    }
    gaps
}

/// The angular interval of `∂a` that lies inside the closed disk `b`, or
/// `None` if the boundaries do not overlap that way.
///
/// Returns `Some(full circle)` when `b` contains `a` entirely, and `None` when
/// `b` is disjoint from `∂a` or nested strictly inside `a` (in which case it
/// covers no part of `a`'s boundary).
pub fn boundary_covered_by(a: &Ball<2>, b: &Ball<2>) -> Option<AngularInterval> {
    let d = a.center.dist(&b.center);
    if d >= a.radius + b.radius {
        // Disjoint or externally tangent: tangency covers a measure-zero set.
        return None;
    }
    if d + a.radius <= b.radius {
        // a (and hence its whole boundary) lies inside b.
        return Some(AngularInterval::full());
    }
    if d + b.radius <= a.radius {
        // b lies strictly inside a and does not reach a's boundary.
        return None;
    }
    // Law of cosines on the triangle (a.center, b.center, intersection point).
    let cos_half = (d * d + a.radius * a.radius - b.radius * b.radius) / (2.0 * d * a.radius);
    let half = cos_half.clamp(-1.0, 1.0).acos();
    if half <= 1e-12 {
        return None;
    }
    let center_angle = a.center.angle_to(&b.center);
    Some(AngularInterval::centered(center_angle, half))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use std::f64::consts::PI;

    #[test]
    fn normalize_angles() {
        assert!((normalize_angle(-PI / 2.0) - 3.0 * PI / 2.0).abs() < 1e-12);
        assert!((normalize_angle(5.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(normalize_angle(0.0), 0.0);
    }

    #[test]
    fn interval_containment_with_wrap() {
        let iv = AngularInterval::new(3.0 * PI / 2.0, PI); // wraps through 0
        assert!(iv.contains(0.0));
        assert!(iv.contains(7.0 * PI / 4.0));
        assert!(iv.contains(PI / 4.0));
        assert!(!iv.contains(PI));
    }

    #[test]
    fn union_and_complement() {
        let a = AngularInterval::new(0.0, PI / 2.0);
        let b = AngularInterval::new(PI / 4.0, PI / 2.0);
        let c = AngularInterval::new(PI, PI / 4.0);
        let union = union_of_intervals(&[a, b, c]);
        assert_eq!(union.len(), 2);
        assert!((covered_measure(&[a, b, c]) - (3.0 * PI / 4.0 + PI / 4.0)).abs() < 1e-9);

        let gaps = complement_on_circle(&[a, b, c]);
        let gap_measure: f64 = gaps.iter().map(|(lo, hi)| hi - lo).sum();
        assert!((gap_measure + covered_measure(&[a, b, c]) - TAU).abs() < 1e-9);
    }

    #[test]
    fn complement_of_nothing_is_full_circle() {
        assert_eq!(complement_on_circle(&[]), vec![(0.0, TAU)]);
    }

    #[test]
    fn complement_of_full_cover_is_empty() {
        let full = AngularInterval::full();
        assert!(complement_on_circle(&[full]).is_empty());
    }

    #[test]
    fn boundary_cover_of_equal_disks() {
        // Two unit disks at distance 1: the covered half-angle is acos(1/2) = π/3.
        let a = Ball::unit(Point2::xy(0.0, 0.0));
        let b = Ball::unit(Point2::xy(1.0, 0.0));
        let iv = boundary_covered_by(&a, &b).unwrap();
        assert!((iv.width - 2.0 * PI / 3.0).abs() < 1e-9);
        assert!(iv.contains(0.0));
        assert!(!iv.contains(PI));
    }

    #[test]
    fn boundary_cover_degenerate_cases() {
        let a = Ball::unit(Point2::xy(0.0, 0.0));
        let far = Ball::unit(Point2::xy(3.0, 0.0));
        assert!(boundary_covered_by(&a, &far).is_none());
        let containing = Ball::new(Point2::xy(0.1, 0.0), 3.0);
        assert_eq!(boundary_covered_by(&a, &containing), Some(AngularInterval::full()));
        let inner = Ball::new(Point2::xy(0.0, 0.0), 0.3);
        assert!(boundary_covered_by(&a, &inner).is_none());
    }

    #[test]
    fn covered_interval_matches_pointwise_test() {
        // Sample the boundary of `a` and verify that membership in disk `b`
        // agrees with the computed angular interval.
        let a = Ball::unit(Point2::xy(0.5, -0.25));
        let b = Ball::new(Point2::xy(1.4, 0.3), 0.8);
        let iv = boundary_covered_by(&a, &b).unwrap();
        for k in 0..720 {
            let theta = k as f64 * TAU / 720.0;
            let p = a.center.polar_offset(a.radius, theta);
            let inside = b.center.dist(&p) <= b.radius + 1e-9;
            let in_interval = iv.contains(theta);
            // Skip angles extremely close to the interval boundary.
            let boundary_dist = (b.center.dist(&p) - b.radius).abs();
            if boundary_dist > 1e-3 {
                assert_eq!(inside, in_interval, "theta={theta}");
            }
        }
    }
}
