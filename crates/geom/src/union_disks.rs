//! Boundaries of unions of disks.
//!
//! For each color class `c`, Section 4.2 of the paper replaces the disks of
//! that color by their union `U_c` and works with the circular arcs forming
//! `∂U_c`.  This module extracts those *exposed arcs* (the portions of each
//! disk's boundary not covered by any other disk of the same set) and offers
//! the intersection primitives between exposed arcs of different sets that the
//! exact algorithm (Lemma 4.2) and the intersection-counting bound
//! (Lemma 4.4) rely on.

use crate::arcs::{
    boundary_covered_by, complement_on_circle, normalize_angle, AngularInterval, TAU,
};
use crate::ball::Ball;
use crate::hashgrid::HashGrid;
use crate::point::Point2;

/// A maximal portion of one disk's boundary that lies on the boundary of the
/// union of its set.  Angles are a non-wrapping range `[start, end] ⊆ [0, 2π]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExposedArc {
    /// Index of the disk whose boundary carries the arc.
    pub disk: usize,
    /// Start angle in `[0, 2π]`.
    pub start: f64,
    /// End angle in `[start, 2π]`.
    pub end: f64,
}

impl ExposedArc {
    /// Angular width of the arc.
    pub fn width(&self) -> f64 {
        self.end - self.start
    }

    /// Returns `true` if the (normalized) angle lies on the arc.
    pub fn contains_angle(&self, theta: f64) -> bool {
        // Full-circle arcs contain everything.
        if self.width() >= TAU - 1e-12 {
            return true;
        }
        let t = normalize_angle(theta);
        t >= self.start - 1e-9 && t <= self.end + 1e-9
    }

    /// Midpoint angle of the arc.
    pub fn mid_angle(&self) -> f64 {
        (self.start + self.end) / 2.0
    }

    /// The point of the arc at angle `theta` on the carrying disk.
    pub fn point_at(&self, disks: &[Ball<2>], theta: f64) -> Point2 {
        let d = &disks[self.disk];
        d.center.polar_offset(d.radius, theta)
    }

    /// The midpoint of the arc.
    pub fn midpoint(&self, disks: &[Ball<2>]) -> Point2 {
        self.point_at(disks, self.mid_angle())
    }

    /// The two endpoints of the arc.
    pub fn endpoints(&self, disks: &[Ball<2>]) -> (Point2, Point2) {
        (self.point_at(disks, self.start), self.point_at(disks, self.end))
    }
}

/// Largest radius among the disks (0 for an empty set).
fn max_radius(disks: &[Ball<2>]) -> f64 {
    disks.iter().map(|d| d.radius).fold(0.0, f64::max)
}

/// Builds a neighbour index over the disk centers, with a cell side tuned for
/// "which disks overlap this one" queries.
pub fn disk_center_index(disks: &[Ball<2>]) -> HashGrid<2> {
    let side = (2.0 * max_radius(disks)).max(1e-6);
    let centers: Vec<Point2> = disks.iter().map(|d| d.center).collect();
    HashGrid::build(side, &centers)
}

/// Computes the exposed boundary arcs of the union of `disks`.
///
/// For every disk, the angular intervals covered by overlapping disks of the
/// same set are subtracted from the full circle; what remains is on `∂U`.
/// Disks that are entirely contained in another disk contribute no arcs.
/// The expected cost is near-linear for unit disks with bounded overlap (the
/// regime of Lemma 4.4); the worst case is quadratic, like the union
/// complexity itself.
pub fn union_boundary_arcs(disks: &[Ball<2>]) -> Vec<ExposedArc> {
    let index = disk_center_index(disks);
    union_boundary_arcs_with_index(disks, &index)
}

/// Same as [`union_boundary_arcs`] but reuses a prebuilt center index.
pub fn union_boundary_arcs_with_index(disks: &[Ball<2>], index: &HashGrid<2>) -> Vec<ExposedArc> {
    let max_r = max_radius(disks);
    let mut arcs = Vec::new();
    let mut covering: Vec<AngularInterval> = Vec::new();
    for (i, disk) in disks.iter().enumerate() {
        covering.clear();
        let mut swallowed = false;
        index.for_each_within(&disk.center, disk.radius + max_r, |j| {
            if j == i || swallowed {
                return;
            }
            match boundary_covered_by(disk, &disks[j]) {
                Some(iv) if iv.width >= TAU - 1e-12 => {
                    // Another disk contains this one entirely; but two
                    // coincident disks would both vanish, so keep the one with
                    // the smaller index in that exact-tie case.
                    let other = &disks[j];
                    let coincident = (other.radius - disk.radius).abs() < 1e-12
                        && other.center.dist(&disk.center) < 1e-12;
                    if !coincident || j < i {
                        swallowed = true;
                    }
                }
                Some(iv) => covering.push(iv),
                None => {}
            }
        });
        if swallowed {
            continue;
        }
        for (start, end) in complement_on_circle(&covering) {
            if end - start > 1e-12 {
                arcs.push(ExposedArc { disk: i, start, end });
            }
        }
    }
    arcs
}

/// Total length of the exposed arcs (the perimeter of the union).
pub fn union_perimeter(disks: &[Ball<2>], arcs: &[ExposedArc]) -> f64 {
    arcs.iter().map(|a| a.width() * disks[a.disk].radius).sum()
}

/// Intersection points between the exposed arcs of two *different* disk sets.
///
/// `disks_a`/`arcs_a` describe `∂U_A` and `disks_b`/`arcs_b` describe `∂U_B`;
/// the result is the point set `I(D_A, D_B)` of Lemma 4.4, whose size the
/// lemma bounds by `O(|D_A| + |D_B|)`.
pub fn exposed_arc_intersections(
    disks_a: &[Ball<2>],
    arcs_a: &[ExposedArc],
    disks_b: &[Ball<2>],
    arcs_b: &[ExposedArc],
) -> Vec<Point2> {
    // Group B's arcs per disk and index B's disk centers for locality.
    let mut arcs_by_disk_b: Vec<Vec<&ExposedArc>> = vec![Vec::new(); disks_b.len()];
    for arc in arcs_b {
        arcs_by_disk_b[arc.disk].push(arc);
    }
    let index_b = disk_center_index(disks_b);
    let max_rb = max_radius(disks_b);

    let mut out = Vec::new();
    for arc in arcs_a {
        let da = &disks_a[arc.disk];
        index_b.for_each_within(&da.center, da.radius + max_rb, |j| {
            if arcs_by_disk_b[j].is_empty() {
                return;
            }
            let db = &disks_b[j];
            let Some((p1, p2)) = da.boundary_intersections(db) else {
                return;
            };
            for p in [p1, p2] {
                let theta_a = da.center.angle_to(&p);
                let theta_b = db.center.angle_to(&p);
                if !arc.contains_angle(theta_a) {
                    continue;
                }
                if arcs_by_disk_b[j].iter().any(|ab| ab.contains_angle(theta_b)) {
                    out.push(p);
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn single_disk_is_fully_exposed() {
        let disks = vec![Ball::unit(Point2::xy(0.0, 0.0))];
        let arcs = union_boundary_arcs(&disks);
        assert_eq!(arcs.len(), 1);
        assert!((arcs[0].width() - TAU).abs() < 1e-9);
        assert!((union_perimeter(&disks, &arcs) - TAU).abs() < 1e-9);
    }

    #[test]
    fn two_overlapping_unit_disks() {
        let disks = vec![Ball::unit(Point2::xy(0.0, 0.0)), Ball::unit(Point2::xy(1.0, 0.0))];
        let arcs = union_boundary_arcs(&disks);
        // Each disk loses a 2π/3 wedge (acos(1/2) half-angle) to the other.
        let total = union_perimeter(&disks, &arcs);
        let expected = 2.0 * (TAU - 2.0 * PI / 3.0);
        assert!((total - expected).abs() < 1e-9, "total={total} expected={expected}");
    }

    #[test]
    fn contained_disk_contributes_no_arcs() {
        let disks = vec![Ball::new(Point2::xy(0.0, 0.0), 2.0), Ball::unit(Point2::xy(0.2, 0.1))];
        let arcs = union_boundary_arcs(&disks);
        assert!(arcs.iter().all(|a| a.disk == 0));
        assert!((union_perimeter(&disks, &arcs) - 2.0 * TAU).abs() < 1e-9);
    }

    #[test]
    fn coincident_disks_keep_exactly_one_boundary() {
        let disks = vec![Ball::unit(Point2::xy(0.0, 0.0)), Ball::unit(Point2::xy(0.0, 0.0))];
        let arcs = union_boundary_arcs(&disks);
        let total = union_perimeter(&disks, &arcs);
        assert!(
            (total - TAU).abs() < 1e-9,
            "coincident disks should expose one circle, got {total}"
        );
    }

    #[test]
    fn exposed_points_are_on_union_boundary() {
        // Every sampled point of an exposed arc must not be strictly inside any
        // other disk of the same set.
        let mut rng = StdRng::seed_from_u64(21);
        let disks: Vec<Ball<2>> = (0..40)
            .map(|_| Ball::unit(Point2::xy(rng.gen_range(0.0..6.0), rng.gen_range(0.0..6.0))))
            .collect();
        let arcs = union_boundary_arcs(&disks);
        for arc in &arcs {
            for t in [0.1, 0.5, 0.9] {
                let theta = arc.start + t * arc.width();
                let p = arc.point_at(&disks, theta);
                for (j, d) in disks.iter().enumerate() {
                    if j == arc.disk {
                        continue;
                    }
                    assert!(
                        d.center.dist(&p) >= d.radius - 1e-6,
                        "exposed point {p:?} strictly inside disk {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn intersections_between_two_sets() {
        // Red disk at origin, blue disk at distance 1: their boundaries cross
        // at exactly two points, both on the respective union boundaries.
        let red = vec![Ball::unit(Point2::xy(0.0, 0.0))];
        let blue = vec![Ball::unit(Point2::xy(1.0, 0.0))];
        let red_arcs = union_boundary_arcs(&red);
        let blue_arcs = union_boundary_arcs(&blue);
        let pts = exposed_arc_intersections(&red, &red_arcs, &blue, &blue_arcs);
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert!((red[0].center.dist(&p) - 1.0).abs() < 1e-9);
            assert!((blue[0].center.dist(&p) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lemma_4_4_linear_intersection_bound() {
        // |I(D_R, D_B)| = O(|D_R| + |D_B|): empirically the count stays below a
        // small constant times the total number of disks for random unit disks.
        let mut rng = StdRng::seed_from_u64(5);
        for &n in &[20usize, 60, 120] {
            let gen = |rng: &mut StdRng| -> Vec<Ball<2>> {
                (0..n)
                    .map(|_| {
                        Ball::unit(Point2::xy(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)))
                    })
                    .collect()
            };
            let red = gen(&mut rng);
            let blue = gen(&mut rng);
            let red_arcs = union_boundary_arcs(&red);
            let blue_arcs = union_boundary_arcs(&blue);
            let count = exposed_arc_intersections(&red, &red_arcs, &blue, &blue_arcs).len();
            assert!(
                count <= 8 * (red.len() + blue.len()),
                "n={n}: {count} intersections exceeds the linear bound"
            );
        }
    }
}
