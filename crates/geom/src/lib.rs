//! # mrs-geom — geometric substrate for the MaxRS suite
//!
//! This crate provides every geometric and data-structure primitive the
//! MaxRS algorithms of the bouquet paper (PODS 2025) are built on:
//!
//! * [`point`], [`ball`], [`aabb`], [`interval`] — points, Euclidean balls,
//!   axis-aligned boxes and real intervals in small constant dimension;
//! * [`grid`] — uniform grids and the shifted-grid family of Lemma 2.1;
//! * [`hashgrid`] — a hash-grid neighbour index for unit-disk locality queries;
//! * [`kernels`] — the multi-lane, branch-free distance/filter kernels the
//!   CSR hot loops run on (with the exact f32 sieve-then-verify mode);
//! * [`sphere`] — uniform sampling on sphere boundaries (Muller's method),
//!   the primitive of the paper's first technique;
//! * [`cap`] — hyperspherical-cap areas validating the volume argument of
//!   Lemma 3.2;
//! * [`arcs`], [`union_disks`] — angular-interval arithmetic and boundaries of
//!   unions of disks, the substrate of the paper's second technique;
//! * [`segtree`], [`fenwick`] — sweep-line data structures used by the exact
//!   baselines;
//! * [`transform`] — exact similarity maps (reflect / power-of-two scale /
//!   dyadic translate), the substrate of the metamorphic equivalence harness.
//!
//! Everything is implemented from scratch on top of `std` and `rand`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aabb;
pub mod arcs;
pub mod ball;
pub mod cap;
pub mod fenwick;
pub mod grid;
pub mod hashgrid;
pub mod interval;
pub mod kernels;
pub mod point;
pub mod segtree;
pub mod sphere;
pub mod transform;
pub mod union_disks;

pub use aabb::{bounding_box, Aabb, Rect};
pub use arcs::{AngularInterval, TAU};
pub use ball::{Ball, Disk};
pub use fenwick::Fenwick;
pub use grid::{CellCoord, Grid, ShiftedGrids};
pub use hashgrid::{GridOverlay, GridQueryStats, HashGrid, OverlayHit};
pub use interval::Interval;
pub use kernels::KernelMode;
pub use point::{ColoredSite, Point, Point2, WeightedPoint};
pub use segtree::MaxSegmentTree;
pub use transform::SimilarityMap;
pub use union_disks::{union_boundary_arcs, ExposedArc};
