//! Uniform grids and the shifted-grid collection of Lemma 2.1.
//!
//! The paper's first technique (Section 3) places a collection of shifted
//! uniform grids over `R^d` such that for *any* point `p` there is at least one
//! grid in which `p` lies within distance `Δ` of the center of its cell
//! (Lemma 2.1).  The grids here are purely combinatorial objects — cells are
//! addressed by integer coordinate vectors and never materialized unless a
//! ball actually intersects them.

use crate::aabb::Aabb;
use crate::ball::Ball;
use crate::point::Point;

/// Integer address of a grid cell.
pub type CellCoord<const D: usize> = [i64; D];

/// A uniform axis-aligned grid with cell side `side` and origin offset
/// `offset` (the paper's `G_s(c)`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid<const D: usize> {
    /// Cell side length `s`.
    pub side: f64,
    /// Offset `c` of the grid: hyperplanes lie at `c_i + k * s`.
    pub offset: Point<D>,
}

impl<const D: usize> Grid<D> {
    /// Creates a grid with the given cell side and offset.
    ///
    /// # Panics
    /// Panics if `side` is not strictly positive and finite.
    pub fn new(side: f64, offset: Point<D>) -> Self {
        assert!(side.is_finite() && side > 0.0, "grid side must be positive and finite");
        Self { side, offset }
    }

    /// A grid with zero offset.
    pub fn at_origin(side: f64) -> Self {
        Self::new(side, Point::origin())
    }

    /// The integer address of the cell containing `p`.
    ///
    /// Cells are half-open boxes `[c_i + k*s, c_i + (k+1)*s)` so every point
    /// belongs to exactly one cell.
    #[inline]
    pub fn cell_of(&self, p: &Point<D>) -> CellCoord<D> {
        let mut coord = [0i64; D];
        for i in 0..D {
            coord[i] = ((p[i] - self.offset[i]) / self.side).floor() as i64;
        }
        coord
    }

    /// The center of the cell with address `coord`.
    pub fn cell_center(&self, coord: &CellCoord<D>) -> Point<D> {
        let mut c = Point::origin();
        for i in 0..D {
            c[i] = self.offset[i] + (coord[i] as f64 + 0.5) * self.side;
        }
        c
    }

    /// The closed box spanned by the cell with address `coord`.
    pub fn cell_aabb(&self, coord: &CellCoord<D>) -> Aabb<D> {
        let mut lo = Point::origin();
        let mut hi = Point::origin();
        for i in 0..D {
            lo[i] = self.offset[i] + coord[i] as f64 * self.side;
            hi[i] = lo[i] + self.side;
        }
        Aabb::new(lo, hi)
    }

    /// The circumscribed ball of the cell with address `coord` — the sphere the
    /// sampling step of Section 3.1.1 draws its points from.
    pub fn cell_circumball(&self, coord: &CellCoord<D>) -> Ball<D> {
        let center = self.cell_center(coord);
        let radius = self.side * (D as f64).sqrt() / 2.0;
        Ball::new(center, radius)
    }

    /// Distance from `p` to the center of its own cell.  Lemma 2.1 guarantees
    /// this is at most `Δ` in at least one grid of a [`ShiftedGrids`] family.
    pub fn distance_to_cell_center(&self, p: &Point<D>) -> f64 {
        let cell = self.cell_of(p);
        self.cell_center(&cell).dist(p)
    }

    /// Enumerates the addresses of every cell intersected by `ball`.
    ///
    /// Convenience wrapper over [`Self::for_each_cell_intersecting_ball`]
    /// that allocates the result vector; hot paths use the visitor directly.
    pub fn cells_intersecting_ball(&self, ball: &Ball<D>) -> Vec<CellCoord<D>> {
        let mut out = Vec::new();
        self.for_each_cell_intersecting_ball(ball, |cell| out.push(cell));
        out
    }

    /// Calls `f` with the address of every cell intersected by `ball`,
    /// without allocating.
    ///
    /// A unit ball intersects `O((2/s)^d)` cells (proof of Lemma 3.4); the
    /// enumeration walks the integer bounding box of the ball and filters by an
    /// exact ball–box intersection test.
    pub fn for_each_cell_intersecting_ball<F: FnMut(CellCoord<D>)>(
        &self,
        ball: &Ball<D>,
        mut f: F,
    ) {
        let bb = ball.bounding_box();
        let lo = self.cell_of(&bb.lo);
        let hi = self.cell_of(&bb.hi);
        let mut cursor = lo;
        loop {
            let cell_box = self.cell_aabb(&cursor);
            if ball.intersects_aabb(&cell_box) {
                f(cursor);
            }
            // Odometer-style increment over the integer box [lo, hi].
            let mut axis = 0;
            loop {
                if axis == D {
                    return;
                }
                cursor[axis] += 1;
                if cursor[axis] <= hi[axis] {
                    break;
                }
                cursor[axis] = lo[axis];
                axis += 1;
            }
        }
    }

    /// Enumerates the addresses of every cell intersected by the box `aabb`.
    pub fn cells_intersecting_aabb(&self, aabb: &Aabb<D>) -> Vec<CellCoord<D>> {
        let lo = self.cell_of(&aabb.lo);
        let hi = self.cell_of(&aabb.hi);
        let mut out = Vec::new();
        let mut cursor = lo;
        loop {
            out.push(cursor);
            let mut axis = 0;
            loop {
                if axis == D {
                    return out;
                }
                cursor[axis] += 1;
                if cursor[axis] <= hi[axis] {
                    break;
                }
                cursor[axis] = lo[axis];
                axis += 1;
            }
        }
    }
}

/// The family of shifted grids of Lemma 2.1.
///
/// For a cell side `s` and nearness parameter `Δ`, the family contains the
/// grids `G_s(Δ/√d · z)` for `z ∈ {0, 1, …, ⌈s√d/Δ⌉ − 1}^d`.  For any point
/// `p ∈ R^d` at least one member grid has `p` within distance `Δ` of its cell
/// center.
#[derive(Clone, Debug)]
pub struct ShiftedGrids<const D: usize> {
    grids: Vec<Grid<D>>,
    side: f64,
    delta: f64,
    shifts_per_axis: usize,
}

impl<const D: usize> ShiftedGrids<D> {
    /// Builds the full family of Lemma 2.1.
    ///
    /// # Panics
    /// Panics if `side` or `delta` is not strictly positive, or if the family
    /// would contain more than `10^7` grids (a sign of a mis-parameterized ε).
    pub fn full(side: f64, delta: f64) -> Self {
        Self::with_limit(side, delta, usize::MAX)
    }

    /// Builds the family but keeps at most `max_grids` members, selected by a
    /// deterministic stride over the `z` lattice.  The theoretical guarantee of
    /// Lemma 2.1 needs the full family; capping trades the worst-case guarantee
    /// for speed and is what the benchmark configurations use (see DESIGN.md
    /// "Substitutions").
    pub fn with_limit(side: f64, delta: f64, max_grids: usize) -> Self {
        assert!(side.is_finite() && side > 0.0, "grid side must be positive");
        assert!(delta.is_finite() && delta > 0.0, "delta must be positive");
        let d = D as f64;
        let shifts_per_axis = ((side * d.sqrt()) / delta).ceil().max(1.0) as usize;
        let total = (shifts_per_axis as u128).pow(D as u32);
        assert!(
            total <= 10_000_000,
            "shifted grid family would contain {total} grids; increase delta or cap the family"
        );
        let total = total as usize;
        let step = delta / d.sqrt();

        let keep = total.min(max_grids.max(1));
        // Deterministic stride so the kept shifts stay spread over the lattice.
        let stride = (total as f64 / keep as f64).max(1.0);
        let mut grids = Vec::with_capacity(keep);
        let mut cursor = 0.0f64;
        let mut taken = 0usize;
        while taken < keep {
            let index = (cursor.round() as usize).min(total - 1);
            let mut offset = Point::<D>::origin();
            let mut rem = index;
            for i in 0..D {
                let z = rem % shifts_per_axis;
                rem /= shifts_per_axis;
                offset[i] = step * z as f64;
            }
            grids.push(Grid::new(side, offset));
            cursor += stride;
            taken += 1;
        }
        Self { grids, side, delta, shifts_per_axis }
    }

    /// The member grids.
    pub fn grids(&self) -> &[Grid<D>] {
        &self.grids
    }

    /// Number of member grids.
    pub fn len(&self) -> usize {
        self.grids.len()
    }

    /// Returns `true` if the family is empty (never the case after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.grids.is_empty()
    }

    /// Cell side length `s`.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Nearness parameter `Δ`.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of shifts per axis (`⌈s√d/Δ⌉`).
    pub fn shifts_per_axis(&self) -> usize {
        self.shifts_per_axis
    }

    /// Verifies Lemma 2.1 for a specific point: returns the index of a grid in
    /// which `p` lies within `Δ` of its cell center, if any.
    pub fn near_grid_for(&self, p: &Point<D>) -> Option<usize> {
        self.grids.iter().position(|g| g.distance_to_cell_center(p) <= self.delta + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use rand::prelude::*;

    #[test]
    fn cell_addressing_round_trip() {
        let g = Grid::<2>::at_origin(1.0);
        assert_eq!(g.cell_of(&Point2::xy(0.5, 0.5)), [0, 0]);
        assert_eq!(g.cell_of(&Point2::xy(-0.5, 1.5)), [-1, 1]);
        assert_eq!(g.cell_center(&[0, 0]), Point2::xy(0.5, 0.5));
        let aabb = g.cell_aabb(&[2, -1]);
        assert_eq!(aabb.lo, Point2::xy(2.0, -1.0));
        assert_eq!(aabb.hi, Point2::xy(3.0, 0.0));
    }

    #[test]
    fn offset_grid_addressing() {
        let g = Grid::<2>::new(2.0, Point2::xy(0.5, 0.5));
        assert_eq!(g.cell_of(&Point2::xy(0.6, 0.6)), [0, 0]);
        assert_eq!(g.cell_of(&Point2::xy(0.4, 0.6)), [-1, 0]);
    }

    #[test]
    fn circumball_covers_cell() {
        let g = Grid::<3>::at_origin(1.0);
        let ball = g.cell_circumball(&[0, 0, 0]);
        let cell = g.cell_aabb(&[0, 0, 0]);
        for corner in cell.corners() {
            assert!(ball.contains(&corner));
        }
        assert!((ball.radius - 3.0f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn cells_intersecting_unit_ball_count() {
        let g = Grid::<2>::at_origin(0.5);
        let ball = Ball::unit(Point2::xy(0.3, 0.3));
        let cells = g.cells_intersecting_ball(&ball);
        // Every returned cell really intersects, and the cell containing the
        // center is present.
        assert!(cells.contains(&g.cell_of(&ball.center)));
        for c in &cells {
            assert!(ball.intersects_aabb(&g.cell_aabb(c)));
        }
        // A unit disk on a 0.5 grid intersects at most (2/0.5 + 2)^2 cells.
        assert!(cells.len() <= 36);
        assert!(cells.len() >= 9);
    }

    #[test]
    fn lemma_2_1_near_grid_exists() {
        // s = 2ε/√d, Δ = ε² as used by Technique 1.
        let eps = 0.4f64;
        let d = 2.0f64;
        let grids = ShiftedGrids::<2>::full(2.0 * eps / d.sqrt(), eps * eps);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let p = Point2::xy(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0));
            assert!(
                grids.near_grid_for(&p).is_some(),
                "Lemma 2.1 violated for {p:?} with {} grids",
                grids.len()
            );
        }
    }

    #[test]
    fn lemma_2_1_in_three_dimensions() {
        let eps = 0.6f64;
        let d = 3.0f64;
        let grids = ShiftedGrids::<3>::full(2.0 * eps / d.sqrt(), eps * eps);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let p = Point::new([
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            ]);
            assert!(grids.near_grid_for(&p).is_some());
        }
    }

    #[test]
    fn limited_family_is_subset_and_smaller() {
        let full = ShiftedGrids::<2>::full(0.5, 0.1);
        let limited = ShiftedGrids::<2>::with_limit(0.5, 0.1, 4);
        assert!(limited.len() <= 4);
        assert!(full.len() >= limited.len());
        for g in limited.grids() {
            assert!(full.grids().iter().any(|f| (f.offset.dist(&g.offset)) < 1e-12));
        }
    }

    #[test]
    fn shifts_per_axis_formula() {
        let fam = ShiftedGrids::<2>::full(1.0, 0.25);
        // s√d/Δ = √2 / 0.25 ≈ 5.66 → 6 shifts per axis → 36 grids.
        assert_eq!(fam.shifts_per_axis(), 6);
        assert_eq!(fam.len(), 36);
    }

    #[test]
    fn cells_intersecting_aabb_covers_box() {
        let g = Grid::<2>::at_origin(1.0);
        let b = Aabb::new(Point2::xy(0.2, 0.2), Point2::xy(2.3, 1.1));
        let cells = g.cells_intersecting_aabb(&b);
        assert_eq!(cells.len(), 6); // 3 columns x 2 rows
    }
}
