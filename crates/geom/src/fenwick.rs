//! A Fenwick (binary indexed) tree over `f64` prefix sums.
//!
//! Used by the batched 1-D solvers and by workload statistics: point-update /
//! prefix-sum in `O(log n)` with a flat memory layout.

/// Fenwick tree over `len` positions holding `f64` values.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<f64>,
}

impl Fenwick {
    /// Creates a tree of `len` zeroed positions.
    pub fn new(len: usize) -> Self {
        Self { tree: vec![0.0; len + 1] }
    }

    /// Builds a tree from initial values in `O(n)`.
    pub fn from_values(values: &[f64]) -> Self {
        let mut tree = vec![0.0; values.len() + 1];
        for (i, &v) in values.iter().enumerate() {
            let idx = i + 1;
            tree[idx] += v;
            let parent = idx + (idx & idx.wrapping_neg());
            if parent < tree.len() {
                let val = tree[idx];
                tree[parent] += val;
            }
        }
        Self { tree }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` if the tree has zero positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to position `index`.
    pub fn add(&mut self, index: usize, delta: f64) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=index`.
    pub fn prefix_sum(&self, index: usize) -> f64 {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut acc = 0.0;
        while i > 0 {
            acc += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Sum of positions `lo..=hi` (empty if `lo > hi`).
    pub fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let upper = self.prefix_sum(hi);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix_sum(lo - 1)
        }
    }

    /// Total sum of all positions.
    pub fn total(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn prefix_and_range_sums() {
        let mut f = Fenwick::new(6);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            f.add(i, *v);
        }
        assert_eq!(f.prefix_sum(0), 1.0);
        assert_eq!(f.prefix_sum(5), 21.0);
        assert_eq!(f.range_sum(2, 4), 12.0);
        assert_eq!(f.range_sum(3, 2), 0.0);
        assert_eq!(f.total(), 21.0);
    }

    #[test]
    fn from_values_matches_incremental() {
        let values = vec![0.5, -1.0, 2.25, 3.0, -0.75];
        let built = Fenwick::from_values(&values);
        let mut inc = Fenwick::new(values.len());
        for (i, v) in values.iter().enumerate() {
            inc.add(i, *v);
        }
        for i in 0..values.len() {
            assert!((built.prefix_sum(i) - inc.prefix_sum(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn randomized_against_naive() {
        let mut rng = StdRng::seed_from_u64(23);
        let len = 100;
        let mut f = Fenwick::new(len);
        let mut naive = vec![0.0f64; len];
        for _ in 0..500 {
            if rng.gen_bool(0.5) {
                let i = rng.gen_range(0..len);
                let delta = rng.gen_range(-3.0..3.0);
                f.add(i, delta);
                naive[i] += delta;
            } else {
                let lo = rng.gen_range(0..len);
                let hi = rng.gen_range(lo..len);
                let want: f64 = naive[lo..=hi].iter().sum();
                assert!((f.range_sum(lo, hi) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0.0);
    }
}
