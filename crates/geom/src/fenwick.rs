//! A Fenwick (binary indexed) tree over `f64` prefix sums.
//!
//! Used by the batched 1-D solvers and by workload statistics: point-update /
//! prefix-sum in `O(log n)` with a flat memory layout.
//!
//! The prefix walk is *branch-free*: instead of the data-dependent
//! `while i > 0 { acc += tree[i]; i -= i & i.wrapping_neg() }` loop (whose
//! trip count — and branch pattern — depends on `popcount(i)`), the walk
//! visits a fixed `height` iterations and masks each addend.  The scalar
//! loop visits exactly the nodes `{ i & !((1 << b) - 1) : bit b set in i }`
//! in order of ascending `b` (each step clears the lowest set bit), and the
//! masked walk enumerates the same nodes in the same order, adding `tree[0]`
//! (a permanent `0.0` sentinel) for the unset bits — so the f64 accumulation
//! sequence, and therefore the result, is bit-identical.

/// Fenwick tree over `len` positions holding `f64` values.
///
/// `tree[0]` is a zero sentinel the branch-free walk adds for skipped
/// levels; `add` never writes it.
#[derive(Clone, Debug)]
pub struct Fenwick {
    tree: Vec<f64>,
    /// Bits needed to index the tree: `ceil(log2(len + 1))`.
    height: u32,
}

/// Bits needed to index a tree of `len` positions (node indices go up to
/// `len`).
fn tree_height(len: usize) -> u32 {
    usize::BITS - len.leading_zeros()
}

impl Fenwick {
    /// Creates a tree of `len` zeroed positions.
    pub fn new(len: usize) -> Self {
        Self { tree: vec![0.0; len + 1], height: tree_height(len) }
    }

    /// Builds a tree from initial values in `O(n)`.
    pub fn from_values(values: &[f64]) -> Self {
        let mut tree = vec![0.0; values.len() + 1];
        for (i, &v) in values.iter().enumerate() {
            let idx = i + 1;
            tree[idx] += v;
            let parent = idx + (idx & idx.wrapping_neg());
            if parent < tree.len() {
                let val = tree[idx];
                tree[parent] += val;
            }
        }
        Self { tree, height: tree_height(values.len()) }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Returns `true` if the tree has zero positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` to position `index`.
    pub fn add(&mut self, index: usize, delta: f64) {
        let mut i = index + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=index`, via the branch-free masked walk: a
    /// fixed `height` iterations, one masked load per level, no
    /// data-dependent branch.  Bit-identical to the lsb-clearing scalar walk
    /// (same nodes, same order; skipped levels add the `tree[0]` zero
    /// sentinel, and the tree never stores `-0.0`, so `+ 0.0` is an exact
    /// identity).
    pub fn prefix_sum(&self, index: usize) -> f64 {
        let x = (index + 1).min(self.tree.len() - 1);
        let mut acc = 0.0;
        for b in 0..self.height {
            let bit = (x >> b) & 1;
            let node = x & !((1usize << b) - 1);
            acc += self.tree[node & bit.wrapping_neg()];
        }
        acc
    }

    /// The lsb-clearing reference walk, kept for the equivalence tests.
    #[doc(hidden)]
    pub fn prefix_sum_reference(&self, index: usize) -> f64 {
        let mut i = (index + 1).min(self.tree.len() - 1);
        let mut acc = 0.0;
        while i > 0 {
            acc += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        acc
    }

    /// Sum of positions `lo..=hi` (empty if `lo > hi`).
    pub fn range_sum(&self, lo: usize, hi: usize) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let upper = self.prefix_sum(hi);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix_sum(lo - 1)
        }
    }

    /// Total sum of all positions.
    pub fn total(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn prefix_and_range_sums() {
        let mut f = Fenwick::new(6);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            f.add(i, *v);
        }
        assert_eq!(f.prefix_sum(0), 1.0);
        assert_eq!(f.prefix_sum(5), 21.0);
        assert_eq!(f.range_sum(2, 4), 12.0);
        assert_eq!(f.range_sum(3, 2), 0.0);
        assert_eq!(f.total(), 21.0);
    }

    #[test]
    fn from_values_matches_incremental() {
        let values = vec![0.5, -1.0, 2.25, 3.0, -0.75];
        let built = Fenwick::from_values(&values);
        let mut inc = Fenwick::new(values.len());
        for (i, v) in values.iter().enumerate() {
            inc.add(i, *v);
        }
        for i in 0..values.len() {
            assert!((built.prefix_sum(i) - inc.prefix_sum(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn randomized_against_naive() {
        let mut rng = StdRng::seed_from_u64(23);
        let len = 100;
        let mut f = Fenwick::new(len);
        let mut naive = vec![0.0f64; len];
        for _ in 0..500 {
            if rng.gen_bool(0.5) {
                let i = rng.gen_range(0..len);
                let delta = rng.gen_range(-3.0..3.0);
                f.add(i, delta);
                naive[i] += delta;
            } else {
                let lo = rng.gen_range(0..len);
                let hi = rng.gen_range(lo..len);
                let want: f64 = naive[lo..=hi].iter().sum();
                assert!((f.range_sum(lo, hi) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert!(f.is_empty());
        assert_eq!(f.total(), 0.0);
    }

    #[test]
    fn branch_free_walk_is_bit_identical_to_the_reference() {
        let mut rng = StdRng::seed_from_u64(41);
        for len in [1usize, 2, 3, 7, 8, 9, 63, 64, 65, 100, 1000] {
            let mut f = Fenwick::new(len);
            for _ in 0..len * 2 {
                f.add(rng.gen_range(0..len), rng.gen_range(-1e9..1e9));
            }
            for i in 0..len {
                let fast = f.prefix_sum(i);
                let reference = f.prefix_sum_reference(i);
                assert_eq!(
                    fast.to_bits(),
                    reference.to_bits(),
                    "len {len} index {i}: {fast} vs {reference}"
                );
            }
        }
    }
}
