//! Uniform sampling of points on spheres (Muller's method, \[Mul59\]), the
//! primitive the sampling step of Section 3.1.1 uses to place `Θ(ε^{-2} log n)`
//! points on the circumsphere of every non-empty grid cell.

use rand::Rng;

use crate::ball::Ball;
use crate::point::Point;

/// Draws one standard-normal variate using the Box–Muller transform.
///
/// Implemented locally so the crate only depends on `rand`'s uniform source.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Rejection-free polar form would need caching; the basic form is fine for
    // our sampling volumes.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a point uniformly at random on the surface of the unit sphere
/// `S^{D-1}` centered at the origin (Muller 1959: normalize a vector of i.i.d.
/// Gaussians).
pub fn sample_unit_sphere<const D: usize, R: Rng + ?Sized>(rng: &mut R) -> Point<D> {
    loop {
        let mut v = Point::<D>::origin();
        for i in 0..D {
            v[i] = standard_normal(rng);
        }
        let norm = v.norm();
        if norm > 1e-12 {
            return v.scale(1.0 / norm);
        }
        // Astronomically unlikely zero vector: resample.
    }
}

/// Samples a point uniformly at random on the boundary sphere of `ball`.
pub fn sample_on_ball_boundary<const D: usize, R: Rng + ?Sized>(
    ball: &Ball<D>,
    rng: &mut R,
) -> Point<D> {
    let dir = sample_unit_sphere::<D, R>(rng);
    ball.center.add_point(&dir.scale(ball.radius))
}

/// Samples `count` points uniformly and independently on the boundary sphere
/// of `ball` (the sampling step `S_X` of Section 3.1.1).
pub fn sample_points_on_boundary<const D: usize, R: Rng + ?Sized>(
    ball: &Ball<D>,
    count: usize,
    rng: &mut R,
) -> Vec<Point<D>> {
    (0..count).map(|_| sample_on_ball_boundary(ball, rng)).collect()
}

/// Samples a point uniformly at random inside the unit ball (used by workload
/// generators and Monte-Carlo validation of the cap-area lemma).
pub fn sample_in_unit_ball<const D: usize, R: Rng + ?Sized>(rng: &mut R) -> Point<D> {
    let dir = sample_unit_sphere::<D, R>(rng);
    // Radius with density proportional to r^{D-1}.
    let u: f64 = rng.gen_range(0.0f64..1.0);
    dir.scale(u.powf(1.0 / D as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn samples_lie_on_the_sphere() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let p: Point<4> = sample_unit_sphere(&mut rng);
            assert!((p.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn boundary_samples_respect_center_and_radius() {
        let mut rng = StdRng::seed_from_u64(2);
        let ball = Ball::new(Point::new([1.0, 2.0, 3.0]), 2.5);
        for p in sample_points_on_boundary(&ball, 100, &mut rng) {
            assert!((ball.center.dist(&p) - 2.5).abs() < 1e-9);
        }
    }

    #[test]
    fn sphere_samples_are_roughly_uniform_over_hemispheres() {
        // Each coordinate should be positive for about half of the samples.
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4000;
        let mut positive = [0usize; 3];
        for _ in 0..n {
            let p: Point<3> = sample_unit_sphere(&mut rng);
            for i in 0..3 {
                if p[i] > 0.0 {
                    positive[i] += 1;
                }
            }
        }
        for count in positive {
            let frac = count as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.05, "hemisphere fraction {frac}");
        }
    }

    #[test]
    fn ball_interior_samples_are_inside() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let p: Point<3> = sample_in_unit_ball(&mut rng);
            assert!(p.norm() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn normal_variates_have_unit_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
