//! Points in `R^d` with a compile-time dimension, plus the weighted and
//! colored point records used throughout the MaxRS suite.
//!
//! The paper treats the dimension `d` as a small constant (2–8).  We encode it
//! as a const generic so the hot loops (distance computations, grid cell
//! lookups) compile down to fixed-length arithmetic without heap traffic.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A point in `R^D`.
#[derive(Clone, Copy, PartialEq)]
pub struct Point<const D: usize> {
    coords: [f64; D],
}

/// Convenience alias for the planar case, which most of the exact algorithms
/// (rectangle sweep, disk sweep, colored disk union) operate in.
pub type Point2 = Point<2>;

impl<const D: usize> Point<D> {
    /// Creates a point from its coordinate array.
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// The origin of `R^D`.
    pub const fn origin() -> Self {
        Self { coords: [0.0; D] }
    }

    /// Returns the coordinate array.
    pub const fn coords(&self) -> [f64; D] {
        self.coords
    }

    /// Returns a mutable reference to the coordinate array.
    pub fn coords_mut(&mut self) -> &mut [f64; D] {
        &mut self.coords
    }

    /// The compile-time dimension.
    pub const fn dim(&self) -> usize {
        D
    }

    /// Squared Euclidean distance to `other` (delegates to the kernel
    /// layer's single distance expression, [`crate::kernels::dist_sq`]).
    #[inline]
    pub fn dist_sq(&self, other: &Self) -> f64 {
        crate::kernels::dist_sq(&self.coords, &other.coords)
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Self) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum()
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Component-wise addition.
    #[inline]
    pub fn add_point(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c += o;
        }
        Self { coords }
    }

    /// Component-wise subtraction.
    #[inline]
    pub fn sub_point(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c -= o;
        }
        Self { coords }
    }

    /// Scales every coordinate by `factor`.
    #[inline]
    pub fn scale(&self, factor: f64) -> Self {
        let mut coords = self.coords;
        for c in &mut coords {
            *c *= factor;
        }
        Self { coords }
    }

    /// Translates the point by `offset` in dimension `axis`.
    #[inline]
    pub fn translated(&self, axis: usize, offset: f64) -> Self {
        let mut coords = self.coords;
        coords[axis] += offset;
        Self { coords }
    }

    /// Linear interpolation: `self + t * (other - self)`.
    pub fn lerp(&self, other: &Self, t: f64) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c += t * (o - *c);
        }
        Self { coords }
    }

    /// Dot product with `other` interpreted as a vector from the origin.
    pub fn dot(&self, other: &Self) -> f64 {
        let mut acc = 0.0;
        for i in 0..D {
            acc += self.coords[i] * other.coords[i];
        }
        acc
    }

    /// Returns `true` if every coordinate is finite.
    pub fn is_finite(&self) -> bool {
        self.coords.iter().all(|c| c.is_finite())
    }

    /// Returns the point whose coordinates are the component-wise minimum.
    pub fn component_min(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c = c.min(*o);
        }
        Self { coords }
    }

    /// Returns the point whose coordinates are the component-wise maximum.
    pub fn component_max(&self, other: &Self) -> Self {
        let mut coords = self.coords;
        for (c, o) in coords.iter_mut().zip(&other.coords) {
            *c = c.max(*o);
        }
        Self { coords }
    }
}

impl Point<2> {
    /// Shorthand constructor for the planar case.
    pub const fn xy(x: f64, y: f64) -> Self {
        Self::new([x, y])
    }

    /// The x coordinate.
    pub const fn x(&self) -> f64 {
        self.coords[0]
    }

    /// The y coordinate.
    pub const fn y(&self) -> f64 {
        self.coords[1]
    }

    /// The polar angle of the vector `other - self`, in `(-π, π]`.
    pub fn angle_to(&self, other: &Self) -> f64 {
        (other.y() - self.y()).atan2(other.x() - self.x())
    }

    /// The point at distance `r` and angle `theta` from `self`.
    pub fn polar_offset(&self, r: f64, theta: f64) -> Self {
        Self::xy(self.x() + r * theta.cos(), self.y() + r * theta.sin())
    }
}

impl<const D: usize> Index<usize> for Point<D> {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.coords[index]
    }
}

impl<const D: usize> IndexMut<usize> for Point<D> {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.coords[index]
    }
}

impl<const D: usize> Add for Point<D> {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        self.add_point(&rhs)
    }
}

impl<const D: usize> Sub for Point<D> {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        self.sub_point(&rhs)
    }
}

impl<const D: usize> Mul<f64> for Point<D> {
    type Output = Self;

    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl<const D: usize> fmt::Debug for Point<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl<const D: usize> Default for Point<D> {
    fn default() -> Self {
        Self::origin()
    }
}

impl<const D: usize> From<[f64; D]> for Point<D> {
    fn from(coords: [f64; D]) -> Self {
        Self::new(coords)
    }
}

/// A point together with a real-valued weight, the input record of the
/// (weighted) MaxRS problem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeightedPoint<const D: usize> {
    /// Location of the point.
    pub point: Point<D>,
    /// Weight contributed when the query range covers the point.
    pub weight: f64,
}

impl<const D: usize> WeightedPoint<D> {
    /// Creates a weighted point.
    pub const fn new(point: Point<D>, weight: f64) -> Self {
        Self { point, weight }
    }

    /// A unit-weight point, the record of the unweighted MaxRS problem.
    pub const fn unit(point: Point<D>) -> Self {
        Self { point, weight: 1.0 }
    }
}

/// A point together with a color class, the input record of the colored
/// MaxRS problem (Section 1.3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ColoredPoint<const D: usize>
where
    Point<D>: PartialEq,
{
    /// Index of the point in the original input (used to keep results stable).
    pub id: usize,
    /// Color class in `0..m`.
    pub color: usize,
}

/// A colored site: location plus color class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColoredSite<const D: usize> {
    /// Location of the site.
    pub point: Point<D>,
    /// Color class in `0..m`.
    pub color: usize,
}

impl<const D: usize> ColoredSite<D> {
    /// Creates a colored site.
    pub const fn new(point: Point<D>, color: usize) -> Self {
        Self { point, color }
    }
}

/// Returns the centroid of a non-empty slice of points.
///
/// # Panics
/// Panics if `points` is empty.
pub fn centroid<const D: usize>(points: &[Point<D>]) -> Point<D> {
    assert!(!points.is_empty(), "centroid of an empty point set");
    let mut acc = Point::<D>::origin();
    for p in points {
        acc = acc.add_point(p);
    }
    acc.scale(1.0 / points.len() as f64)
}

/// Returns the axis-aligned bounding interval of the points along `axis`.
pub fn extent<const D: usize>(points: &[Point<D>], axis: usize) -> Option<(f64, f64)> {
    if points.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for p in points {
        lo = lo.min(p[axis]);
        hi = hi.max(p[axis]);
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new([1.0, 2.0, 3.0]);
        let b = Point::new([4.0, 6.0, 3.0]);
        assert!((a.dist(&b) - 5.0).abs() < 1e-12);
        assert!((b.dist(&a) - 5.0).abs() < 1e-12);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::xy(1.0, 2.0);
        let b = Point::xy(3.0, -1.0);
        assert_eq!(a + b, Point::xy(4.0, 1.0));
        assert_eq!(b - a, Point::xy(2.0, -3.0));
        assert_eq!(a * 2.0, Point::xy(2.0, 4.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::xy(0.0, 0.0);
        let b = Point::xy(2.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), Point::xy(1.0, 2.0));
    }

    #[test]
    fn polar_offset_matches_angle() {
        let c = Point::xy(1.0, 1.0);
        let p = c.polar_offset(2.0, std::f64::consts::FRAC_PI_2);
        assert!((p.x() - 1.0).abs() < 1e-12);
        assert!((p.y() - 3.0).abs() < 1e-12);
        assert!((c.angle_to(&p) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_square() {
        let pts = vec![
            Point::xy(0.0, 0.0),
            Point::xy(2.0, 0.0),
            Point::xy(2.0, 2.0),
            Point::xy(0.0, 2.0),
        ];
        assert_eq!(centroid(&pts), Point::xy(1.0, 1.0));
    }

    #[test]
    fn extent_bounds() {
        let pts = vec![Point::xy(1.0, -5.0), Point::xy(-2.0, 7.0), Point::xy(4.0, 0.0)];
        assert_eq!(extent(&pts, 0), Some((-2.0, 4.0)));
        assert_eq!(extent(&pts, 1), Some((-5.0, 7.0)));
        let empty: Vec<Point2> = vec![];
        assert_eq!(extent(&empty, 0), None);
    }

    #[test]
    fn component_min_max() {
        let a = Point::new([1.0, 5.0, -2.0]);
        let b = Point::new([0.0, 7.0, -1.0]);
        assert_eq!(a.component_min(&b), Point::new([0.0, 5.0, -2.0]));
        assert_eq!(a.component_max(&b), Point::new([1.0, 7.0, -1.0]));
    }

    #[test]
    fn index_access() {
        let mut p = Point::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(p[2], 3.0);
        p[2] = 9.0;
        assert_eq!(p[2], 9.0);
    }

    #[test]
    fn weighted_and_colored_records() {
        let w = WeightedPoint::unit(Point::xy(1.0, 1.0));
        assert_eq!(w.weight, 1.0);
        let c = ColoredSite::new(Point::xy(0.0, 0.0), 3);
        assert_eq!(c.color, 3);
    }
}
