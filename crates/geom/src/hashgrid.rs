//! A hash-grid spatial index for neighbour queries over point sets.
//!
//! The exact colored-disk algorithms of Section 4 repeatedly ask "which unit
//! disks can contain this point?" — exactly the disks whose centers lie within
//! distance 1 — and "which unit disks can overlap this one?" — centers within
//! distance 2.  Bucketing the centers into a uniform grid answers both in time
//! proportional to the local density, which is what makes the overall
//! algorithm output-sensitive in practice.

use std::collections::HashMap;

use crate::grid::{CellCoord, Grid};
use crate::point::Point;

/// A uniform-grid index over a set of points identified by `usize` ids.
#[derive(Clone, Debug)]
pub struct HashGrid<const D: usize> {
    grid: Grid<D>,
    buckets: HashMap<CellCoord<D>, Vec<usize>>,
    points: Vec<Point<D>>,
    len: usize,
}

impl<const D: usize> HashGrid<D> {
    /// Creates an empty index with the given cell side.
    pub fn new(cell_side: f64) -> Self {
        Self {
            grid: Grid::at_origin(cell_side),
            buckets: HashMap::new(),
            points: Vec::new(),
            len: 0,
        }
    }

    /// Builds an index over `points`, using their slice positions as ids.
    pub fn build(cell_side: f64, points: &[Point<D>]) -> Self {
        let mut index = Self::new(cell_side);
        for (id, p) in points.iter().enumerate() {
            index.insert(id, *p);
        }
        index
    }

    /// Number of live points in the index.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts point `p` under identifier `id`.  Ids beyond the current
    /// capacity grow the internal table; re-inserting an existing id replaces
    /// its location.
    pub fn insert(&mut self, id: usize, p: Point<D>) {
        if id >= self.points.len() {
            self.points.resize(id + 1, Point::origin());
        } else if self.contains_id(id) {
            self.remove(id);
        }
        self.points[id] = p;
        self.buckets.entry(self.grid.cell_of(&p)).or_default().push(id);
        self.len += 1;
    }

    /// Removes the point with identifier `id`.  Returns `true` if it was
    /// present.
    pub fn remove(&mut self, id: usize) -> bool {
        if id >= self.points.len() {
            return false;
        }
        let cell = self.grid.cell_of(&self.points[id]);
        if let Some(bucket) = self.buckets.get_mut(&cell) {
            if let Some(pos) = bucket.iter().position(|&x| x == id) {
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.buckets.remove(&cell);
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Returns `true` if `id` is currently stored.
    pub fn contains_id(&self, id: usize) -> bool {
        if id >= self.points.len() {
            return false;
        }
        let cell = self.grid.cell_of(&self.points[id]);
        self.buckets.get(&cell).is_some_and(|b| b.contains(&id))
    }

    /// Location stored for `id` (meaningful only if [`Self::contains_id`] is true).
    pub fn point(&self, id: usize) -> Point<D> {
        self.points[id]
    }

    /// Ids of every stored point within Euclidean distance `radius` of `q`
    /// (closed ball query).
    pub fn within(&self, q: &Point<D>, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |id| out.push(id));
        out
    }

    /// Calls `f` for every stored id within distance `radius` of `q`.
    pub fn for_each_within<F: FnMut(usize)>(&self, q: &Point<D>, radius: f64, mut f: F) {
        let r_sq = {
            let r = radius * (1.0 + 1e-12) + 1e-12;
            r * r
        };
        let reach = (radius / self.grid.side).ceil() as i64;
        let center = self.grid.cell_of(q);
        let mut cursor = [0i64; D];
        let mut offsets = [-reach; D];
        loop {
            for i in 0..D {
                cursor[i] = center[i] + offsets[i];
            }
            if let Some(bucket) = self.buckets.get(&cursor) {
                for &id in bucket {
                    if self.points[id].dist_sq(q) <= r_sq {
                        f(id);
                    }
                }
            }
            // Odometer increment of `offsets` over [-reach, reach]^D.
            let mut axis = 0;
            loop {
                if axis == D {
                    return;
                }
                offsets[axis] += 1;
                if offsets[axis] <= reach {
                    break;
                }
                offsets[axis] = -reach;
                axis += 1;
            }
        }
    }

    /// Number of stored points within distance `radius` of `q`.
    pub fn count_within(&self, q: &Point<D>, radius: f64) -> usize {
        let mut count = 0;
        self.for_each_within(q, radius, |_| count += 1);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use rand::prelude::*;

    fn brute_within(points: &[Point2], q: &Point2, r: f64) -> Vec<usize> {
        points.iter().enumerate().filter(|(_, p)| p.dist(q) <= r + 1e-9).map(|(i, _)| i).collect()
    }

    #[test]
    fn within_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(3);
        let points: Vec<Point2> = (0..500)
            .map(|_| Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let index = HashGrid::build(1.0, &points);
        for _ in 0..50 {
            let q = Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
            let r = rng.gen_range(0.1..3.0);
            let mut got = index.within(&q, r);
            let mut want = brute_within(&points, &q, r);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query at {q:?} radius {r}");
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut index = HashGrid::<2>::new(1.0);
        index.insert(0, Point2::xy(0.0, 0.0));
        index.insert(1, Point2::xy(0.5, 0.5));
        index.insert(2, Point2::xy(5.0, 5.0));
        assert_eq!(index.len(), 3);
        assert_eq!(index.count_within(&Point2::xy(0.0, 0.0), 1.0), 2);
        assert!(index.remove(1));
        assert!(!index.remove(1));
        assert_eq!(index.len(), 2);
        assert_eq!(index.count_within(&Point2::xy(0.0, 0.0), 1.0), 1);
        // Re-insert with a new location replaces the old one.
        index.insert(0, Point2::xy(5.0, 5.0));
        assert_eq!(index.len(), 2);
        assert_eq!(index.count_within(&Point2::xy(5.0, 5.0), 0.1), 2);
    }

    #[test]
    fn works_in_three_dimensions() {
        let pts = vec![
            Point::new([0.0, 0.0, 0.0]),
            Point::new([0.5, 0.5, 0.5]),
            Point::new([3.0, 3.0, 3.0]),
        ];
        let index = HashGrid::build(1.0, &pts);
        assert_eq!(index.within(&Point::new([0.1, 0.1, 0.1]), 1.0).len(), 2);
        assert_eq!(index.within(&Point::new([3.0, 3.0, 3.0]), 0.5).len(), 1);
    }

    #[test]
    fn empty_index_queries() {
        let index = HashGrid::<2>::new(1.0);
        assert!(index.is_empty());
        assert!(index.within(&Point2::xy(0.0, 0.0), 10.0).is_empty());
    }
}
