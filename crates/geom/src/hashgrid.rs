//! A flat CSR grid index for neighbour queries over point sets.
//!
//! The exact colored-disk algorithms of Section 4 repeatedly ask "which unit
//! disks can contain this point?" — exactly the disks whose centers lie within
//! distance 1 — and "which unit disks can overlap this one?" — centers within
//! distance 2.  Bucketing the centers into a uniform grid answers both in time
//! proportional to the local density, which is what makes the overall
//! algorithm output-sensitive in practice.
//!
//! ## Data layout
//!
//! The index is a *compressed sparse row* structure built once over the whole
//! point set, not a hash map of buckets:
//!
//! * a **cell table** of the non-empty cells, sorted row-major (last axis
//!   most significant, axis 0 least), so the cells of one grid row are
//!   contiguous;
//! * one contiguous **id array** holding every point id, grouped by cell in
//!   cell-table order (`cell_starts[k]..cell_starts[k + 1]` delimit cell
//!   `k`'s slice);
//! * an **SoA copy of the coordinates** in the same slot order
//!   (`coords[axis * len + slot]`), so the distance filter of a query scans
//!   contiguous memory instead of chasing ids back into the caller's array.
//!
//! A ball query walks the `(2·reach + 1)^{D-1}` candidate rows, binary
//! searches each row's overlap with the query's axis-0 span, and then runs
//! one tight distance loop over the row's contiguous slot range.  No
//! allocation happens on the query path; [`HashGrid::within`] exists as a
//! convenience wrapper over the visitor form.

use crate::grid::{CellCoord, Grid};
use crate::kernels::{self, KernelMode};
use crate::point::Point;

/// Work counters reported by the visitor queries, the observability hook the
/// perf-smoke tests assert on: a healthy query touches `O(output + cells)`
/// candidates, a degenerate one (cell side ≪ radius) touches many cells.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GridQueryStats {
    /// Non-empty cell-table entries whose contents were scanned.
    pub cells: usize,
    /// Points distance-tested (candidates examined).
    pub candidates: usize,
    /// Candidates the f32 sieve rejected before the exact f64 test — a
    /// subset of `candidates`, zero outside [`KernelMode::SieveF32`].
    pub sieve_rejected: usize,
}

impl GridQueryStats {
    /// Accumulates another query's counters into this one.
    pub fn merge(&mut self, other: GridQueryStats) {
        self.cells += other.cells;
        self.candidates += other.candidates;
        self.sieve_rejected += other.sieve_rejected;
    }
}

/// A flat CSR uniform-grid index over a fixed set of points identified by
/// their build-time slice positions.
#[derive(Clone, Debug)]
pub struct HashGrid<const D: usize> {
    grid: Grid<D>,
    /// Non-empty cells, sorted row-major (axis `D-1` most significant, axis 0
    /// least), so one row's cells are contiguous.
    cell_keys: Vec<CellCoord<D>>,
    /// CSR offsets into `ids`: cell `k` owns slots
    /// `cell_starts[k]..cell_starts[k + 1]`.  Always `cell_keys.len() + 1`
    /// entries.
    cell_starts: Vec<u32>,
    /// Point ids in cell-bucket order.
    ids: Vec<u32>,
    /// SoA coordinate copy in slot order: `coords[axis * len + slot]`.
    coords: Vec<f64>,
    /// f32 mirror of `coords` (same layout), the sieve's lane input.
    coords32: Vec<f32>,
    /// Largest coordinate magnitude stored, the sieve's error-bound input.
    max_abs: f64,
}

/// Below this many stored points a ball query skips the cell walk and lane-
/// scans every slot: two binary searches per row cost more than distance-
/// testing a handful of extra candidates.  Slot order is row-major cell
/// order, so the hit sequence matches the cell walk exactly.
const SMALL_SCAN: usize = 64;

/// The squared comparison radius of a closed-ball query: the boundary gets
/// a small relative tolerance so points exactly on it are never dropped to
/// rounding.  One definition serves the base CSR query and the overlay's
/// delta scan — the two must always agree on boundary inclusion.
#[inline]
fn closed_ball_r_sq(radius: f64) -> f64 {
    let r = radius * (1.0 + 1e-12) + 1e-12;
    r * r
}

/// Row-major comparison: axis `D-1` is most significant, axis 0 least, so the
/// cells of one "row" (all axes above 0 fixed) sort contiguously.
#[inline]
fn cmp_cells<const D: usize>(a: &CellCoord<D>, b: &CellCoord<D>) -> std::cmp::Ordering {
    for axis in (0..D).rev() {
        match a[axis].cmp(&b[axis]) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

impl<const D: usize> HashGrid<D> {
    /// An empty index with the given cell side (every query answers empty).
    pub fn new(cell_side: f64) -> Self {
        Self::build(cell_side, &[])
    }

    /// Builds the CSR index over `points`, using their slice positions as
    /// ids.  `O(n log n)`: one sort of the `(cell, id)` incidences.
    ///
    /// # Panics
    /// Panics if `cell_side` is not strictly positive and finite, or if the
    /// point count exceeds `u32::MAX`.
    pub fn build(cell_side: f64, points: &[Point<D>]) -> Self {
        assert!(points.len() <= u32::MAX as usize, "CSR grid ids are u32");
        let grid = Grid::at_origin(cell_side);
        let mut order: Vec<(CellCoord<D>, u32)> =
            points.iter().enumerate().map(|(i, p)| (grid.cell_of(p), i as u32)).collect();
        // Sort by cell (row-major); ties keep ascending id so bucket contents
        // stay in input order, matching the insertion-order semantics the
        // sweep kernels rely on for deterministic tie-breaking.
        order.sort_unstable_by(|a, b| cmp_cells(&a.0, &b.0).then(a.1.cmp(&b.1)));

        let mut cell_keys: Vec<CellCoord<D>> = Vec::new();
        let mut cell_starts: Vec<u32> = Vec::with_capacity(16);
        let mut ids: Vec<u32> = Vec::with_capacity(points.len());
        let mut coords: Vec<f64> = vec![0.0; D * points.len()];
        let n = points.len();
        let mut max_abs = 0.0f64;
        for (slot, (cell, id)) in order.iter().enumerate() {
            if cell_keys.last() != Some(cell) {
                cell_keys.push(*cell);
                cell_starts.push(slot as u32);
            }
            ids.push(*id);
            let p = &points[*id as usize];
            for axis in 0..D {
                coords[axis * n + slot] = p[axis];
                max_abs = max_abs.max(p[axis].abs());
            }
        }
        cell_starts.push(points.len() as u32);
        let coords32: Vec<f32> = coords.iter().map(|&c| c as f32).collect();
        Self { grid, cell_keys, cell_starts, ids, coords, coords32, max_abs }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The cell side the index was built with.
    pub fn cell_side(&self) -> f64 {
        self.grid.side
    }

    /// Number of non-empty cells in the cell table.
    pub fn cell_count(&self) -> usize {
        self.cell_keys.len()
    }

    /// Ids of every stored point within Euclidean distance `radius` of `q`
    /// (closed ball query).  Convenience wrapper over
    /// [`Self::for_each_within`]; allocates the result vector.
    pub fn within(&self, q: &Point<D>, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |id| out.push(id));
        out
    }

    /// Calls `f` for every stored id within distance `radius` of `q`, without
    /// allocating.  Ids inside one cell are visited in input order; cells are
    /// visited in row-major order — the laned kernels preserve both, so the
    /// visit sequence is bit-identical across every [`KernelMode`].  Returns
    /// the work counters of the query.
    pub fn for_each_within<F: FnMut(usize)>(
        &self,
        q: &Point<D>,
        radius: f64,
        mut f: F,
    ) -> GridQueryStats {
        let r_sq = closed_ball_r_sq(radius);
        let n = self.ids.len();
        let qc = q.coords();
        // The sieve needs a meaningful error bound over every coordinate in
        // play (stored points and the query); otherwise drop to laned f64.
        let mut mode = kernels::kernel_mode();
        let q_abs = qc.iter().fold(0.0f64, |m, c| m.max(c.abs()));
        if mode == KernelMode::SieveF32
            && !(kernels::sieve_supported(self.max_abs.max(q_abs)) && r_sq.is_finite())
        {
            mode = KernelMode::LanedF64;
        }
        let mut q32 = [0.0f32; D];
        let mut r32_sq = 0.0f32;
        if mode == KernelMode::SieveF32 {
            for axis in 0..D {
                q32[axis] = qc[axis] as f32;
            }
            r32_sq = kernels::sieve_threshold::<D>(r_sq, self.max_abs.max(q_abs));
        }
        let mut sieve_rejected = 0usize;
        // Small-index fast path: below [`SMALL_SCAN`] points the cell walk's
        // binary searches cost more than lane-scanning every slot, so feed
        // the whole slot range to the kernel directly.  Slots are stored in
        // row-major cell order, which is exactly the order the cell walk
        // visits, so the hit sequence is identical.
        if n <= SMALL_SCAN {
            if n == 0 {
                return GridQueryStats::default();
            }
            match mode {
                KernelMode::ScalarF64 => {
                    kernels::filter_within_scalar(&self.coords, n, 0, n, &qc, r_sq, |s| {
                        f(self.ids[s] as usize)
                    });
                }
                KernelMode::LanedF64 => {
                    kernels::filter_within_laned(&self.coords, n, 0, n, &qc, r_sq, |s| {
                        f(self.ids[s] as usize)
                    });
                }
                KernelMode::SieveF32 => {
                    sieve_rejected = kernels::filter_within_sieve(
                        &self.coords,
                        &self.coords32,
                        n,
                        0,
                        n,
                        &qc,
                        &q32,
                        r_sq,
                        r32_sq,
                        |s| f(self.ids[s] as usize),
                    );
                }
            }
            return GridQueryStats { cells: self.cell_keys.len(), candidates: n, sieve_rejected };
        }
        let reach = (radius / self.grid.side).ceil() as i64;
        let center = self.grid.cell_of(q);
        let mut lo = center;
        let mut hi = center;
        for axis in 0..D {
            lo[axis] -= reach;
            hi[axis] += reach;
        }
        let mut stats = self.scan_rows(&lo, &hi, |slot_lo, slot_hi| match mode {
            KernelMode::ScalarF64 => {
                kernels::filter_within_scalar(&self.coords, n, slot_lo, slot_hi, &qc, r_sq, |s| {
                    f(self.ids[s] as usize)
                });
            }
            KernelMode::LanedF64 => {
                kernels::filter_within_laned(&self.coords, n, slot_lo, slot_hi, &qc, r_sq, |s| {
                    f(self.ids[s] as usize)
                });
            }
            KernelMode::SieveF32 => {
                sieve_rejected += kernels::filter_within_sieve(
                    &self.coords,
                    &self.coords32,
                    n,
                    slot_lo,
                    slot_hi,
                    &qc,
                    &q32,
                    r_sq,
                    r32_sq,
                    |s| f(self.ids[s] as usize),
                );
            }
        });
        stats.sieve_rejected = sieve_rejected;
        stats
    }

    /// Calls `f` for every id stored in a cell whose address lies in the
    /// inclusive box `[lo, hi]`, without allocating or distance-testing —
    /// the raw cell-range visitor behind [`Self::for_each_within`], exposed
    /// for callers that bucket by cell themselves (box queries, per-cell
    /// sweeps).  Returns the work counters of the query.
    pub fn for_each_in_cell_range<F: FnMut(usize)>(
        &self,
        lo: &CellCoord<D>,
        hi: &CellCoord<D>,
        mut f: F,
    ) -> GridQueryStats {
        self.scan_rows(lo, hi, |slot_lo, slot_hi| {
            for slot in slot_lo..slot_hi {
                f(self.ids[slot] as usize);
            }
        })
    }

    /// Core row walk: yield every contiguous slot range whose cells lie in
    /// `[lo, hi]`.  Rows (fixed axes `1..D`) are enumerated with an odometer;
    /// each row's overlap with `[lo[0], hi[0]]` is found by binary search and
    /// reported as one `[slot_lo, slot_hi)` range — the unit of work the
    /// laned kernels consume.
    fn scan_rows<F: FnMut(usize, usize)>(
        &self,
        lo: &CellCoord<D>,
        hi: &CellCoord<D>,
        mut visit_range: F,
    ) -> GridQueryStats {
        let mut stats = GridQueryStats::default();
        if self.ids.is_empty() || (0..D).any(|axis| lo[axis] > hi[axis]) {
            return stats;
        }
        // Odometer over the row axes (1..D); D == 1 has exactly one "row".
        let mut row = *lo;
        loop {
            // The row's first candidate cell is (lo[0], row[1..]); find the
            // cell-table range overlapping [lo[0], hi[0]] within this row.
            let mut row_lo = row;
            row_lo[0] = lo[0];
            let mut row_hi = row;
            row_hi[0] = hi[0];
            let a = self.cell_keys.partition_point(|c| cmp_cells(c, &row_lo).is_lt());
            let b = self.cell_keys.partition_point(|c| cmp_cells(c, &row_hi).is_le());
            if a < b {
                stats.cells += b - a;
                let slot_lo = self.cell_starts[a] as usize;
                let slot_hi = self.cell_starts[b] as usize;
                stats.candidates += slot_hi - slot_lo;
                visit_range(slot_lo, slot_hi);
            }
            // Advance the odometer over axes 1..D.
            let mut axis = 1;
            loop {
                if axis >= D {
                    return stats;
                }
                row[axis] += 1;
                if row[axis] <= hi[axis] {
                    break;
                }
                row[axis] = lo[axis];
                axis += 1;
            }
        }
    }

    /// Number of stored points within distance `radius` of `q`.
    pub fn count_within(&self, q: &Point<D>, radius: f64) -> usize {
        let mut count = 0;
        self.for_each_within(q, radius, |_| count += 1);
        count
    }
}

/// One hit of an overlay query: either a point of the base CSR grid (by its
/// build-time id) or a point of the small delta slice (by its slice
/// position).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlayHit {
    /// A live base point, identified by its id in the grid it was built into.
    Base(usize),
    /// A delta point, identified by its position in the overlay's `extra`
    /// slice.
    Extra(usize),
}

/// A delta overlay over a built [`HashGrid`]: the base structure answers the
/// bulk of a query, a tombstone mask hides deleted base points, and a small
/// `extra` slice of not-yet-indexed points is scanned linearly.
///
/// This is the query side of an *updatable* point set that keeps its CSR
/// index immutable between compactions: mutations only grow the tombstone
/// mask and the delta slice, and every ball query stays correct at
/// `O(base query + |extra|)` — the overlay never rebuilds the grid.
#[derive(Clone, Copy, Debug)]
pub struct GridOverlay<'a, const D: usize> {
    base: &'a HashGrid<D>,
    dead: &'a [bool],
    extra: &'a [Point<D>],
}

impl<'a, const D: usize> GridOverlay<'a, D> {
    /// An overlay over `base` hiding the base ids flagged in `dead` and
    /// adding the `extra` points.  `dead` may be empty (nothing deleted);
    /// otherwise it must carry one flag per indexed base point.
    ///
    /// # Panics
    /// Panics if `dead` is non-empty but does not match the base point count.
    pub fn new(base: &'a HashGrid<D>, dead: &'a [bool], extra: &'a [Point<D>]) -> Self {
        assert!(
            dead.is_empty() || dead.len() == base.len(),
            "tombstone mask must cover every base point ({} flags for {} points)",
            dead.len(),
            base.len()
        );
        Self { base, dead, extra }
    }

    /// Live points under the overlay: base points minus tombstones plus the
    /// delta slice.
    pub fn len(&self) -> usize {
        self.base.len() - self.dead.iter().filter(|&&d| d).count() + self.extra.len()
    }

    /// `true` when no live point exists.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f` for every live point within distance `radius` of `q`
    /// (closed ball, same boundary tolerance as
    /// [`HashGrid::for_each_within`]): base hits come through the CSR walk
    /// with tombstones filtered, delta hits from one linear scan.  The
    /// returned counters include every delta point as a candidate — the
    /// linear part of the query is real work the compaction policy bounds.
    /// Under [`KernelMode::SieveF32`] the delta scan runs the same widened
    /// f32 pre-test as the CSR walk and accumulates its rejections into
    /// `sieve_rejected`; the hit set is bit-identical across every mode.
    pub fn for_each_within<F: FnMut(OverlayHit)>(
        &self,
        q: &Point<D>,
        radius: f64,
        mut f: F,
    ) -> GridQueryStats {
        let mut stats = self.base.for_each_within(q, radius, |id| {
            if !self.dead.get(id).copied().unwrap_or(false) {
                f(OverlayHit::Base(id));
            }
        });
        let r_sq = closed_ball_r_sq(radius);
        let qc = q.coords();
        let q_abs = qc.iter().fold(0.0f64, |m, c| m.max(c.abs()));
        let extra_abs =
            self.extra.iter().flat_map(|p| p.coords()).fold(0.0f64, |m, c| m.max(c.abs()));
        let bound = self.base.max_abs.max(q_abs).max(extra_abs);
        let sieve = kernels::kernel_mode() == KernelMode::SieveF32
            && kernels::sieve_supported(bound)
            && r_sq.is_finite();
        if sieve {
            let r32_sq = kernels::sieve_threshold::<D>(r_sq, bound);
            let mut q32 = [0.0f32; D];
            for axis in 0..D {
                q32[axis] = qc[axis] as f32;
            }
            for (j, p) in self.extra.iter().enumerate() {
                stats.candidates += 1;
                let pc = p.coords();
                let mut acc32 = 0.0f32;
                for axis in 0..D {
                    let d = pc[axis] as f32 - q32[axis];
                    acc32 += d * d;
                }
                if acc32 > r32_sq {
                    stats.sieve_rejected += 1;
                    continue;
                }
                if kernels::dist_sq(&pc, &qc) <= r_sq {
                    f(OverlayHit::Extra(j));
                }
            }
        } else {
            for (j, p) in self.extra.iter().enumerate() {
                stats.candidates += 1;
                if kernels::dist_sq(&p.coords(), &qc) <= r_sq {
                    f(OverlayHit::Extra(j));
                }
            }
        }
        stats
    }

    /// The live hits as a vector (convenience wrapper for tests and
    /// one-off callers).
    pub fn within(&self, q: &Point<D>, radius: f64) -> Vec<OverlayHit> {
        let mut out = Vec::new();
        self.for_each_within(q, radius, |hit| out.push(hit));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;
    use rand::prelude::*;

    fn brute_within(points: &[Point2], q: &Point2, r: f64) -> Vec<usize> {
        points.iter().enumerate().filter(|(_, p)| p.dist(q) <= r + 1e-9).map(|(i, _)| i).collect()
    }

    #[test]
    fn within_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(3);
        let points: Vec<Point2> = (0..500)
            .map(|_| Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let index = HashGrid::build(1.0, &points);
        assert_eq!(index.len(), 500);
        for _ in 0..50 {
            let q = Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
            let r = rng.gen_range(0.1..3.0);
            let mut got = index.within(&q, r);
            let mut want = brute_within(&points, &q, r);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "query at {q:?} radius {r}");
        }
    }

    #[test]
    fn negative_coordinates_and_boundaries() {
        // Points exactly on cell boundaries, straddling the origin.
        let points = vec![
            Point2::xy(-1.0, -1.0),
            Point2::xy(0.0, 0.0),
            Point2::xy(1.0, 0.0),
            Point2::xy(0.0, 1.0),
            Point2::xy(-2.5, 3.5),
        ];
        let index = HashGrid::build(1.0, &points);
        let mut got = index.within(&Point2::xy(0.0, 0.0), 1.0);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(index.count_within(&Point2::xy(-1.0, -1.0), 0.0), 1);
        assert_eq!(index.count_within(&Point2::xy(-2.5, 3.5), 0.1), 1);
    }

    #[test]
    fn query_stats_count_cells_and_candidates() {
        let points: Vec<Point2> = (0..256).map(|i| Point2::xy(i as f64 * 0.25, 0.0)).collect();
        let index = HashGrid::build(1.0, &points);
        let mut hits = 0;
        let stats = index.for_each_within(&Point2::xy(8.0, 0.0), 1.0, |_| hits += 1);
        assert!(stats.cells >= 1 && stats.cells <= 9, "{stats:?}");
        assert!(stats.candidates >= hits, "{stats:?} vs {hits} hits");
        // A radius far below the cell side still pays for the whole cell.
        let tiny = index.for_each_within(&Point2::xy(8.0, 0.0), 1e-6, |_| {});
        assert!(tiny.candidates >= 1);
        // At or below SMALL_SCAN points the whole index is one lane scan;
        // the honest work counters are every cell and every slot.
        let small_index = HashGrid::build(1.0, &points[..SMALL_SCAN]);
        let s = small_index.for_each_within(&Point2::xy(8.0, 0.0), 1.0, |_| {});
        assert_eq!(s.candidates, SMALL_SCAN, "{s:?}");
        assert_eq!(s.cells, SMALL_SCAN / 4, "{s:?}");
    }

    #[test]
    fn cell_range_visitor_covers_rows() {
        let points = vec![
            Point2::xy(0.5, 0.5),
            Point2::xy(1.5, 0.5),
            Point2::xy(2.5, 0.5),
            Point2::xy(0.5, 1.5),
            Point2::xy(5.5, 5.5),
        ];
        let index = HashGrid::build(1.0, &points);
        let mut got = Vec::new();
        let stats = index.for_each_in_cell_range(&[0, 0], &[2, 1], |id| got.push(id));
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(stats.candidates, 4);
        assert_eq!(stats.cells, 4);
        // An inverted range is empty, not a panic.
        let empty = index.for_each_in_cell_range(&[3, 3], &[1, 1], |_| unreachable!());
        assert_eq!(empty, GridQueryStats::default());
    }

    #[test]
    fn works_in_three_dimensions() {
        let pts = vec![
            Point::new([0.0, 0.0, 0.0]),
            Point::new([0.5, 0.5, 0.5]),
            Point::new([3.0, 3.0, 3.0]),
        ];
        let index = HashGrid::build(1.0, &pts);
        assert_eq!(index.within(&Point::new([0.1, 0.1, 0.1]), 1.0).len(), 2);
        assert_eq!(index.within(&Point::new([3.0, 3.0, 3.0]), 0.5).len(), 1);
    }

    #[test]
    fn empty_index_queries() {
        let index = HashGrid::<2>::new(1.0);
        assert!(index.is_empty());
        assert_eq!(index.cell_count(), 0);
        assert!(index.within(&Point2::xy(0.0, 0.0), 10.0).is_empty());
        let stats = index.for_each_within(&Point2::xy(0.0, 0.0), 10.0, |_| unreachable!());
        assert_eq!(stats, GridQueryStats::default());
    }

    #[test]
    fn overlay_matches_brute_force_over_the_live_set() {
        let mut rng = StdRng::seed_from_u64(9);
        let base: Vec<Point2> = (0..200)
            .map(|_| Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let dead: Vec<bool> = (0..200).map(|_| rng.gen_bool(0.3)).collect();
        let extra: Vec<Point2> = (0..37)
            .map(|_| Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let index = HashGrid::build(1.0, &base);
        let overlay = GridOverlay::new(&index, &dead, &extra);
        assert_eq!(overlay.len(), 200 - dead.iter().filter(|&&d| d).count() + 37);
        for _ in 0..40 {
            let q = Point2::xy(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
            let r = rng.gen_range(0.1..3.0);
            let mut got_base = Vec::new();
            let mut got_extra = Vec::new();
            let stats = overlay.for_each_within(&q, r, |hit| match hit {
                OverlayHit::Base(id) => got_base.push(id),
                OverlayHit::Extra(j) => got_extra.push(j),
            });
            let mut want_base: Vec<usize> = brute_within(&base, &q, r);
            want_base.retain(|&i| !dead[i]);
            let want_extra = brute_within(&extra, &q, r);
            got_base.sort_unstable();
            got_extra.sort_unstable();
            assert_eq!(got_base, want_base, "base hits at {q:?} radius {r}");
            assert_eq!(got_extra, want_extra, "extra hits at {q:?} radius {r}");
            // Every delta point is a candidate: the overlay's linear scan is
            // accounted work, not free.
            assert!(stats.candidates >= extra.len());
        }
    }

    #[test]
    fn overlay_delta_scan_accumulates_sieve_rejections() {
        let base = vec![Point2::xy(0.0, 0.0), Point2::xy(0.5, 0.0)];
        let index = HashGrid::build(1.0, &base);
        // 40 far delta points the sieve can reject cheaply + one true delta hit.
        let mut extra: Vec<Point2> = (0..40).map(|i| Point2::xy(100.0 + i as f64, 50.0)).collect();
        extra.push(Point2::xy(0.25, 0.0));
        let overlay = GridOverlay::new(&index, &[], &extra);
        let q = Point2::xy(0.0, 0.0);

        let before = crate::kernels::kernel_mode();
        crate::kernels::set_kernel_mode(KernelMode::SieveF32);
        let mut sieve_hits = Vec::new();
        let sieved = overlay.for_each_within(&q, 1.0, |hit| sieve_hits.push(hit));
        crate::kernels::set_kernel_mode(KernelMode::ScalarF64);
        let mut scalar_hits = Vec::new();
        let scalar = overlay.for_each_within(&q, 1.0, |hit| scalar_hits.push(hit));
        crate::kernels::set_kernel_mode(before);

        // Same live hit sequence under both modes; the delta rejections are
        // accounted in `sieve_rejected`, not silently dropped.
        assert_eq!(sieve_hits, scalar_hits);
        assert_eq!(sieved.candidates, scalar.candidates);
        assert!(sieved.sieve_rejected >= 40, "delta rejections must be counted: {sieved:?}");
        assert_eq!(scalar.sieve_rejected, 0, "{scalar:?}");
        assert!(sieve_hits.contains(&OverlayHit::Extra(40)));
    }

    #[test]
    fn overlay_accepts_an_empty_tombstone_mask() {
        let base = vec![Point2::xy(0.0, 0.0), Point2::xy(1.0, 0.0)];
        let index = HashGrid::build(1.0, &base);
        let extra = [Point2::xy(0.5, 0.0)];
        let overlay = GridOverlay::new(&index, &[], &extra);
        assert_eq!(overlay.len(), 3);
        assert!(!overlay.is_empty());
        let hits = overlay.within(&Point2::xy(0.0, 0.0), 0.6);
        assert_eq!(hits, vec![OverlayHit::Base(0), OverlayHit::Extra(0)]);
    }

    #[test]
    #[should_panic(expected = "tombstone mask")]
    fn overlay_rejects_a_short_tombstone_mask() {
        let base = vec![Point2::xy(0.0, 0.0), Point2::xy(1.0, 0.0)];
        let index = HashGrid::build(1.0, &base);
        let _ = GridOverlay::new(&index, &[true], &[]);
    }

    #[test]
    fn duplicate_points_share_a_cell_in_input_order() {
        let points = vec![Point2::xy(1.0, 1.0); 5];
        let index = HashGrid::build(1.0, &points);
        let got = index.within(&Point2::xy(1.0, 1.0), 0.5);
        assert_eq!(got, vec![0, 1, 2, 3, 4], "bucket contents keep input order");
    }
}
