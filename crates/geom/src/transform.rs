//! Exact similarity maps of `R^D`: per-axis reflection, a uniform scale and
//! a translation, composed as `p ↦ s·σ(p) + t`.
//!
//! These are the identity-preserving transforms the metamorphic harness
//! (`mrs_core::engine::metamorphic`) drives the solver family through: a
//! MaxRS optimum is equivariant under any similarity, so a solver's answer on
//! the mapped instance must be the mapped answer.  To make that assertable
//! *bitwise* for the exact solvers, the maps here are designed to be exact in
//! f64 arithmetic:
//!
//! * reflections only flip signs (always exact);
//! * scales are restricted to powers of two ([`SimilarityMap::is_exact`]
//!   checks this), so multiplication only shifts the exponent;
//! * translations are exact whenever the inputs live on a dyadic lattice of
//!   bounded magnitude, which the harness's generators guarantee.
//!
//! The inverse of an exact map is again exact, so mapped answers can be
//! pulled back to the original frame without rounding.

use crate::point::Point;

/// An axis-aligned similarity of `R^D`: `p ↦ scale · σ(p) + shift`, where
/// `σ` negates the axes flagged in `flip`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimilarityMap<const D: usize> {
    /// Uniform scale factor, applied first; must be strictly positive.
    pub scale: f64,
    /// Per-axis sign flip, applied together with the scale.
    pub flip: [bool; D],
    /// Translation, applied last.
    pub shift: [f64; D],
}

impl<const D: usize> SimilarityMap<D> {
    /// The identity map.
    pub const fn identity() -> Self {
        Self { scale: 1.0, flip: [false; D], shift: [0.0; D] }
    }

    /// A pure translation by `shift`.
    pub const fn translation(shift: [f64; D]) -> Self {
        Self { scale: 1.0, flip: [false; D], shift }
    }

    /// A pure uniform scaling by `scale` (strictly positive).
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite.
    pub fn scaling(scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive and finite");
        Self { scale, flip: [false; D], shift: [0.0; D] }
    }

    /// A pure reflection negating the axes flagged in `flip`.
    pub const fn reflection(flip: [bool; D]) -> Self {
        Self { scale: 1.0, flip, shift: [0.0; D] }
    }

    /// Applies the map to a point.
    #[inline]
    pub fn apply(&self, p: &Point<D>) -> Point<D> {
        let mut coords = p.coords();
        for (axis, c) in coords.iter_mut().enumerate() {
            let sign = if self.flip[axis] { -1.0 } else { 1.0 };
            *c = *c * self.scale * sign + self.shift[axis];
        }
        Point::new(coords)
    }

    /// Maps a length (radius, box extent, interval length): lengths pick up
    /// the scale but neither the flips nor the translation.
    #[inline]
    pub fn apply_length(&self, len: f64) -> f64 {
        len * self.scale
    }

    /// The inverse map: `p' ↦ σ(p')/scale − σ(shift)/scale`.
    pub fn inverse(&self) -> Self {
        let inv = 1.0 / self.scale;
        let mut shift = [0.0; D];
        for (axis, s) in shift.iter_mut().enumerate() {
            let sign = if self.flip[axis] { -1.0 } else { 1.0 };
            *s = -self.shift[axis] * sign * inv;
        }
        Self { scale: inv, flip: self.flip, shift }
    }

    /// `true` when the map is exact in f64 arithmetic for dyadic inputs: the
    /// scale is a (positive or negative) power of two and every component is
    /// finite.  Reflections and dyadic translations never round; a
    /// power-of-two scale only shifts the exponent.
    pub fn is_exact(&self) -> bool {
        let exact_scale = self.scale.is_finite() && self.scale > 0.0 && {
            // A finite positive f64 is a power of two iff its mantissa
            // bits are all zero.
            let bits = self.scale.to_bits();
            bits & ((1u64 << 52) - 1) == 0
        };
        exact_scale && self.shift.iter().all(|s| s.is_finite())
    }
}

impl<const D: usize> Default for SimilarityMap<D> {
    fn default() -> Self {
        Self::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    #[test]
    fn identity_is_a_no_op() {
        let p = Point2::xy(1.25, -3.5);
        let m = SimilarityMap::<2>::identity();
        assert_eq!(m.apply(&p), p);
        assert_eq!(m.apply_length(2.5), 2.5);
        assert!(m.is_exact());
    }

    #[test]
    fn exact_round_trip_on_dyadic_lattice() {
        let m = SimilarityMap::<2> { scale: 4.0, flip: [true, false], shift: [2.625, -7.125] };
        assert!(m.is_exact());
        let inv = m.inverse();
        assert!(inv.is_exact());
        for i in -20i32..20 {
            for j in -20i32..20 {
                let p = Point2::xy(f64::from(i) * 0.125, f64::from(j) * 0.125);
                let back = inv.apply(&m.apply(&p));
                assert_eq!(back, p, "round trip must be bitwise exact at {p:?}");
            }
        }
        assert_eq!(inv.apply_length(m.apply_length(1.3)), 1.3);
    }

    #[test]
    fn reflections_flip_signs() {
        let m = SimilarityMap::<2>::reflection([true, false]);
        assert_eq!(m.apply(&Point2::xy(2.0, 3.0)), Point2::xy(-2.0, 3.0));
        // Distances are preserved exactly by sign flips.
        let a = Point2::xy(0.5, 1.5);
        let b = Point2::xy(-2.25, 4.0);
        assert_eq!(m.apply(&a).dist_sq(&m.apply(&b)), a.dist_sq(&b));
    }

    #[test]
    fn non_power_of_two_scales_are_flagged_inexact() {
        assert!(SimilarityMap::<2>::scaling(0.5).is_exact());
        assert!(SimilarityMap::<2>::scaling(8.0).is_exact());
        assert!(!SimilarityMap::<2>::scaling(3.0).is_exact());
        assert!(!SimilarityMap::<2>::scaling(0.1).is_exact());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_is_rejected() {
        let _ = SimilarityMap::<2>::scaling(0.0);
    }
}
