//! A lazy segment tree supporting range-add and range-maximum queries.
//!
//! This is the sweep-line workhorse behind the exact `O(n log n)` rectangle
//! MaxRS baseline (\[IA83\]/\[NB95\]): points become x-intervals that are added to
//! and removed from the tree as a horizontal line sweeps the plane, and the
//! global maximum tracks the best placement seen so far.

/// Lazy segment tree over `len` positions (indices `0..len`), supporting
/// `add(range, delta)` and `max(range)` in `O(log len)`.
#[derive(Clone, Debug)]
pub struct MaxSegmentTree {
    len: usize,
    max: Vec<f64>,
    lazy: Vec<f64>,
}

impl MaxSegmentTree {
    /// Creates a tree over `len` positions, all initialized to `0.0`.
    pub fn new(len: usize) -> Self {
        let size = len.max(1).next_power_of_two() * 2;
        Self { len: len.max(1), max: vec![0.0; size], lazy: vec![0.0; size] }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the tree has no positions (never after construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `delta` to every position in `lo..=hi` (inclusive, clamped).
    pub fn add(&mut self, lo: usize, hi: usize, delta: f64) {
        if lo > hi || lo >= self.len {
            return;
        }
        let hi = hi.min(self.len - 1);
        self.add_rec(1, 0, self.len - 1, lo, hi, delta);
    }

    /// Maximum value over every position in `lo..=hi` (inclusive, clamped).
    /// Returns `f64::NEG_INFINITY` for an empty range.
    pub fn max(&self, lo: usize, hi: usize) -> f64 {
        if lo > hi || lo >= self.len {
            return f64::NEG_INFINITY;
        }
        let hi = hi.min(self.len - 1);
        self.max_rec(1, 0, self.len - 1, lo, hi)
    }

    /// Maximum value over the whole tree.
    pub fn global_max(&self) -> f64 {
        self.max[1] + self.lazy[1]
    }

    /// Index of one position attaining the global maximum.
    pub fn argmax(&self) -> usize {
        let mut node = 1;
        let mut node_lo = 0;
        let mut node_hi = self.len - 1;
        while node_lo < node_hi {
            let mid = (node_lo + node_hi) / 2;
            let left = node * 2;
            let right = node * 2 + 1;
            let left_val = self.max[left] + self.lazy[left];
            let right_val = self.max[right] + self.lazy[right];
            if left_val >= right_val {
                node = left;
                node_hi = mid;
            } else {
                node = right;
                node_lo = mid + 1;
            }
        }
        node_lo
    }

    fn add_rec(
        &mut self,
        node: usize,
        node_lo: usize,
        node_hi: usize,
        lo: usize,
        hi: usize,
        delta: f64,
    ) {
        if hi < node_lo || node_hi < lo {
            return;
        }
        if lo <= node_lo && node_hi <= hi {
            self.lazy[node] += delta;
            return;
        }
        let mid = (node_lo + node_hi) / 2;
        self.add_rec(node * 2, node_lo, mid, lo, hi, delta);
        self.add_rec(node * 2 + 1, mid + 1, node_hi, lo, hi, delta);
        let left = self.max[node * 2] + self.lazy[node * 2];
        let right = self.max[node * 2 + 1] + self.lazy[node * 2 + 1];
        self.max[node] = left.max(right);
    }

    fn max_rec(&self, node: usize, node_lo: usize, node_hi: usize, lo: usize, hi: usize) -> f64 {
        if hi < node_lo || node_hi < lo {
            return f64::NEG_INFINITY;
        }
        if lo <= node_lo && node_hi <= hi {
            return self.max[node] + self.lazy[node];
        }
        let mid = (node_lo + node_hi) / 2;
        let left = self.max_rec(node * 2, node_lo, mid, lo, hi);
        let right = self.max_rec(node * 2 + 1, mid + 1, node_hi, lo, hi);
        self.lazy[node] + left.max(right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// Brute-force reference model.
    struct Naive {
        values: Vec<f64>,
    }

    impl Naive {
        fn new(len: usize) -> Self {
            Self { values: vec![0.0; len] }
        }
        fn add(&mut self, lo: usize, hi: usize, delta: f64) {
            for i in lo..=hi.min(self.values.len() - 1) {
                self.values[i] += delta;
            }
        }
        fn max(&self, lo: usize, hi: usize) -> f64 {
            self.values[lo..=hi.min(self.values.len() - 1)]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
        }
    }

    #[test]
    fn basic_add_and_max() {
        let mut tree = MaxSegmentTree::new(8);
        tree.add(0, 3, 2.0);
        tree.add(2, 5, 1.5);
        assert_eq!(tree.max(0, 7), 3.5);
        assert_eq!(tree.max(4, 7), 1.5);
        assert_eq!(tree.max(6, 7), 0.0);
        assert_eq!(tree.global_max(), 3.5);
        let arg = tree.argmax();
        assert!(arg == 2 || arg == 3, "argmax {arg}");
    }

    #[test]
    fn negative_updates() {
        let mut tree = MaxSegmentTree::new(4);
        tree.add(0, 3, -1.0);
        tree.add(1, 1, 5.0);
        assert_eq!(tree.global_max(), 4.0);
        assert_eq!(tree.argmax(), 1);
        tree.add(1, 1, -5.0);
        assert_eq!(tree.global_max(), -1.0);
    }

    #[test]
    fn randomized_against_naive() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..20 {
            let len = rng.gen_range(1..64);
            let mut tree = MaxSegmentTree::new(len);
            let mut naive = Naive::new(len);
            for _ in 0..200 {
                let lo = rng.gen_range(0..len);
                let hi = rng.gen_range(lo..len);
                if rng.gen_bool(0.6) {
                    let delta = rng.gen_range(-5.0..5.0);
                    tree.add(lo, hi, delta);
                    naive.add(lo, hi, delta);
                } else {
                    let got = tree.max(lo, hi);
                    let want = naive.max(lo, hi);
                    assert!((got - want).abs() < 1e-9, "range [{lo},{hi}] got {got} want {want}");
                }
            }
            let want_global = naive.max(0, len - 1);
            assert!((tree.global_max() - want_global).abs() < 1e-9);
            // argmax must point at a position attaining the global maximum.
            let arg = tree.argmax();
            assert!((naive.values[arg] - want_global).abs() < 1e-9);
        }
    }

    #[test]
    fn single_position_tree() {
        let mut tree = MaxSegmentTree::new(1);
        assert_eq!(tree.global_max(), 0.0);
        tree.add(0, 0, 7.0);
        assert_eq!(tree.global_max(), 7.0);
        assert_eq!(tree.argmax(), 0);
    }
}
