//! Closed intervals on the real line, the query range of the batched MaxRS
//! problem in `R^1` (Section 5) and of the smallest-k-enclosing-interval
//! problem (Section 6).

/// A closed interval `[lo, hi]` on the real line.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Left endpoint.
    pub lo: f64,
    /// Right endpoint.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// The interval of length `len` whose left endpoint is `lo`.
    pub fn from_start(lo: f64, len: f64) -> Self {
        Self::new(lo, lo + len)
    }

    /// Length of the interval.
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the interval.
    pub fn center(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }

    /// Returns `true` if the closed interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo - 1e-12 && x <= self.hi + 1e-12
    }

    /// Returns `true` if the closed intervals overlap.
    pub fn intersects(&self, other: &Self) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Translates the interval by `offset`.
    pub fn translated(&self, offset: f64) -> Self {
        Self::new(self.lo + offset, self.hi + offset)
    }
}

/// Sum of the weights of the points of `(xs, weights)` covered by `interval`.
/// A brute-force helper used as a test oracle by the 1-D solvers.
pub fn covered_weight(xs: &[f64], weights: &[f64], interval: &Interval) -> f64 {
    xs.iter().zip(weights).filter(|(x, _)| interval.contains(**x)).map(|(_, w)| *w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let iv = Interval::new(1.0, 3.5);
        assert_eq!(iv.length(), 2.5);
        assert_eq!(iv.center(), 2.25);
        assert!(iv.contains(1.0));
        assert!(iv.contains(3.5));
        assert!(!iv.contains(3.6));
        assert_eq!(Interval::from_start(2.0, 1.0), Interval::new(2.0, 3.0));
    }

    #[test]
    fn intersection_and_translation() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(2.0, 4.0);
        let c = Interval::new(5.0, 6.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.translated(5.0), Interval::new(5.0, 7.0));
    }

    #[test]
    fn covered_weight_counts_boundaries() {
        let xs = vec![0.0, 1.0, 2.0, 3.0];
        let ws = vec![1.0, 2.0, 4.0, 8.0];
        assert_eq!(covered_weight(&xs, &ws, &Interval::new(1.0, 2.0)), 6.0);
        assert_eq!(covered_weight(&xs, &ws, &Interval::new(-1.0, 10.0)), 15.0);
        assert_eq!(covered_weight(&xs, &ws, &Interval::new(4.0, 5.0)), 0.0);
    }
}
