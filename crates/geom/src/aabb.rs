//! Axis-aligned boxes (`d`-boxes in the paper's terminology), used both as a
//! query range for the exact rectangle MaxRS baseline and as grid cells.

use crate::point::Point;

/// A closed axis-aligned box in `R^D`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb<const D: usize> {
    /// Coordinate-wise lower corner.
    pub lo: Point<D>,
    /// Coordinate-wise upper corner.
    pub hi: Point<D>,
}

/// Convenience alias for rectangles in the plane.
pub type Rect = Aabb<2>;

impl<const D: usize> Aabb<D> {
    /// Creates a box from its lower and upper corners.
    ///
    /// # Panics
    /// Panics if any `lo[i] > hi[i]`.
    pub fn new(lo: Point<D>, hi: Point<D>) -> Self {
        for i in 0..D {
            assert!(lo[i] <= hi[i], "Aabb lower corner exceeds upper corner in dimension {i}");
        }
        Self { lo, hi }
    }

    /// The box centered at `center` with side length `side` in every
    /// dimension.
    pub fn cube(center: Point<D>, side: f64) -> Self {
        let h = side / 2.0;
        let mut lo = center;
        let mut hi = center;
        for i in 0..D {
            lo[i] -= h;
            hi[i] += h;
        }
        Self::new(lo, hi)
    }

    /// Center of the box.
    pub fn center(&self) -> Point<D> {
        self.lo.lerp(&self.hi, 0.5)
    }

    /// Side length along `axis`.
    pub fn side(&self, axis: usize) -> f64 {
        self.hi[axis] - self.lo[axis]
    }

    /// Returns `true` if the closed box contains `p`.
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        for i in 0..D {
            if p[i] < self.lo[i] - 1e-12 || p[i] > self.hi[i] + 1e-12 {
                return false;
            }
        }
        true
    }

    /// Returns `true` if this box intersects `other` (closed intersection).
    pub fn intersects(&self, other: &Self) -> bool {
        for i in 0..D {
            if self.hi[i] < other.lo[i] || other.hi[i] < self.lo[i] {
                return false;
            }
        }
        true
    }

    /// Returns the smallest box containing both boxes.
    pub fn union(&self, other: &Self) -> Self {
        Self { lo: self.lo.component_min(&other.lo), hi: self.hi.component_max(&other.hi) }
    }

    /// Volume (Lebesgue measure) of the box.
    pub fn volume(&self) -> f64 {
        (0..D).map(|i| self.side(i)).product()
    }

    /// Radius of the circumscribed ball (half the diagonal length).
    pub fn circumradius(&self) -> f64 {
        self.lo.dist(&self.hi) / 2.0
    }

    /// Enumerates all `2^D` corners of the box.
    pub fn corners(&self) -> Vec<Point<D>> {
        let mut out = Vec::with_capacity(1 << D);
        for mask in 0..(1usize << D) {
            let mut p = self.lo;
            for i in 0..D {
                if mask & (1 << i) != 0 {
                    p[i] = self.hi[i];
                }
            }
            out.push(p);
        }
        out
    }

    /// Grows the box by `margin` in every direction.
    pub fn inflated(&self, margin: f64) -> Self {
        let mut lo = self.lo;
        let mut hi = self.hi;
        for i in 0..D {
            lo[i] -= margin;
            hi[i] += margin;
        }
        Self::new(lo, hi)
    }
}

/// Smallest axis-aligned box containing every point, or `None` if empty.
pub fn bounding_box<const D: usize>(points: &[Point<D>]) -> Option<Aabb<D>> {
    let first = *points.first()?;
    let mut lo = first;
    let mut hi = first;
    for p in &points[1..] {
        lo = lo.component_min(p);
        hi = hi.component_max(p);
    }
    Some(Aabb::new(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point2;

    #[test]
    fn contains_and_intersects() {
        let a = Aabb::new(Point2::xy(0.0, 0.0), Point2::xy(2.0, 2.0));
        let b = Aabb::new(Point2::xy(1.0, 1.0), Point2::xy(3.0, 3.0));
        let c = Aabb::new(Point2::xy(5.0, 5.0), Point2::xy(6.0, 6.0));
        assert!(a.contains(&Point2::xy(1.0, 1.5)));
        assert!(a.contains(&Point2::xy(2.0, 2.0)));
        assert!(!a.contains(&Point2::xy(2.1, 1.0)));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn cube_and_center() {
        let c = Aabb::cube(Point2::xy(1.0, 1.0), 2.0);
        assert_eq!(c.lo, Point2::xy(0.0, 0.0));
        assert_eq!(c.hi, Point2::xy(2.0, 2.0));
        assert_eq!(c.center(), Point2::xy(1.0, 1.0));
        assert!((c.volume() - 4.0).abs() < 1e-12);
        assert!((c.circumradius() - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn corners_enumeration() {
        let c = Aabb::new(Point::new([0.0, 0.0, 0.0]), Point::new([1.0, 2.0, 3.0]));
        let corners = c.corners();
        assert_eq!(corners.len(), 8);
        assert!(corners.contains(&Point::new([0.0, 0.0, 0.0])));
        assert!(corners.contains(&Point::new([1.0, 2.0, 3.0])));
        assert!(corners.contains(&Point::new([1.0, 0.0, 3.0])));
    }

    #[test]
    fn union_and_bounding_box() {
        let a = Aabb::new(Point2::xy(0.0, 0.0), Point2::xy(1.0, 1.0));
        let b = Aabb::new(Point2::xy(2.0, -1.0), Point2::xy(3.0, 0.5));
        let u = a.union(&b);
        assert_eq!(u.lo, Point2::xy(0.0, -1.0));
        assert_eq!(u.hi, Point2::xy(3.0, 1.0));

        let pts = vec![Point2::xy(1.0, 4.0), Point2::xy(-1.0, 2.0), Point2::xy(0.0, 9.0)];
        let bb = bounding_box(&pts).unwrap();
        assert_eq!(bb.lo, Point2::xy(-1.0, 2.0));
        assert_eq!(bb.hi, Point2::xy(1.0, 9.0));
        assert!(bounding_box::<2>(&[]).is_none());
    }

    #[test]
    fn inflate() {
        let a = Aabb::new(Point2::xy(0.0, 0.0), Point2::xy(1.0, 1.0)).inflated(0.5);
        assert_eq!(a.lo, Point2::xy(-0.5, -0.5));
        assert_eq!(a.hi, Point2::xy(1.5, 1.5));
    }
}
