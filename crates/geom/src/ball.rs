//! Euclidean `d`-balls, the query range of Theorems 1.1, 1.2, 1.5 and 1.6 and
//! the dual objects of Section 1.4 (each weighted input point becomes a unit
//! ball centered at it).

use crate::aabb::Aabb;
use crate::point::Point;

/// A closed Euclidean ball in `R^D`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ball<const D: usize> {
    /// Center of the ball.
    pub center: Point<D>,
    /// Radius of the ball (non-negative).
    pub radius: f64,
}

/// Convenience alias for disks in the plane.
pub type Disk = Ball<2>;

impl<const D: usize> Ball<D> {
    /// Creates a ball from its center and radius.
    ///
    /// # Panics
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Point<D>, radius: f64) -> Self {
        assert!(radius.is_finite() && radius >= 0.0, "ball radius must be finite and non-negative");
        Self { center, radius }
    }

    /// A unit-radius ball, the dual object of Section 1.4.
    pub fn unit(center: Point<D>) -> Self {
        Self::new(center, 1.0)
    }

    /// Returns `true` if the closed ball contains `p`.
    #[inline]
    pub fn contains(&self, p: &Point<D>) -> bool {
        // A small relative tolerance keeps boundary points (which the closed
        // ball must contain) from being dropped to floating-point noise; the
        // exact sweeps in `mrs-core` rely on this.
        let r = self.radius * (1.0 + 1e-12) + 1e-12;
        self.center.dist_sq(p) <= r * r
    }

    /// Returns `true` if the closed ball contains `p` with an explicit slack.
    #[inline]
    pub fn contains_with_tolerance(&self, p: &Point<D>, tol: f64) -> bool {
        let r = self.radius + tol;
        self.center.dist_sq(p) <= r * r
    }

    /// Returns `true` if this ball intersects `other` (closed intersection).
    #[inline]
    pub fn intersects_ball(&self, other: &Self) -> bool {
        let r = self.radius + other.radius;
        self.center.dist_sq(&other.center) <= r * r * (1.0 + 1e-12)
    }

    /// Returns `true` if the ball intersects the axis-aligned box `aabb`.
    pub fn intersects_aabb(&self, aabb: &Aabb<D>) -> bool {
        // Distance from the center to the box, clamped per dimension.
        let mut dist_sq = 0.0;
        for i in 0..D {
            let c = self.center[i];
            let lo = aabb.lo[i];
            let hi = aabb.hi[i];
            if c < lo {
                dist_sq += (lo - c) * (lo - c);
            } else if c > hi {
                dist_sq += (c - hi) * (c - hi);
            }
        }
        dist_sq <= self.radius * self.radius * (1.0 + 1e-12) + 1e-12
    }

    /// Returns `true` if the ball fully contains the axis-aligned box `aabb`.
    pub fn contains_aabb(&self, aabb: &Aabb<D>) -> bool {
        // The farthest point of the box from the center is a corner; check the
        // farthest corner coordinate-wise.
        let mut dist_sq = 0.0;
        for i in 0..D {
            let c = self.center[i];
            let d = (c - aabb.lo[i]).abs().max((c - aabb.hi[i]).abs());
            dist_sq += d * d;
        }
        dist_sq <= self.radius * self.radius * (1.0 + 1e-12)
    }

    /// The axis-aligned bounding box of the ball.
    pub fn bounding_box(&self) -> Aabb<D> {
        let mut lo = self.center;
        let mut hi = self.center;
        for i in 0..D {
            lo[i] -= self.radius;
            hi[i] += self.radius;
        }
        Aabb::new(lo, hi)
    }

    /// Volume of the ball (Lebesgue measure in `R^D`).
    pub fn volume(&self) -> f64 {
        unit_ball_volume(D) * self.radius.powi(D as i32)
    }

    /// Scales the ball about the origin by `factor` (both center and radius).
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(self.center.scale(factor), self.radius * factor)
    }
}

impl Ball<2> {
    /// The two intersection points of this circle's boundary with `other`'s
    /// boundary, or `None` if the boundaries do not cross (disjoint, nested,
    /// or identical circles).
    pub fn boundary_intersections(&self, other: &Self) -> Option<(Point<2>, Point<2>)> {
        let d = self.center.dist(&other.center);
        if d < 1e-15 {
            return None;
        }
        let (r0, r1) = (self.radius, other.radius);
        if d > r0 + r1 || d < (r0 - r1).abs() {
            return None;
        }
        // Classic two-circle intersection: a = distance from self.center to the
        // chord's midpoint along the center line, h = half chord length.
        let a = (r0 * r0 - r1 * r1 + d * d) / (2.0 * d);
        let h_sq = r0 * r0 - a * a;
        let h = h_sq.max(0.0).sqrt();
        let ex = (other.center.x() - self.center.x()) / d;
        let ey = (other.center.y() - self.center.y()) / d;
        let mx = self.center.x() + a * ex;
        let my = self.center.y() + a * ey;
        let p1 = Point::xy(mx + h * ey, my - h * ex);
        let p2 = Point::xy(mx - h * ey, my + h * ex);
        Some((p1, p2))
    }
}

/// Volume of the unit ball in `R^d`, computed via the gamma function
/// recurrence `V_d = V_{d-2} * 2π / d` with `V_0 = 1`, `V_1 = 2`.
pub fn unit_ball_volume(d: usize) -> f64 {
    match d {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(d - 2) * 2.0 * std::f64::consts::PI / d as f64,
    }
}

/// Surface area of the unit sphere `S^{d-1}` bounding the unit ball in `R^d`:
/// `A_d = d * V_d`.
pub fn unit_sphere_area(d: usize) -> f64 {
    d as f64 * unit_ball_volume(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn contains_boundary_and_interior() {
        let b = Ball::unit(Point::xy(0.0, 0.0));
        assert!(b.contains(&Point::xy(0.5, 0.5)));
        assert!(b.contains(&Point::xy(1.0, 0.0)));
        assert!(!b.contains(&Point::xy(1.0, 0.1)));
    }

    #[test]
    fn ball_ball_intersection() {
        let a = Ball::unit(Point::xy(0.0, 0.0));
        let b = Ball::unit(Point::xy(1.5, 0.0));
        let c = Ball::unit(Point::xy(2.5, 0.0));
        assert!(a.intersects_ball(&b));
        assert!(!a.intersects_ball(&c));
        // Tangent balls intersect (closed sets).
        let t = Ball::unit(Point::xy(2.0, 0.0));
        assert!(a.intersects_ball(&t));
    }

    #[test]
    fn ball_aabb_intersection() {
        let b = Ball::new(Point::xy(0.0, 0.0), 1.0);
        let inside = Aabb::new(Point::xy(-0.1, -0.1), Point::xy(0.1, 0.1));
        let overlapping = Aabb::new(Point::xy(0.9, -0.5), Point::xy(2.0, 0.5));
        let outside = Aabb::new(Point::xy(2.0, 2.0), Point::xy(3.0, 3.0));
        // Corner-near box: closest point of the box is at distance > 1.
        let corner = Aabb::new(Point::xy(0.8, 0.8), Point::xy(2.0, 2.0));
        assert!(b.intersects_aabb(&inside));
        assert!(b.intersects_aabb(&overlapping));
        assert!(!b.intersects_aabb(&outside));
        assert!(!b.intersects_aabb(&corner));
        assert!(b.contains_aabb(&inside));
        assert!(!b.contains_aabb(&overlapping));
    }

    #[test]
    fn unit_volumes_match_closed_forms() {
        assert!((unit_ball_volume(2) - PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 * PI / 3.0).abs() < 1e-12);
        assert!((unit_sphere_area(2) - 2.0 * PI).abs() < 1e-12);
        assert!((unit_sphere_area(3) - 4.0 * PI).abs() < 1e-12);
    }

    #[test]
    fn circle_intersections() {
        let a = Ball::unit(Point::xy(0.0, 0.0));
        let b = Ball::unit(Point::xy(1.0, 0.0));
        let (p, q) = a.boundary_intersections(&b).unwrap();
        for pt in [p, q] {
            assert!((a.center.dist(&pt) - 1.0).abs() < 1e-9);
            assert!((b.center.dist(&pt) - 1.0).abs() < 1e-9);
        }
        // Disjoint circles have no boundary intersection.
        let far = Ball::unit(Point::xy(5.0, 0.0));
        assert!(a.boundary_intersections(&far).is_none());
        // Concentric circles have none either.
        let nested = Ball::new(Point::xy(0.0, 0.0), 0.3);
        assert!(a.boundary_intersections(&nested).is_none());
    }

    #[test]
    fn bounding_box_encloses_ball() {
        let b = Ball::new(Point::new([1.0, -2.0, 0.5]), 2.0);
        let bb = b.bounding_box();
        assert_eq!(bb.lo, Point::new([-1.0, -4.0, -1.5]));
        assert_eq!(bb.hi, Point::new([3.0, 0.0, 2.5]));
    }
}
