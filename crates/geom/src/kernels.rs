//! Multi-lane, branch-free filter kernels over the CSR grid's SoA arrays.
//!
//! The planar batch is candidates-bound: millions of "is this point within
//! `r` of the query?" tests over contiguous coordinate rows.  This module is
//! the single home of that test.  Every kernel processes [`LANES`] slots per
//! block with straight-line arithmetic (no per-slot branch), accumulates a
//! hit *bitmask*, and only then drains the set bits in ascending order — so
//! the visit order, and therefore every downstream accumulation and
//! tie-break, is **bit-identical to the scalar reference** at any lane width.
//!
//! ## Lane layout
//!
//! The CSR grid stores coordinates axis-major (`coords[axis * n + slot]`),
//! so the slots of one cell row are contiguous *per axis*:
//!
//! ```text
//!              slot:   s   s+1  s+2  s+3  s+4  s+5  s+6  s+7
//! coords[0*n + ..]:  x0   x1   x2   x3   x4   x5   x6   x7   ── one load
//! coords[1*n + ..]:  y0   y1   y2   y3   y4   y5   y6   y7   ── one load
//!                     │    │    │                        │
//!                     ▼    ▼    ▼                        ▼
//!        acc[l] = Σ_axis (coords[axis*n+s+l] - q[axis])²      (per lane)
//!        mask  |= (acc[l] <= r²) << l                         (no branch)
//!        while mask != 0 { visit(s + mask.trailing_zeros()) } (in order)
//! ```
//!
//! The arithmetic per lane is exactly the scalar expression — same operand
//! order, same rounding — so `acc[l]` equals the scalar `dist_sq` bit for
//! bit, and the mask drain preserves ascending slot order.  LLVM
//! auto-vectorizes the fixed-size lane loops on any target; no `std::arch`
//! intrinsics and no external SIMD crates are involved.
//!
//! ## The f32 sieve ("sieve then verify")
//!
//! [`filter_within_sieve`] first compares *f32* squared distances against a
//! **widened** threshold, and only re-tests the survivors with the exact f64
//! comparison.  The widening makes the sieve one-sided: with every input
//! coordinate bounded by `M` in magnitude, the f32 evaluation of a *true
//! hit's* squared distance exceeds the f64 value by at most
//! `≈ D·ε₃₂·(4·M·r + 3·r²) + 4·D·M²·ε₃₂²` (input rounding scales with `M`,
//! but the dominant cross term scales with `M·r` — see [`sieve_threshold`]
//! for the derivation), so a threshold widened by
//! `D·ε₃₂·(32·M·r + 8·r² + 32·M²·ε₃₂ + 1)` can never reject a true hit —
//! f32 lane math only ever *discards* points that are provably outside the
//! ball.
//! Survivors go through the same f64 comparison as the scalar path, so the
//! hit set (and visit order) stays bit-identical; the only observable
//! difference is the [`sieve_rejected`] work counter.  When coordinates are
//! too large for the bound to be meaningful (`M ≥ 1e17`, near the f32 range
//! where intermediate squares overflow), [`sieve_supported`] reports `false`
//! and callers fall back to the laned f64 kernel.
//!
//! ## Adding a laned kernel
//!
//! 1. Write the scalar expression once, per slot, exactly as the reference
//!    code computes it (operand order matters for float bit-identity).
//! 2. Evaluate it for `LANES` slots into a local `[_; LANES]` array with a
//!    plain `for l in 0..LANES` loop over contiguous slices — no `if` inside.
//! 3. Fold the per-lane predicate into a `u32` mask, then drain set bits
//!    with `trailing_zeros` / `mask &= mask - 1` and call the visitor.
//! 4. Handle the `< LANES` tail with the scalar expression.
//! 5. Pin it in `proptest` against the scalar reference for bit-identical
//!    outputs (see `tests/kernel_invariance.rs`).
//!
//! [`sieve_rejected`]: crate::hashgrid::GridQueryStats::sieve_rejected

use std::sync::atomic::{AtomicU8, Ordering};

/// Slots processed per straight-line block by the laned kernels.
pub const LANES: usize = 8;

/// Which kernel answers the CSR distance filters.
///
/// All three modes return bit-identical hits in identical order; they differ
/// only in throughput and in the [`sieve_rejected`] counter.  The process
/// default is [`KernelMode::SieveF32`]; its halved-bandwidth first pass pays
/// off when most candidates miss or the index outgrows the cache, while
/// [`KernelMode::LanedF64`] wins when true hits dominate (every survivor
/// pays the f64 verify on top of the f32 pass) — the committed
/// `BENCH_kernels.json` records both regimes.
///
/// [`sieve_rejected`]: crate::hashgrid::GridQueryStats::sieve_rejected
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum KernelMode {
    /// One candidate at a time, f64 — the reference the other modes are
    /// pinned against.
    ScalarF64 = 0,
    /// [`LANES`]-wide f64 blocks with mask-accumulate drains.
    LanedF64 = 1,
    /// f32 lane pass against a widened radius rejects the bulk; survivors
    /// are re-verified with the exact f64 comparison.
    SieveF32 = 2,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(KernelMode::SieveF32 as u8);

/// The process-wide kernel mode (see [`set_kernel_mode`]).
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        0 => KernelMode::ScalarF64,
        1 => KernelMode::LanedF64,
        _ => KernelMode::SieveF32,
    }
}

/// Selects the kernel that answers subsequent CSR distance filters.
///
/// Process-global and immediate; intended for benchmarks, baselines and the
/// invariance tests that A/B the modes.  Because the modes are exact, the
/// setting never changes any answer — only throughput and the
/// `sieve_rejected` counter.
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// Squared Euclidean distance between two coordinate arrays — **the** scalar
/// distance expression every kernel (and [`Point::dist_sq`]) evaluates.
///
/// [`Point::dist_sq`]: crate::point::Point::dist_sq
#[inline(always)]
pub fn dist_sq<const D: usize>(a: &[f64; D], b: &[f64; D]) -> f64 {
    let mut acc = 0.0;
    for axis in 0..D {
        let d = a[axis] - b[axis];
        acc += d * d;
    }
    acc
}

/// Scalar reference filter: visits every slot in `lo..hi` whose point lies
/// within the closed ball `dist²(q) <= r_sq`, in ascending slot order.
///
/// `coords` is the axis-major SoA array (`coords[axis * n + slot]`).
#[inline]
pub fn filter_within_scalar<const D: usize, F: FnMut(usize)>(
    coords: &[f64],
    n: usize,
    lo: usize,
    hi: usize,
    q: &[f64; D],
    r_sq: f64,
    mut on_hit: F,
) {
    for slot in lo..hi {
        let mut acc = 0.0;
        for axis in 0..D {
            let d = coords[axis * n + slot] - q[axis];
            acc += d * d;
        }
        if acc <= r_sq {
            on_hit(slot);
        }
    }
}

/// Laned f64 filter: [`LANES`] slots per block, mask-accumulate, in-order
/// drain.  Hit set and visit order are bit-identical to
/// [`filter_within_scalar`].
#[inline]
pub fn filter_within_laned<const D: usize, F: FnMut(usize)>(
    coords: &[f64],
    n: usize,
    lo: usize,
    hi: usize,
    q: &[f64; D],
    r_sq: f64,
    mut on_hit: F,
) {
    let mut slot = lo;
    while slot + LANES <= hi {
        let mut acc = [0.0f64; LANES];
        for axis in 0..D {
            let row = &coords[axis * n + slot..axis * n + slot + LANES];
            for l in 0..LANES {
                let d = row[l] - q[axis];
                acc[l] += d * d;
            }
        }
        let mut mask = 0u32;
        for (l, &a) in acc.iter().enumerate() {
            mask |= u32::from(a <= r_sq) << l;
        }
        while mask != 0 {
            on_hit(slot + mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
        slot += LANES;
    }
    filter_within_scalar(coords, n, slot, hi, q, r_sq, on_hit);
}

/// Whether the f32 sieve's error bound is meaningful for coordinates of
/// magnitude at most `max_abs` (query coordinates included).
///
/// Beyond `1e17` the widened threshold no longer separates anything (and f32
/// squares approach overflow), so callers should fall back to the laned f64
/// kernel.  Non-finite bounds also disable the sieve.
#[inline]
pub fn sieve_supported(max_abs: f64) -> bool {
    max_abs.is_finite() && max_abs < 1e17
}

/// The widened f32 threshold of the sieve for a query with exact squared
/// radius `r_sq`, where every coordinate involved (points *and* query) has
/// magnitude at most `max_abs`.
///
/// Soundness: consider a *true hit*, a point with f64 `dist² <= r_sq` (so
/// every per-axis difference `d` satisfies `|d| <= r`).  Rounding the inputs
/// to f32 perturbs each difference by at most `e = 2·M·ε₃₂ + r·ε₃₂`, so the
/// f32 accumulation over `D` axes exceeds the f64 value by at most
/// `D·ε₃₂·(4·M·r + 3·r²) + 4·D·M²·ε₃₂² + O(ε₃₂²·M·r)` — linear in `M·r`
/// from the cross term `2·|d|·e`, quadratic in `M·ε₃₂` from `e²` (which
/// dominates only once `M·ε₃₂ > r`).  The slack
/// `D·ε₃₂·(32·M·r + 8·r² + 32·M²·ε₃₂ + 1)` covers every term with at least
/// 8× margin, and the final `1 + 4ε₃₂` factor absorbs the rounding of the
/// threshold itself to f32.  A true hit therefore always lands at or below
/// the widened threshold — the sieve can only reject true misses.
///
/// Scaling the slack with `M·r` instead of `M²` is what keeps the sieve
/// *selective*: at `M = 100, r = ¼` an `M²`-proportional slack (≈ 0.08)
/// would exceed `r²` itself and let nearly every miss through, while this
/// bound widens `r` by less than one part in 10⁴.
#[inline]
pub fn sieve_threshold<const D: usize>(r_sq: f64, max_abs: f64) -> f32 {
    let eps = f32::EPSILON as f64;
    let r = r_sq.sqrt();
    let slack =
        D as f64 * eps * (32.0 * max_abs * r + 8.0 * r_sq + 32.0 * max_abs * max_abs * eps + 1.0);
    ((r_sq + slack) as f32) * (1.0 + 4.0 * f32::EPSILON)
}

/// f32 sieve-then-verify filter: an f32 lane pass against the widened
/// threshold `r32_sq` (from [`sieve_threshold`]) rejects the bulk of the
/// slots, survivors are re-tested with the exact f64 comparison
/// `dist²(q) <= r_sq`.  Returns the number of slots the sieve rejected
/// (never a true hit — see the module docs for the exactness argument).
///
/// `coords32` is the f32 mirror of `coords` in the same axis-major layout.
/// The argument list mirrors [`filter_within_scalar`] plus the three f32
/// sieve inputs — a hot-loop primitive, kept flat rather than bundled.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn filter_within_sieve<const D: usize, F: FnMut(usize)>(
    coords: &[f64],
    coords32: &[f32],
    n: usize,
    lo: usize,
    hi: usize,
    q: &[f64; D],
    q32: &[f32; D],
    r_sq: f64,
    r32_sq: f32,
    mut on_hit: F,
) -> usize {
    let mut rejected = 0usize;
    let mut slot = lo;
    while slot + LANES <= hi {
        let mut acc = [0.0f32; LANES];
        for axis in 0..D {
            let row = &coords32[axis * n + slot..axis * n + slot + LANES];
            for l in 0..LANES {
                let d = row[l] - q32[axis];
                acc[l] += d * d;
            }
        }
        let mut mask = 0u32;
        for (l, &a) in acc.iter().enumerate() {
            mask |= u32::from(a <= r32_sq) << l;
        }
        rejected += LANES - mask.count_ones() as usize;
        while mask != 0 {
            let s = slot + mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let mut exact = 0.0f64;
            for axis in 0..D {
                let d = coords[axis * n + s] - q[axis];
                exact += d * d;
            }
            if exact <= r_sq {
                on_hit(s);
            }
        }
        slot += LANES;
    }
    // Tail: f32 pre-test per slot, exact verify — same one-sidedness.
    for s in slot..hi {
        let mut acc32 = 0.0f32;
        for axis in 0..D {
            let d = coords32[axis * n + s] - q32[axis];
            acc32 += d * d;
        }
        if acc32 > r32_sq {
            rejected += 1;
            continue;
        }
        let mut exact = 0.0f64;
        for axis in 0..D {
            let d = coords[axis * n + s] - q[axis];
            exact += d * d;
        }
        if exact <= r_sq {
            on_hit(s);
        }
    }
    rejected
}

/// Branch-free band filter: visits every index `i` of `vals` (ascending)
/// with `lo_val <= vals[i] <= hi_val` — the strip-materialization primitive
/// of the rectangle sweep.  Laned mask-accumulate like the ball filters;
/// the per-lane predicate is the exact scalar comparison.
#[inline]
pub fn filter_in_band<F: FnMut(usize)>(vals: &[f64], lo_val: f64, hi_val: f64, mut on_hit: F) {
    let mut i = 0usize;
    while i + LANES <= vals.len() {
        let block = &vals[i..i + LANES];
        let mut mask = 0u32;
        for (l, &v) in block.iter().enumerate() {
            mask |= u32::from(lo_val <= v && v <= hi_val) << l;
        }
        while mask != 0 {
            on_hit(i + mask.trailing_zeros() as usize);
            mask &= mask - 1;
        }
        i += LANES;
    }
    while i < vals.len() {
        if lo_val <= vals[i] && vals[i] <= hi_val {
            on_hit(i);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn soa(points: &[[f64; 2]]) -> (Vec<f64>, Vec<f32>, usize) {
        let n = points.len();
        let mut coords = vec![0.0f64; 2 * n];
        for (i, p) in points.iter().enumerate() {
            coords[i] = p[0];
            coords[n + i] = p[1];
        }
        let coords32: Vec<f32> = coords.iter().map(|&c| c as f32).collect();
        (coords, coords32, n)
    }

    fn hits_scalar(coords: &[f64], n: usize, q: &[f64; 2], r_sq: f64) -> Vec<usize> {
        let mut out = Vec::new();
        filter_within_scalar(coords, n, 0, n, q, r_sq, |s| out.push(s));
        out
    }

    #[test]
    fn laned_matches_scalar_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..50 {
            let n = rng.gen_range(0..100);
            let points: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)]).collect();
            let (coords, _, n) = soa(&points);
            let q = [rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)];
            let r_sq = rng.gen_range(0.0..30.0);
            let want = hits_scalar(&coords, n, &q, r_sq);
            let mut got = Vec::new();
            filter_within_laned(&coords, n, 0, n, &q, r_sq, |s| got.push(s));
            assert_eq!(got, want, "round {round}");
        }
    }

    #[test]
    fn sieve_matches_scalar_and_rejects() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut total_rejected = 0usize;
        for round in 0..50 {
            let n = rng.gen_range(0..100);
            let points: Vec<[f64; 2]> =
                (0..n).map(|_| [rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)]).collect();
            let (coords, coords32, n) = soa(&points);
            let q = [rng.gen_range(-50.0..50.0), rng.gen_range(-50.0..50.0)];
            let q32 = [q[0] as f32, q[1] as f32];
            let r_sq = rng.gen_range(0.0..100.0);
            let r32 = sieve_threshold::<2>(r_sq, 50.0);
            let want = hits_scalar(&coords, n, &q, r_sq);
            let mut got = Vec::new();
            let rejected =
                filter_within_sieve(&coords, &coords32, n, 0, n, &q, &q32, r_sq, r32, |s| {
                    got.push(s)
                });
            assert_eq!(got, want, "round {round}");
            assert!(rejected + want.len() <= n, "round {round}");
            total_rejected += rejected;
        }
        assert!(total_rejected > 0, "the sieve must actually reject something");
    }

    #[test]
    fn sieve_never_rejects_boundary_snapped_hits() {
        // Points exactly at distance r along the axes, plus ulp-perturbed
        // variants: the widened threshold must keep every true hit.
        let r = 3.0f64;
        for scale in [1.0f64, 1e3, 1e8, 1e12] {
            let cx = scale;
            let q = [cx, 0.0];
            let mut pts = Vec::new();
            for k in 0..64 {
                let theta = k as f64 * std::f64::consts::TAU / 64.0;
                let (s, c) = theta.sin_cos();
                pts.push([cx + r * c, r * s]);
                pts.push([cx + (r * c).next_up(), (r * s).next_down()]);
            }
            let (coords, coords32, n) = soa(&pts);
            let q32 = [q[0] as f32, q[1] as f32];
            let r_sq = r * r;
            let r32 = sieve_threshold::<2>(r_sq, cx + r);
            let want = hits_scalar(&coords, n, &q, r_sq);
            let mut got = Vec::new();
            filter_within_sieve(&coords, &coords32, n, 0, n, &q, &q32, r_sq, r32, |s| got.push(s));
            assert_eq!(got, want, "scale {scale}");
        }
    }

    #[test]
    fn band_filter_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.gen_range(0..60);
            let vals: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let lo = rng.gen_range(-5.0..5.0);
            let hi = lo + rng.gen_range(0.0..4.0);
            let want: Vec<usize> = (0..n).filter(|&i| lo <= vals[i] && vals[i] <= hi).collect();
            let mut got = Vec::new();
            filter_in_band(&vals, lo, hi, |i| got.push(i));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn mode_switch_round_trips() {
        let before = kernel_mode();
        set_kernel_mode(KernelMode::ScalarF64);
        assert_eq!(kernel_mode(), KernelMode::ScalarF64);
        set_kernel_mode(KernelMode::LanedF64);
        assert_eq!(kernel_mode(), KernelMode::LanedF64);
        set_kernel_mode(KernelMode::SieveF32);
        assert_eq!(kernel_mode(), KernelMode::SieveF32);
        set_kernel_mode(before);
    }

    #[test]
    fn sieve_support_bounds() {
        assert!(sieve_supported(0.0));
        assert!(sieve_supported(1e12));
        assert!(!sieve_supported(1e18));
        assert!(!sieve_supported(f64::INFINITY));
        assert!(!sieve_supported(f64::NAN));
    }

    #[test]
    fn dist_sq_matches_the_inline_expression() {
        let a = [1.5, -2.25, 3.0];
        let b = [0.5, 0.75, -1.0];
        let want = (1.0f64 * 1.0) + (3.0f64 * 3.0) + (4.0f64 * 4.0);
        assert_eq!(dist_sq(&a, &b), want);
    }
}
