//! Cross-module property tests for the geometric substrate.
//!
//! These complement the per-module unit tests with randomized invariants that
//! tie several primitives together: the shifted-grid family really satisfies
//! Lemma 2.1, grid/ball/box predicates are mutually consistent, angular-arc
//! arithmetic conserves measure, and the union-of-disks boundary behaves like
//! a boundary.

use mrs_geom::arcs::{complement_on_circle, covered_measure, AngularInterval, TAU};
use mrs_geom::grid::{Grid, ShiftedGrids};
use mrs_geom::union_disks::{union_boundary_arcs, union_perimeter};
use mrs_geom::{Aabb, Ball, HashGrid, Point, Point2};
use proptest::prelude::*;

proptest! {
    /// Lemma 2.1: for the full shifted family with s = 2ε/√d and Δ = ε², every
    /// point is Δ-near its cell center in at least one grid.
    #[test]
    fn lemma_2_1_holds_for_random_points_and_eps(
        x in -20.0f64..20.0,
        y in -20.0f64..20.0,
        eps in 0.15f64..0.45,
    ) {
        let d = 2.0f64;
        let family = ShiftedGrids::<2>::full(2.0 * eps / d.sqrt(), eps * eps);
        prop_assert!(family.near_grid_for(&Point2::xy(x, y)).is_some());
    }

    /// Every cell reported as intersecting a ball really intersects it, and
    /// the cell containing the center is always among them.
    #[test]
    fn grid_ball_cell_enumeration_is_sound_and_covers_the_center(
        cx in -10.0f64..10.0,
        cy in -10.0f64..10.0,
        radius in 0.1f64..3.0,
        side in 0.2f64..2.0,
    ) {
        let grid = Grid::<2>::at_origin(side);
        let ball = Ball::new(Point2::xy(cx, cy), radius);
        let cells = grid.cells_intersecting_ball(&ball);
        prop_assert!(cells.contains(&grid.cell_of(&ball.center)));
        for cell in &cells {
            prop_assert!(ball.intersects_aabb(&grid.cell_aabb(cell)));
        }
    }

    /// The covered measure of a set of angular intervals plus the measure of
    /// its complement always equals the full circle.
    #[test]
    fn angular_cover_and_complement_partition_the_circle(
        raw in proptest::collection::vec((0.0f64..TAU, 0.01f64..TAU), 0..12),
    ) {
        let intervals: Vec<AngularInterval> =
            raw.iter().map(|&(s, w)| AngularInterval::new(s, w.min(TAU))).collect();
        let covered = covered_measure(&intervals);
        let gaps: f64 = complement_on_circle(&intervals).iter().map(|(lo, hi)| hi - lo).sum();
        prop_assert!((covered + gaps - TAU).abs() < 1e-6);
    }

    /// The union boundary of a disk set never exceeds the total perimeter of
    /// the disks, and sampled boundary points are never strictly inside any
    /// other disk of the set.
    #[test]
    fn union_boundary_is_shorter_than_total_perimeter_and_truly_exposed(
        centers in proptest::collection::vec((0.0f64..6.0, 0.0f64..6.0), 1..25),
    ) {
        let disks: Vec<Ball<2>> =
            centers.iter().map(|&(x, y)| Ball::unit(Point2::xy(x, y))).collect();
        let arcs = union_boundary_arcs(&disks);
        let perimeter = union_perimeter(&disks, &arcs);
        prop_assert!(perimeter <= disks.len() as f64 * TAU + 1e-9);
        prop_assert!(perimeter > 0.0);
        for arc in arcs.iter().take(30) {
            let p = arc.midpoint(&disks);
            for (j, d) in disks.iter().enumerate() {
                if j != arc.disk {
                    prop_assert!(d.center.dist(&p) >= d.radius - 1e-6);
                }
            }
        }
    }

    /// Ball–box intersection agrees with a dense point sample of the box.
    #[test]
    fn ball_aabb_intersection_agrees_with_sampling(
        bx in -4.0f64..4.0,
        by in -4.0f64..4.0,
        half in 0.1f64..2.0,
        cx in -4.0f64..4.0,
        cy in -4.0f64..4.0,
        radius in 0.1f64..2.5,
    ) {
        let aabb = Aabb::cube(Point2::xy(bx, by), 2.0 * half);
        let ball = Ball::new(Point2::xy(cx, cy), radius);
        // Sample a grid of points inside the box; if any is inside the ball,
        // the predicates must agree that they intersect.
        let mut any_inside = false;
        let steps = 12;
        for i in 0..=steps {
            for j in 0..=steps {
                let p = Point2::xy(
                    aabb.lo.x() + aabb.side(0) * i as f64 / steps as f64,
                    aabb.lo.y() + aabb.side(1) * j as f64 / steps as f64,
                );
                if ball.contains(&p) {
                    any_inside = true;
                }
            }
        }
        if any_inside {
            prop_assert!(ball.intersects_aabb(&aabb));
        }
        if !ball.intersects_aabb(&aabb) {
            prop_assert!(!any_inside);
        }
    }

    /// The hash-grid neighbourhood query returns exactly the brute-force
    /// neighbour set, for arbitrary cell sizes.
    #[test]
    fn hashgrid_matches_brute_force(
        pts in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..60),
        cell in 0.3f64..3.0,
        qx in 0.0f64..10.0,
        qy in 0.0f64..10.0,
        radius in 0.1f64..4.0,
    ) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::xy(x, y)).collect();
        let index = HashGrid::build(cell, &points);
        let q = Point2::xy(qx, qy);
        let mut got = index.within(&q, radius);
        got.sort_unstable();
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&q) <= radius + 1e-9)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// The CSR grid's `within` and `for_each_within` agree with brute force —
    /// and with each other — under the adversarial conditions of the flat
    /// layout: negative coordinates (cell addresses below zero), points
    /// snapped exactly onto cell boundaries (half of the workload below lands
    /// on multiples of the cell side), and query radii far above and far
    /// below the cell side (`reach` spanning one row to dozens of rows).
    #[test]
    fn csr_hashgrid_matches_brute_force_under_adversarial_layouts(
        raw in proptest::collection::vec((-8.0f64..8.0, -8.0f64..8.0, 0u8..2), 1..80),
        cell in 0.25f64..2.0,
        qx in -8.0f64..8.0,
        qy in -8.0f64..8.0,
        radius_scale in 0.01f64..40.0,
    ) {
        // Snap every other point exactly onto the cell lattice so boundary
        // ownership (half-open cells) is exercised.
        let points: Vec<Point2> = raw
            .iter()
            .map(|&(x, y, snap)| {
                if snap == 0 {
                    Point2::xy(x, y)
                } else {
                    Point2::xy((x / cell).round() * cell, (y / cell).round() * cell)
                }
            })
            .collect();
        let index = HashGrid::build(cell, &points);
        prop_assert_eq!(index.len(), points.len());
        let q = Point2::xy(qx, qy);
        let radius = cell * radius_scale; // from cell/100 to 40 cells
        let mut got = index.within(&q, radius);
        got.sort_unstable();
        let mut visited = Vec::new();
        let stats = index.for_each_within(&q, radius, |id| visited.push(id));
        visited.sort_unstable();
        prop_assert_eq!(&got, &visited, "within and the visitor must agree");
        let mut want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dist(&q) <= radius + 1e-9)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Work accounting is sound: every hit was a tested candidate, and
        // candidates only come from visited cells.
        prop_assert!(stats.candidates >= visited.len());
        prop_assert!(stats.cells <= index.cell_count());
    }

    /// Circumballs of grid cells contain every corner of their cell, in three
    /// dimensions as well.
    #[test]
    fn circumballs_cover_their_cells_in_3d(
        px in -5.0f64..5.0,
        py in -5.0f64..5.0,
        pz in -5.0f64..5.0,
        side in 0.2f64..2.0,
    ) {
        let grid = Grid::<3>::at_origin(side);
        let p = Point::new([px, py, pz]);
        let cell = grid.cell_of(&p);
        let ball = grid.cell_circumball(&cell);
        for corner in grid.cell_aabb(&cell).corners() {
            prop_assert!(ball.contains(&corner));
        }
        prop_assert!(ball.contains(&p));
    }
}
