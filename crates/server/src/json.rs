//! A minimal JSON value model with a hand-rolled parser and renderer.
//!
//! The server is deliberately std-only — no serde — so request and response
//! bodies go through this ~300-line subset: all of JSON's value kinds, UTF-8
//! strings with escapes (including `\uXXXX` surrogate pairs), and a renderer
//! that round-trips every value this crate produces.  Objects preserve
//! insertion order (a `Vec` of pairs, linear lookup), which keeps responses
//! stable for golden tests and humans.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What the parser expected.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts.  The parser is recursive,
/// so unbounded nesting would let a small hostile body (`[[[[...`) overflow
/// the worker's stack — an abort `catch_unwind` cannot contain.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses one JSON document; trailing non-whitespace is an error.
    /// Containers may nest at most 128 levels deep (`MAX_DEPTH`).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.fail("end of input"));
        }
        Ok(value)
    }

    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value.  Non-finite numbers have no JSON representation and
    /// render as `null`.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// The value under `key`, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) if n.is_finite() => {
                // Rust's `Display` for f64 is the shortest representation
                // that round-trips, which is also valid JSON.
                out.push_str(&format!("{n}"));
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail("a JSON literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.fail("a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.fail("shallower nesting (depth limit reached)"));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "`[`")?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("`,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "`{`")?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "`:`")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.fail("`,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "`\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("a closing `\"`")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&high) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.fail("a low surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u', "`u` of a low surrogate")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.fail("a low surrogate"));
                                }
                                let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.fail("a valid char"))?
                            } else {
                                char::from_u32(high).ok_or_else(|| self.fail("a valid char"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.fail("a valid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("valid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits and advances past them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("four hex digits"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.fail("four hex digits"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.fail("a number"))?;
        let n: f64 = text.parse().map_err(|_| self.fail("a number"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(self.fail("a finite number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_round_trip() {
        let text =
            r#"{"name":"demo","n":3,"ok":true,"tags":["a","b"],"nest":{"x":-1.5e2},"none":null}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.get("name").unwrap().as_str(), Some("demo"));
        assert_eq!(value.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(value.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("tags").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(value.get("nest").unwrap().get("x").unwrap().as_f64(), Some(-150.0));
        assert_eq!(value.get("none"), Some(&Json::Null));
        // Round trip: parse(render(v)) == v.
        assert_eq!(Json::parse(&value.render()).unwrap(), value);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Obj(vec![(
            "s".to_string(),
            Json::str("quote \" backslash \\ newline \n tab \t unicode ű control \u{1}"),
        )]);
        let parsed = Json::parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
        // Incoming \uXXXX escapes, including a surrogate pair.
        let v = Json::parse(r#""\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("A😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        // Within the limit: fine.  Past it: a clean error, not a stack
        // overflow that would abort the serving process.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        let hostile = format!("{}1{}", "[".repeat(200_000), "]".repeat(200_000));
        assert!(Json::parse(&hostile).is_err());
        // Depth counts nesting, not breadth: many shallow siblings are fine.
        let wide = format!("[{}1]", "[1],".repeat(50_000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn numbers_render_shortest_and_valid() {
        assert_eq!(Json::num(1.0).render(), "1");
        assert_eq!(Json::num(0.25).render(), "0.25");
        assert_eq!(Json::num(-3.5e-7).render(), "-0.00000035");
        assert_eq!(Json::num(f64::NAN).render(), "null");
        let big = Json::num(1234567890123.0).render();
        assert_eq!(Json::parse(&big).unwrap().as_f64(), Some(1234567890123.0));
    }
}
