//! The epoll reactor: event-driven connection I/O for the serving runtime.
//!
//! ```text
//!            ┌───────────────────────────── reactor thread ──────────────┐
//!            │  epoll_wait ─▶ accept / read ─▶ incremental Parser        │
//!            │      ▲             │ (pipelined requests, in order)       │
//!            │      │             ▼                                      │
//!            │   eventfd      job channel ──▶ worker 0..N  Service::handle
//!            │      ▲             completions (response bytes) │         │
//!            │      └──────────────────────────────────────────┘         │
//!            │  coalesced write ─▶ keep-alive / close                    │
//!            └───────────────────────────────────────────────────────────┘
//! ```
//!
//! One thread owns every socket.  Connections are edge-triggered and
//! nonblocking; readiness is cached per connection (`read_ready` /
//! `write_ready`) and cleared only on `WouldBlock`, as edge-triggered epoll
//! requires.  Parsed requests are batched into **jobs** (at most one in
//! flight per connection, so responses come back in request order) and
//! handed to the same worker pool the blocking runtime uses —
//! [`Service::handle`] still does admission, deadlines, panic isolation,
//! and stats, so every PR-9 invariant holds unchanged.  Workers serialize
//! their responses into one byte batch; the reactor writes it with a single
//! coalesced `write` per readiness edge.
//!
//! Backpressure and protection:
//!
//! * **accept-time shed** — at [`ServerConfig::queue_capacity`] live
//!   connections, new arrivals get the same well-formed `503` +
//!   `Retry-After` the blocking runtime sheds with;
//! * **pipeline cap** — a connection with [`MAX_PIPELINE`] unanswered
//!   requests stops being read until responses drain;
//! * **sweeps** — every [`TICK`] the reactor evicts idle keep-alives past
//!   [`ServerConfig::keep_alive`] and drops slow-loris connections whose
//!   partial request stalled past [`MID_REQUEST_PATIENCE`];
//! * **deferred errors** — a malformed pipelined frame is answered *after*
//!   the well-formed requests before it, so their responses arrive in
//!   order before the connection closes.
//!
//! Shutdown mirrors the blocking runtime: the flag is observed on every
//! loop pass (the `POST /shutdown` poke connection wakes `epoll_wait`),
//! accepts drain and drop, idle connections close, in-flight jobs complete
//! and flush, and the job sender is dropped so workers exit.
//!
//! [`Service::handle`]: crate::service::Service::handle
//! [`ServerConfig::queue_capacity`]: crate::service::ServerConfig::queue_capacity
//! [`ServerConfig::keep_alive`]: crate::service::ServerConfig::keep_alive
//! [`MID_REQUEST_PATIENCE`]: crate::http::MID_REQUEST_PATIENCE

pub(crate) mod sys;

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{
    write_response, EofOutcome, ParseStep, Parser, Request, MAX_BODY, MID_REQUEST_PATIENCE,
};
use crate::runtime::bad_frame_response;
use crate::service::Service;
use crate::stats::ServerStats;
use sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP};

/// Token for listener readiness (never collides with a slot token: slot
/// indexes are 32-bit).
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token for the completion eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;
/// Unanswered pipelined requests a connection may accumulate before the
/// reactor stops reading from it (resumed as responses drain).
const MAX_PIPELINE: usize = 256;
/// Most requests dispatched to a worker as one job: bounds per-job latency
/// while amortizing channel traffic under deep pipelining.
const JOB_BATCH: usize = 64;
/// Reactor heartbeat: `epoll_wait` timeout, which also paces the
/// keep-alive and slow-loris sweeps and the shutdown-flag check.
const TICK: Duration = Duration::from_millis(100);
/// Bytes per `read` call.
const READ_CHUNK: usize = 64 * 1024;
/// Read-buffer ceiling: one maximal request (head + [`MAX_BODY`]) plus
/// pipelined-head slack.  A connection at the ceiling pauses reads until a
/// frame completes and is drained.
const MAX_BUF: usize = MAX_BODY + 2 * 1024 * 1024;
/// How long a shutting-down reactor waits for in-flight jobs to complete
/// and flush before abandoning stragglers.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);
/// `epoll_wait` output buffer size per pass.
const EVENTS_CAP: usize = 1024;
/// Most accepts processed per listener readiness edge (guards against an
/// accept-error livelock; the next SYN re-arms the edge).
const ACCEPT_BURST: usize = 4096;
/// The interim response owed after an `Expect: 100-continue` head passes
/// the body-size check — byte-identical to the blocking reader's.
const INTERIM_CONTINUE: &[u8] = b"HTTP/1.1 100 Continue\r\n\r\n";

/// Packs a slot index and its generation into an epoll token.  The
/// generation makes tokens (and worker completions) from a closed
/// connection's lifetime unambiguously stale.
fn pack(idx: usize, generation: u32) -> u64 {
    ((generation as u64) << 32) | idx as u64
}

fn unpack(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// One dispatched unit of compute: a batch of consecutive requests from a
/// single connection, handled sequentially by one worker so their
/// responses are serialized in request order.
struct Job {
    token: u64,
    requests: Vec<Request>,
}

/// A finished job: the concatenated serialized responses, ready for one
/// coalesced write.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    responses: usize,
    close: bool,
}

/// State shared between workers and the reactor thread.
struct Shared {
    completions: Mutex<Vec<Completion>>,
    waker: EventFd,
}

impl Shared {
    fn post(&self, completion: Completion) {
        self.completions.lock().unwrap_or_else(PoisonError::into_inner).push(completion);
        self.waker.wake();
    }
}

/// Per-connection state machine: read → parse → dispatch → write →
/// keep-alive, all driven by readiness edges.
struct Conn {
    stream: TcpStream,
    /// Unconsumed bytes; complete frames are drained off the front.
    buf: Vec<u8>,
    parser: Parser,
    /// Parsed requests not yet dispatched.
    pending: VecDeque<Request>,
    /// Requests in the currently dispatched job (0 = no job in flight).
    inflight: usize,
    /// Serialized responses awaiting write; `out_pos` marks flush progress.
    out: Vec<u8>,
    out_pos: usize,
    /// Cached readiness (edge-triggered epoll loses un-acted-on edges, so
    /// these persist until a syscall returns `WouldBlock`).
    read_ready: bool,
    write_ready: bool,
    /// The peer half-closed; classify once all buffered bytes are parsed.
    peer_eof: bool,
    /// Close once every answered byte has flushed and nothing is pending.
    close_after_drain: bool,
    /// A malformed frame's error, answered only after the well-formed
    /// pipelined requests before it have been answered.
    trailing_error: Option<crate::http::ParseError>,
    /// Interim `100 Continue`s owed once earlier requests are answered.
    deferred_continues: u32,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            parser: Parser::new(),
            pending: VecDeque::new(),
            inflight: 0,
            out: Vec::new(),
            out_pos: 0,
            read_ready: false,
            // Fresh sockets are writable; the registration edge confirms.
            write_ready: true,
            peer_eof: false,
            close_after_drain: false,
            trailing_error: None,
            deferred_continues: 0,
            last_activity: Instant::now(),
        }
    }

    fn unanswered(&self) -> usize {
        self.pending.len() + self.inflight
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }
}

enum ReadStep {
    Data,
    Blocked,
    Eof,
    Failed,
}

/// Reads one chunk into the connection buffer.
fn read_chunk(conn: &mut Conn) -> ReadStep {
    let old = conn.buf.len();
    conn.buf.resize(old + READ_CHUNK, 0);
    loop {
        match conn.stream.read(&mut conn.buf[old..]) {
            Ok(0) => {
                conn.buf.truncate(old);
                return ReadStep::Eof;
            }
            Ok(n) => {
                conn.buf.truncate(old + n);
                conn.last_activity = Instant::now();
                return ReadStep::Data;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.buf.truncate(old);
                return ReadStep::Blocked;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.buf.truncate(old);
                return ReadStep::Failed;
            }
        }
    }
}

enum FlushStep {
    Done,
    Blocked,
    Failed,
}

/// Writes as much of `out` as the socket accepts.
fn flush_out(conn: &mut Conn) -> FlushStep {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return FlushStep::Failed,
            Ok(n) => {
                conn.out_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.write_ready = false;
                return FlushStep::Blocked;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return FlushStep::Failed,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    if conn.out.capacity() > 1 << 20 {
        conn.out.shrink_to(1 << 16);
    }
    FlushStep::Done
}

/// The reactor: the epoll instance, the listener, the connection slab, and
/// the worker-pool plumbing.  Owned by one thread.
struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    service: Arc<Service>,
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    /// Slab of connections; `generations[idx]` invalidates stale tokens.
    slots: Vec<Option<Conn>>,
    generations: Vec<u32>,
    free: Vec<usize>,
    live: usize,
    jobs_inflight: usize,
}

impl Reactor {
    fn stats(&self) -> &ServerStats {
        self.service.stats()
    }

    fn run(&mut self) {
        let mut events = vec![EpollEvent::zeroed(); EVENTS_CAP];
        let mut last_sweep = Instant::now();
        let mut grace: Option<Instant> = None;
        loop {
            let n = self.epoll.wait(&mut events, TICK.as_millis() as i32).unwrap_or(0);
            if n > 0 {
                self.stats().record_reactor_wakeup(n as u64);
            }
            for event in events.iter().take(n).copied() {
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => {
                        if !self.shared.waker.drain() {
                            self.stats().record_reactor_spurious();
                        }
                    }
                    token => self.conn_event(event.events, token),
                }
            }
            self.drain_completions();
            if last_sweep.elapsed() >= TICK {
                last_sweep = Instant::now();
                self.sweep();
            }
            if self.service.is_shutting_down() {
                let deadline = *grace.get_or_insert_with(|| Instant::now() + SHUTDOWN_GRACE);
                self.close_idle_for_shutdown();
                if (self.jobs_inflight == 0 && self.live == 0) || Instant::now() >= deadline {
                    break;
                }
            }
        }
        // Dropping `self` drops `job_tx`: workers observe the disconnect
        // after finishing any queued jobs, and exit.
    }

    /// Drains the listener's accept backlog (edge-triggered: must go to
    /// `WouldBlock`).  At capacity, arrivals are shed with the same 503 +
    /// `Retry-After` the blocking runtime's full queue sheds with.
    fn accept_ready(&mut self) {
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.service.is_shutting_down() {
                        continue; // the poke connection (or a raced client)
                    }
                    if self.live >= self.service.config().queue_capacity.max(1) {
                        self.stats().record_shed();
                        let response =
                            self.service.shed_response("server connection queue is full");
                        // The accepted socket is still blocking here; the
                        // write is best-effort (a flood peer may be gone).
                        let mut stream = stream;
                        let _ = write_response(&mut stream, &response, false);
                        continue;
                    }
                    self.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => continue, // transient (ECONNABORTED, resets)
            }
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let fd = stream.as_raw_fd();
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(Conn::new(stream));
                idx
            }
            None => {
                self.slots.push(Some(Conn::new(stream)));
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        let token = pack(idx, self.generations[idx]);
        // ADD reports an initial edge if the socket is already readable, so
        // data that raced ahead of registration is not lost.
        let interest = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
        if self.epoll.add(fd, interest, token).is_err() {
            self.slots[idx] = None;
            self.generations[idx] = self.generations[idx].wrapping_add(1);
            self.free.push(idx);
            return;
        }
        self.live += 1;
        self.stats().record_reactor_accept();
    }

    fn conn_event(&mut self, mask: u32, token: u64) {
        let (idx, generation) = unpack(token);
        let stale = idx >= self.slots.len()
            || self.generations[idx] != generation
            || self.slots[idx].is_none();
        if stale {
            self.stats().record_reactor_spurious();
            return;
        }
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            // The kernel says the connection is dead both ways; any
            // in-flight completion is invalidated by the generation bump.
            self.close_conn(idx);
            return;
        }
        {
            let conn = self.slots[idx].as_mut().expect("liveness checked above");
            if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                conn.read_ready = true;
            }
            if mask & EPOLLOUT != 0 {
                conn.write_ready = true;
            }
        }
        self.drive(idx);
    }

    fn drive(&mut self, idx: usize) {
        if self.drive_conn(idx) {
            self.close_conn(idx);
        }
    }

    /// Runs the connection's state machine until no stage makes progress.
    /// Returns `true` when the connection should close.
    fn drive_conn(&mut self, idx: usize) -> bool {
        let token = pack(idx, self.generations[idx]);
        let service = Arc::clone(&self.service);
        let stats = service.stats();
        let Some(conn) = self.slots[idx].as_mut() else { return false };
        loop {
            let mut progressed = false;

            // PARSE every complete frame the buffer holds, up to the
            // pipeline cap.  Frames are drained in one pass afterwards so a
            // deep pipeline costs one memmove, not one per request.
            let mut drained = 0;
            while conn.trailing_error.is_none()
                && !conn.close_after_drain
                && conn.unanswered() < MAX_PIPELINE
            {
                let step = conn.parser.advance(&mut conn.buf[drained..]);
                if conn.parser.take_continue() {
                    // The interim must land after every already-owed
                    // response; with none owed it can go out right now.
                    if conn.unanswered() == 0 {
                        conn.out.extend_from_slice(INTERIM_CONTINUE);
                    } else {
                        conn.deferred_continues += 1;
                    }
                    progressed = true;
                }
                match step {
                    ParseStep::NeedMore => break,
                    ParseStep::Complete(frame) => {
                        let request = frame.to_request(&conn.buf[drained..]);
                        drained += frame.end;
                        conn.pending.push_back(request);
                        stats.record_reactor_depth(conn.unanswered() as u64);
                        progressed = true;
                    }
                    ParseStep::Bad(error) => {
                        conn.trailing_error = Some(error);
                        progressed = true;
                    }
                }
            }
            if drained > 0 {
                conn.buf.drain(..drained);
                if conn.buf.capacity() > 1 << 20 && conn.buf.len() < 1 << 16 {
                    conn.buf.shrink_to(1 << 16);
                }
            }

            // EOF classification, once parsing has consumed all it can:
            // clean between requests, a typed 400 mid-head, a silent drop
            // mid-body — exactly the blocking reader's behavior.
            if conn.peer_eof && conn.trailing_error.is_none() && !conn.close_after_drain {
                match conn.parser.eof_outcome(conn.buf.len()) {
                    EofOutcome::Clean | EofOutcome::Drop => conn.close_after_drain = true,
                    EofOutcome::Error(error) => conn.trailing_error = Some(error),
                }
                progressed = true;
            }

            // DISPATCH at most one job: sequential handling by one worker
            // keeps pipelined responses in request order.
            if conn.inflight == 0 && !conn.pending.is_empty() {
                let batch = conn.pending.len().min(JOB_BATCH);
                let requests: Vec<Request> = conn.pending.drain(..batch).collect();
                conn.inflight = requests.len();
                self.jobs_inflight += 1;
                if self.job_tx.send(Job { token, requests }).is_err() {
                    return true; // worker pool gone: shutdown race
                }
                progressed = true;
            }

            // TRAILING: with every earlier request answered, emit owed
            // interims, then the deferred parse-error response (and close).
            if conn.unanswered() == 0 {
                if conn.deferred_continues > 0 && !conn.close_after_drain {
                    for _ in 0..conn.deferred_continues {
                        conn.out.extend_from_slice(INTERIM_CONTINUE);
                    }
                    conn.deferred_continues = 0;
                    progressed = true;
                }
                if let Some(error) = conn.trailing_error.take() {
                    let _ = write_response(&mut conn.out, &bad_frame_response(&error), false);
                    conn.close_after_drain = true;
                    progressed = true;
                }
            }

            // READ one chunk (the loop comes back around to parse it).
            if conn.read_ready
                && !conn.peer_eof
                && conn.trailing_error.is_none()
                && !conn.close_after_drain
                && conn.unanswered() < MAX_PIPELINE
                && conn.buf.len() < MAX_BUF
            {
                match read_chunk(conn) {
                    ReadStep::Data => progressed = true,
                    ReadStep::Blocked => conn.read_ready = false,
                    ReadStep::Eof => {
                        conn.read_ready = false;
                        conn.peer_eof = true;
                        progressed = true;
                    }
                    ReadStep::Failed => return true,
                }
            }

            // FLUSH whatever responses have accumulated.
            if conn.write_ready && !conn.flushed() {
                let before = conn.out_pos;
                match flush_out(conn) {
                    FlushStep::Done => progressed = true,
                    FlushStep::Blocked => progressed |= conn.out_pos > before,
                    FlushStep::Failed => return true,
                }
            }

            if !progressed {
                break;
            }
        }
        conn.close_after_drain && conn.unanswered() == 0 && conn.flushed()
    }

    /// Applies worker completions: append the coalesced response bytes,
    /// then re-drive the connection (flush, dispatch the next batch, resume
    /// paused reads).
    fn drain_completions(&mut self) {
        let completions = std::mem::take(
            &mut *self.shared.completions.lock().unwrap_or_else(PoisonError::into_inner),
        );
        for completion in completions {
            self.jobs_inflight -= 1;
            let (idx, generation) = unpack(completion.token);
            if idx >= self.slots.len() || self.generations[idx] != generation {
                continue; // the connection died while its job was in flight
            }
            {
                let Some(conn) = self.slots[idx].as_mut() else { continue };
                conn.inflight = 0;
                conn.last_activity = Instant::now();
                if completion.responses > 1 {
                    self.service.stats().record_reactor_coalesced(completion.bytes.len() as u64);
                }
                conn.out.extend_from_slice(&completion.bytes);
                if completion.close {
                    // `Connection: close` (or shutdown): later pipelined
                    // bytes are discarded, same as the blocking runtime.
                    conn.close_after_drain = true;
                    conn.pending.clear();
                    conn.buf.clear();
                    conn.deferred_continues = 0;
                    conn.trailing_error = None;
                }
            }
            self.drive(idx);
        }
    }

    /// The periodic sweep: evict idle keep-alives past the configured
    /// window and drop slow-loris connections stalled mid-request.
    fn sweep(&mut self) {
        let keep_alive = self.service.config().keep_alive;
        let now = Instant::now();
        let mut doomed = Vec::new();
        for (idx, slot) in self.slots.iter().enumerate() {
            let Some(conn) = slot else { continue };
            if conn.unanswered() > 0 || !conn.flushed() {
                continue; // actively being served
            }
            let idle = now.duration_since(conn.last_activity);
            let limit = if conn.parser.mid_request(conn.buf.len()) {
                MID_REQUEST_PATIENCE
            } else {
                keep_alive
            };
            if idle >= limit {
                doomed.push(idx);
            }
        }
        for idx in doomed {
            self.close_conn(idx);
        }
    }

    /// During shutdown: close every connection with nothing left to answer
    /// or flush (in-flight jobs keep their connections until they drain).
    fn close_idle_for_shutdown(&mut self) {
        let doomed: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let conn = slot.as_ref()?;
                (conn.inflight == 0 && conn.flushed()).then_some(idx)
            })
            .collect();
        for idx in doomed {
            self.close_conn(idx);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.slots[idx].take() {
            self.epoll.delete(conn.stream.as_raw_fd());
            self.generations[idx] = self.generations[idx].wrapping_add(1);
            self.free.push(idx);
            self.live -= 1;
            self.stats().record_reactor_close();
            // `conn` drops here, closing the socket.
        }
    }
}

/// A worker: receives jobs, runs each request through [`Service::handle`]
/// (admission, deadlines, panic isolation, stats — all unchanged), and
/// posts the batch's serialized responses back as one completion.
///
/// [`Service::handle`]: crate::service::Service::handle
fn worker_loop(service: &Service, jobs: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // The lock is only held while blocked in `recv`: queued jobs drain
        // even after the reactor drops the sender, then workers exit.
        let received = jobs.lock().unwrap_or_else(PoisonError::into_inner).recv();
        let Ok(job) = received else { break };
        let mut bytes = Vec::with_capacity(256);
        let mut responses = 0;
        let mut close = false;
        for request in &job.requests {
            let response = service.handle(request);
            let keep_alive = !request.wants_close() && !service.is_shutting_down();
            let _ = write_response(&mut bytes, &response, keep_alive); // Vec writes are infallible
            responses += 1;
            if !keep_alive {
                close = true;
                break; // later pipelined requests die with the connection
            }
        }
        shared.post(Completion { token: job.token, bytes, responses, close });
    }
}

/// Boots the reactor runtime over an already-bound listener: one reactor
/// thread plus the worker pool.  Returns the thread handles for
/// [`ServerHandle`](crate::runtime::ServerHandle).
pub(crate) fn spawn(
    listener: TcpListener,
    service: Arc<Service>,
) -> io::Result<(JoinHandle<()>, Vec<JoinHandle<()>>)> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let waker = EventFd::new()?;
    epoll.add(listener.as_raw_fd(), EPOLLIN | EPOLLET, LISTENER_TOKEN)?;
    epoll.add(waker.raw(), EPOLLIN | EPOLLET, WAKER_TOKEN)?;
    let shared = Arc::new(Shared { completions: Mutex::new(Vec::new()), waker });
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let workers: Vec<JoinHandle<()>> = (0..service.config().resolved_threads())
        .map(|i| {
            let service = Arc::clone(&service);
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            std::thread::Builder::new()
                .name(format!("mrs-worker-{i}"))
                .spawn(move || worker_loop(&service, &job_rx, &shared))
                .expect("spawning a worker thread")
        })
        .collect();
    let reactor_thread = std::thread::Builder::new()
        .name("mrs-reactor".to_string())
        .spawn(move || {
            let mut reactor = Reactor {
                epoll,
                listener,
                service,
                shared,
                job_tx,
                slots: Vec::new(),
                generations: Vec::new(),
                free: Vec::new(),
                live: 0,
                jobs_inflight: 0,
            };
            reactor.run();
        })
        .expect("spawning the reactor thread");
    Ok((reactor_thread, workers))
}
