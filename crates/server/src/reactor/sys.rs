//! Hand-declared Linux syscall bindings for the reactor: `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, and `eventfd`, plus the `read`/`write`/`close`
//! trio the eventfd needs.  No `libc` crate — the same no-external-deps
//! discipline as the rest of the workspace — so the ABI surface is declared
//! here once, kept deliberately tiny, and wrapped in two RAII types
//! ([`Epoll`], [`EventFd`]) so no raw fd escapes unmanaged.
//!
//! ## Why this is sound
//!
//! * The signatures below match the glibc/musl prototypes (`man epoll_ctl`,
//!   `man eventfd`): every argument is a plain integer or a pointer to a
//!   caller-owned buffer whose length travels alongside it, so the only
//!   unsafety is the FFI call itself — no callbacks, no ownership transfer.
//! * `epoll_event` is declared `#[repr(C)]` and, on x86-64 only,
//!   `#[repr(packed)]` — mirroring the kernel's `__attribute__((packed))`
//!   on that architecture (`include/uapi/linux/eventpoll.h`).  Getting this
//!   wrong would misalign the `u64` payload the kernel writes; the layout
//!   is asserted by a unit test against the known ABI sizes (12 bytes on
//!   x86-64, 16 elsewhere).
//! * Every call site checks the `-1` error return and surfaces `errno` via
//!   [`io::Error::last_os_error`]; `EINTR` on `epoll_wait` is retried here
//!   so callers never observe it.

use std::io;
use std::os::unix::io::RawFd;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const EINTR: i32 = 4;
const EAGAIN: i32 = 11;

/// The kernel's `struct epoll_event`: an interest/readiness mask plus a
/// caller-chosen 64-bit token (we store a connection slot key).  Packed on
/// x86-64 to match the kernel ABI (see module docs).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub token: u64,
}

impl EpollEvent {
    /// A zeroed event, for pre-sizing the `epoll_wait` output buffer.
    pub const fn zeroed() -> Self {
        Self { events: 0, token: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

fn last_errno() -> i32 {
    io::Error::last_os_error().raw_os_error().unwrap_or(0)
}

/// An owned epoll instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent { events: interest, token };
        // SAFETY: `event` is a live stack value for the duration of the call.
        let rc = unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregisters `fd`.  Best-effort: a concurrent close already removed it.
    pub fn delete(&self, fd: RawFd) {
        // SAFETY: the event argument is ignored for EPOLL_CTL_DEL on any
        // kernel ≥ 2.6.9; a null pointer is the documented calling form.
        unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
    }

    /// Waits up to `timeout_ms` for readiness events, retrying `EINTR`.
    /// Returns the number of events written to the front of `events`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `events` is a live, correctly-sized caller buffer; the
            // kernel writes at most `events.len()` entries.
            let rc = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            if last_errno() != EINTR {
                return Err(io::Error::last_os_error());
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is an fd this type owns exclusively.
        unsafe { close(self.fd) };
    }
}

/// An owned nonblocking eventfd: the worker pool writes it to wake the
/// reactor when completions are queued.  Closed on drop.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers involved; the return value is checked.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self { fd })
    }

    /// The raw fd, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd
    }

    /// Adds 1 to the counter, waking any `epoll_wait` on it.  `EAGAIN`
    /// (counter saturated — the reactor is already hopelessly awake) is
    /// deliberately ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from a live stack value.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Drains the counter so the next `wake` produces a fresh edge.
    /// Returns `true` when a wake had actually been posted (`false` means
    /// the readiness was spurious).
    pub fn drain(&self) -> bool {
        let mut value: u64 = 0;
        // SAFETY: reads exactly 8 bytes into a live stack value.
        let rc = unsafe { read(self.fd, (&mut value as *mut u64).cast(), 8) };
        if rc == 8 {
            return value > 0;
        }
        debug_assert!(rc < 0 && last_errno() == EAGAIN, "eventfd read returned {rc}");
        false
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is an fd this type owns exclusively.
        unsafe { close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_the_kernel_abi() {
        let expected = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expected);
    }

    #[test]
    fn eventfd_wakes_and_drains() {
        let efd = EventFd::new().unwrap();
        assert!(!efd.drain(), "a fresh eventfd has nothing posted");
        efd.wake();
        efd.wake();
        assert!(efd.drain(), "two wakes coalesce into one posted edge");
        assert!(!efd.drain(), "drained");
    }

    #[test]
    fn epoll_observes_an_eventfd_edge() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw(), EPOLLIN | EPOLLET, 42).unwrap();
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "nothing ready yet");
        efd.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (events_mask, token) = (events[0].events, events[0].token);
        assert_eq!(token, 42);
        assert!(events_mask & EPOLLIN != 0);
        ep.delete(efd.raw());
    }
}
