//! # mrs-server — the long-lived MaxRS query service
//!
//! One-shot `maxrs` invocations pay the whole pipeline — read the CSV,
//! parse it, build spatial indexes, solve — per query.  The rectangle
//! hardness line (Backurs–Dikkala–Tzamos style lower bounds) says per-query
//! solve cost is irreducibly superlinear, so the only road to serving real
//! traffic is to stop repeating everything *around* the solve:
//!
//! * **[`catalog`]** — named datasets stay resident as `Arc`-shared point
//!   sets, each with one catalog-owned
//!   [`SharedIndex`](mrs_core::engine::SharedIndex) whose structures are
//!   built at most once per dataset lifetime;
//! * **[`cache`]** — a sharded LRU over rendered answers keyed by
//!   `(dataset epoch, solver, shape)`: repeated queries (the Zipfian head of
//!   real logs) skip the solver entirely, and epoch bumps on reload make
//!   stale answers unmatchable;
//! * **[`service`]** — the routed endpoints (`/solvers`, `/datasets/{name}`,
//!   `/query`, `/batch`, `/healthz`, `/stats`, `/metrics`, `/debug/traces`,
//!   `/shutdown`) over the hand-rolled [`http`] + [`json`] layers (std-only,
//!   no dependencies);
//! * **[`runtime`]** — connection I/O and graceful shutdown, in two
//!   flavors selected by [`ServerConfig::runtime`](service::ServerConfig):
//!   an edge-triggered epoll reactor with pipelined keep-alive (the Linux
//!   default) and a portable blocking worker-pool fallback — both hand
//!   compute to the same worker pool via [`Service::handle`](service::Service::handle);
//! * **[`stats`]**, **[`metrics`]**, **[`trace`]** — the observability
//!   layer: lock-free latency histograms per endpoint/solver/dataset, a
//!   Prometheus text renderer for `GET /metrics`, and a bounded ring of
//!   phase-timed query traces served from `GET /debug/traces` and keyed by
//!   the `X-Request-Id` every response carries.
//!
//! ## Quick start
//!
//! ```no_run
//! use mrs_server::{serve, Client, ServerConfig};
//!
//! let server = serve(ServerConfig {
//!     addr: "127.0.0.1:0".into(), // ephemeral port
//!     ..ServerConfig::default()
//! })
//! .expect("bind");
//! let mut client = Client::connect(server.addr()).expect("connect");
//! client.post("/datasets/demo", "0,0\n0.5,0\n9,9\n").expect("upload");
//! let (status, body) = client
//!     .post("/query", r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#)
//!     .expect("query");
//! assert_eq!(status, 200);
//! assert!(body.contains("\"value\":2"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod catalog;
pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
#[cfg(target_os = "linux")]
mod reactor;
pub mod runtime;
pub mod service;
pub mod stats;
pub mod trace;

pub use cache::{AnswerCache, CacheCounters, CacheKey};
pub use catalog::{Catalog, CatalogError, Dataset};
pub use client::{Client, PipelineRequest, RetryCounters, RetryPolicy, RetryingClient};
pub use json::Json;
pub use runtime::{serve, serve_with, ServerHandle};
pub use service::{full_registry, RuntimeKind, ServerConfig, Service};
pub use trace::TraceRing;
