//! The dataset catalog: named, resident point sets with catalog-owned
//! shared indexes.
//!
//! A one-shot `maxrs` invocation re-reads its CSV and rebuilds every index
//! per process; the catalog is what makes the service fast instead.  Each
//! dataset wraps the loaded points/sites in a
//! [`VersionedDataset`] whose resident index lives as long as the dataset
//! does, so every structure (sorted event list, Fenwick tree, per-radius
//! hash grids) is built at most once per generation — the amortization the
//! paper's batched setting (Theorem 1.3) argues for, extended from one
//! batch to the whole serving process.
//!
//! Datasets come in two ambient dimensions: **planar** (`x,y[,weight
//! [,color]]` CSV, the 2-D solvers) and **line** (`x[,weight]` CSV, the 1-D
//! solvers — most importantly the index-shared Theorem 1.3 batched interval
//! solver, which answers every warm query straight off the resident sorted
//! event list).
//!
//! Every (re)load takes a fresh **epoch** from a catalog-global counter,
//! and every resident dataset is **versioned and mutable**
//! ([`mrs_core::engine::VersionedDataset`]): `POST
//! /datasets/{name}/insert|delete` bodies append to the dataset's delta
//! log, bumping a per-dataset version without touching the epoch.  The
//! answer cache keys on *(epoch, version)*: a reload invalidates wholesale
//! (new epoch), a mutation invalidates **fine-grained** (new version, same
//! epoch) — cached answers for other datasets and other versions stay
//! untouched, and index structures are derived incrementally instead of
//! rebuilt (see the engine's `versioned` module).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use mrs_core::engine::{BatchRequest, MutationReport, VersionedDataset};
use mrs_core::input::{self, LoadError};

/// A resident dataset in ambient dimension `D`: a versioned, mutable point
/// set whose index structures are owned by the catalog and derived
/// incrementally across versions.
pub struct DatasetCore<const D: usize> {
    name: String,
    epoch: u64,
    versioned: VersionedDataset<D>,
    requests: AtomicU64,
}

impl<const D: usize> DatasetCore<D> {
    /// The catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The load epoch (unique per catalog load, monotone over time).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The versioned dataset (and through it, the current view, its live
    /// sets and its index).
    pub fn versioned(&self) -> &VersionedDataset<D> {
        &self.versioned
    }

    /// Number of live weighted points at the current version.
    pub fn point_count(&self) -> usize {
        self.versioned.view().point_count()
    }

    /// Number of live colored sites at the current version.
    pub fn site_count(&self) -> usize {
        self.versioned.view().site_count()
    }

    /// Queries answered against this dataset so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Counts `n` more answered queries.
    pub fn count_requests(&self, n: u64) {
        self.requests.fetch_add(n, Ordering::Relaxed);
    }

    /// An empty batch request over the current version's live sets —
    /// guaranteed to alias the `Arc`s the version's index is built over,
    /// which is what
    /// [`BatchExecutor::execute_with_index`] requires.
    ///
    /// [`BatchExecutor::execute_with_index`]: mrs_core::engine::BatchExecutor::execute_with_index
    pub fn request(&self) -> BatchRequest<D> {
        self.versioned.view().request()
    }
}

/// A resident dataset of either supported ambient dimension.
pub enum Dataset {
    /// A planar (`D = 2`) dataset: weighted points and optional colored
    /// sites.
    Planar(DatasetCore<2>),
    /// A line (`D = 1`) dataset: weighted points on the number line.
    Line(DatasetCore<1>),
}

impl Dataset {
    /// The catalog name.
    pub fn name(&self) -> &str {
        match self {
            Dataset::Planar(core) => core.name(),
            Dataset::Line(core) => core.name(),
        }
    }

    /// The ambient dimension (1 or 2).
    pub fn dim(&self) -> usize {
        match self {
            Dataset::Planar(_) => 2,
            Dataset::Line(_) => 1,
        }
    }

    /// The load epoch.
    pub fn epoch(&self) -> u64 {
        match self {
            Dataset::Planar(core) => core.epoch(),
            Dataset::Line(core) => core.epoch(),
        }
    }

    /// Number of weighted points.
    pub fn point_count(&self) -> usize {
        match self {
            Dataset::Planar(core) => core.point_count(),
            Dataset::Line(core) => core.point_count(),
        }
    }

    /// Number of colored sites.
    pub fn site_count(&self) -> usize {
        match self {
            Dataset::Planar(core) => core.site_count(),
            Dataset::Line(core) => core.site_count(),
        }
    }

    /// Queries answered against this dataset so far.
    pub fn requests(&self) -> u64 {
        match self {
            Dataset::Planar(core) => core.requests(),
            Dataset::Line(core) => core.requests(),
        }
    }

    /// Index structures built so far across every generation and version
    /// (see [`mrs_core::engine::VersionedDataset::builds`]).
    pub fn index_builds(&self) -> usize {
        match self {
            Dataset::Planar(core) => core.versioned().builds(),
            Dataset::Line(core) => core.versioned().builds(),
        }
    }

    /// Total time spent building index structures.
    pub fn index_build_time(&self) -> Duration {
        match self {
            Dataset::Planar(core) => core.versioned().build_time(),
            Dataset::Line(core) => core.versioned().build_time(),
        }
    }

    /// The current dataset version (bumped by every mutation, monotone).
    pub fn version(&self) -> u64 {
        match self {
            Dataset::Planar(core) => core.versioned().version(),
            Dataset::Line(core) => core.versioned().version(),
        }
    }

    /// Tombstones plus live delta inserts at the current version (0 right
    /// after a load or a compaction).
    pub fn delta_size(&self) -> usize {
        match self {
            Dataset::Planar(core) => core.versioned().view().delta_size(),
            Dataset::Line(core) => core.versioned().view().delta_size(),
        }
    }

    /// Compactions performed since the dataset was loaded.
    pub fn compactions(&self) -> usize {
        match self {
            Dataset::Planar(core) => core.versioned().compactions(),
            Dataset::Line(core) => core.versioned().compactions(),
        }
    }

    /// Total wall-clock time spent materializing compacted generations.
    pub fn compaction_time(&self) -> Duration {
        match self {
            Dataset::Planar(core) => core.versioned().compaction_time(),
            Dataset::Line(core) => core.versioned().compaction_time(),
        }
    }

    /// Applies an **insert** mutation body: the dataset's own CSV record
    /// shape, one insert per record (`x,y[,weight[,color]]` for planar
    /// datasets, `x[,weight]` for 1-D ones).  One call is one version bump.
    pub fn insert_csv(&self, csv: &str) -> Result<MutationReport, CatalogError> {
        match self {
            Dataset::Planar(core) => {
                let mutations = input::parse_planar_inserts_csv(csv)?;
                if mutations.is_empty() {
                    return Err(CatalogError::EmptyMutation);
                }
                Ok(core.versioned().apply(&mutations))
            }
            Dataset::Line(core) => {
                let mutations = input::parse_line_inserts_csv(csv)?;
                if mutations.is_empty() {
                    return Err(CatalogError::EmptyMutation);
                }
                Ok(core.versioned().apply(&mutations))
            }
        }
    }

    /// Applies a **delete** mutation body: one coordinate record per line
    /// (`x,y` for planar datasets, `x` for 1-D ones); each deletes the
    /// first live point (and first live site) at exactly those
    /// coordinates.  One call is one version bump.
    pub fn delete_csv(&self, csv: &str) -> Result<MutationReport, CatalogError> {
        match self {
            Dataset::Planar(core) => {
                let mutations = input::parse_planar_deletes_csv(csv)?;
                if mutations.is_empty() {
                    return Err(CatalogError::EmptyMutation);
                }
                Ok(core.versioned().apply(&mutations))
            }
            Dataset::Line(core) => {
                let mutations = input::parse_line_deletes_csv(csv)?;
                if mutations.is_empty() {
                    return Err(CatalogError::EmptyMutation);
                }
                Ok(core.versioned().apply(&mutations))
            }
        }
    }

    /// The planar core, if this is a planar dataset.
    pub fn as_planar(&self) -> Option<&DatasetCore<2>> {
        match self {
            Dataset::Planar(core) => Some(core),
            Dataset::Line(_) => None,
        }
    }

    /// The line core, if this is a line dataset.
    pub fn as_line(&self) -> Option<&DatasetCore<1>> {
        match self {
            Dataset::Line(core) => Some(core),
            Dataset::Planar(_) => None,
        }
    }
}

/// Why a dataset could not be registered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// The dataset name contains characters outside `[A-Za-z0-9._-]` (it
    /// appears in URL paths) or is empty.
    BadName {
        /// The offending name.
        name: String,
    },
    /// The CSV text did not parse.
    Load(LoadError),
    /// The CSV parsed but held no points at all.
    Empty,
    /// A mutation body parsed but held no records.
    EmptyMutation,
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::BadName { name } => {
                write!(f, "invalid dataset name `{name}` (use [A-Za-z0-9._-]+)")
            }
            CatalogError::Load(e) => write!(f, "{e}"),
            CatalogError::Empty => write!(f, "dataset holds no points"),
            CatalogError::EmptyMutation => write!(f, "mutation body holds no records"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<LoadError> for CatalogError {
    fn from(e: LoadError) -> Self {
        CatalogError::Load(e)
    }
}

/// `true` for names safe to appear in `/datasets/{name}` URLs.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b"._-".contains(&b))
}

/// The catalog: named datasets behind one `RwLock`d map (reads vastly
/// outnumber loads) and the global epoch counter.
pub struct Catalog {
    datasets: RwLock<BTreeMap<String, Arc<Dataset>>>,
    next_epoch: AtomicU64,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// An empty catalog.  Epochs start at 1 so `0` can mean "no epoch".
    pub fn new() -> Self {
        Self { datasets: RwLock::new(BTreeMap::new()), next_epoch: AtomicU64::new(1) }
    }

    fn insert(&self, name: &str, dataset: Dataset) -> Arc<Dataset> {
        let dataset = Arc::new(dataset);
        self.datasets
            .write()
            .expect("catalog lock poisoned")
            .insert(name.to_string(), Arc::clone(&dataset));
        dataset
    }

    fn next_epoch(&self) -> u64 {
        self.next_epoch.fetch_add(1, Ordering::Relaxed)
    }

    /// Loads (or replaces) the named planar dataset from batch CSV text
    /// (`x,y[,weight[,color]]` records — see
    /// [`mrs_core::input::parse_point_set_csv`]).  Replacement bumps the
    /// epoch; in-flight requests against the old `Arc`s finish safely on
    /// the old contents.
    pub fn load_planar_csv(&self, name: &str, csv: &str) -> Result<Arc<Dataset>, CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::BadName { name: name.to_string() });
        }
        let set = input::parse_point_set_csv(csv)?;
        if set.points.is_empty() {
            return Err(CatalogError::Empty);
        }
        Ok(self.insert(
            name,
            Dataset::Planar(DatasetCore {
                name: name.to_string(),
                epoch: self.next_epoch(),
                versioned: VersionedDataset::new(set.points, set.sites),
                requests: AtomicU64::new(0),
            }),
        ))
    }

    /// Loads (or replaces) the named line dataset from 1-D CSV text
    /// (`x[,weight]` records — see [`mrs_core::input::parse_line_csv`]).
    pub fn load_line_csv(&self, name: &str, csv: &str) -> Result<Arc<Dataset>, CatalogError> {
        if !valid_name(name) {
            return Err(CatalogError::BadName { name: name.to_string() });
        }
        let points = input::parse_line_csv(csv)?;
        if points.is_empty() {
            return Err(CatalogError::Empty);
        }
        Ok(self.insert(
            name,
            Dataset::Line(DatasetCore {
                name: name.to_string(),
                epoch: self.next_epoch(),
                versioned: VersionedDataset::new(points, Vec::new()),
                requests: AtomicU64::new(0),
            }),
        ))
    }

    /// The named dataset, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets.read().expect("catalog lock poisoned").get(name).cloned()
    }

    /// Every resident dataset, in name order.
    pub fn datasets(&self) -> Vec<Arc<Dataset>> {
        self.datasets.read().expect("catalog lock poisoned").values().cloned().collect()
    }

    /// Number of resident datasets.
    pub fn len(&self) -> usize {
        self.datasets.read().expect("catalog lock poisoned").len()
    }

    /// `true` when nothing is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::input::LoadErrorKind;

    #[test]
    fn load_get_and_replace_bump_epochs() {
        let catalog = Catalog::new();
        assert!(catalog.is_empty());
        let first = catalog.load_planar_csv("demo", "0,0\n1,1,2.5\n2,2,1,7\n").unwrap();
        assert_eq!(first.name(), "demo");
        assert_eq!(first.dim(), 2);
        assert_eq!(first.point_count(), 3);
        assert_eq!(first.site_count(), 1);
        assert_eq!(first.requests(), 0);
        let fetched = catalog.get("demo").unwrap();
        assert_eq!(fetched.epoch(), first.epoch());
        assert!(catalog.get("nope").is_none());

        let second = catalog.load_planar_csv("demo", "5,5\n").unwrap();
        assert!(second.epoch() > first.epoch(), "reload must bump the epoch");
        assert_eq!(catalog.len(), 1);
        assert_eq!(catalog.get("demo").unwrap().point_count(), 1);
        // The replaced dataset's Arcs stay valid for in-flight requests.
        assert_eq!(first.point_count(), 3);
    }

    #[test]
    fn line_datasets_live_alongside_planar_ones() {
        let catalog = Catalog::new();
        let line = catalog.load_line_csv("ticks", "0\n1,2\n5.5\n").unwrap();
        assert_eq!(line.dim(), 1);
        assert_eq!(line.point_count(), 3);
        assert_eq!(line.site_count(), 0);
        assert!(line.as_line().is_some());
        assert!(line.as_planar().is_none());
        let planar = catalog.load_planar_csv("map", "0,0\n").unwrap();
        assert!(planar.as_planar().is_some());
        assert_eq!(catalog.len(), 2);
        // A line dataset can be replaced by a planar one under the same name.
        let swapped = catalog.load_planar_csv("ticks", "1,1\n").unwrap();
        assert_eq!(swapped.dim(), 2);
        assert!(swapped.epoch() > line.epoch());
        assert!(catalog.load_line_csv("bad", "1,2,3\n").is_err());
    }

    #[test]
    fn requests_share_the_index_arcs() {
        let catalog = Catalog::new();
        let dataset = catalog.load_planar_csv("d", "0,0\n").unwrap();
        let core = dataset.as_planar().unwrap();
        let request = core.request();
        let view = core.versioned().view();
        assert!(Arc::ptr_eq(&request.shared_points(), &view.index().shared_points()));
        assert!(Arc::ptr_eq(&request.shared_sites(), &view.index().shared_sites()));
    }

    #[test]
    fn mutation_bodies_update_points_and_sites() {
        let catalog = Catalog::new();
        let csv: String = "0,0,1,0\n1,1,2\n".to_string()
            + &(2..20).map(|i| format!("{i},{i}\n")).collect::<String>();
        let dataset = catalog.load_planar_csv("d", &csv).unwrap();
        assert_eq!(dataset.version(), 1);
        assert_eq!(dataset.delta_size(), 0);
        let report = dataset.insert_csv("50,50,3,5\n51,51\n").unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.outcome.inserted, 2);
        assert_eq!(dataset.point_count(), 22);
        assert_eq!(dataset.site_count(), 2);
        assert!(dataset.delta_size() > 0, "small deltas stay resident, not compacted");
        let report = dataset.delete_csv("0,0\n99,99\n").unwrap();
        assert_eq!(report.version, 3);
        assert_eq!(report.outcome.deleted, 1);
        assert_eq!(report.outcome.missed, 1);
        assert_eq!(dataset.point_count(), 21);
        assert_eq!(dataset.site_count(), 1, "the site at (0,0) died with its point");
        // Bad and empty bodies are typed errors, not version bumps.
        assert!(matches!(dataset.insert_csv("zap\n"), Err(CatalogError::Load(_))));
        assert!(matches!(dataset.insert_csv("# nothing\n"), Err(CatalogError::EmptyMutation)));
        assert!(matches!(dataset.delete_csv("1,2,3\n"), Err(CatalogError::Load(_))));
        assert_eq!(dataset.version(), 3);

        // 1-D datasets mutate through their own record shape.
        let line = catalog.load_line_csv("ticks", "0\n1,2\n").unwrap();
        let report = line.insert_csv("5,4\n").unwrap();
        assert_eq!(report.outcome.inserted, 1);
        assert_eq!(line.point_count(), 3);
        assert_eq!(line.delete_csv("0\n").unwrap().outcome.deleted, 1);
        assert!(matches!(line.delete_csv("1,2\n"), Err(CatalogError::Load(_))));
        let rendered = CatalogError::EmptyMutation.to_string();
        assert!(rendered.contains("no records"), "{rendered}");
    }

    #[test]
    fn rejects_bad_names_and_bad_csv() {
        let catalog = Catalog::new();
        for bad in ["", "a b", "über", "x/y", &"n".repeat(129)] {
            assert!(
                matches!(catalog.load_planar_csv(bad, "0,0\n"), Err(CatalogError::BadName { .. })),
                "{bad:?}"
            );
        }
        assert!(valid_name("taxi_2024.v1-final"));
        assert!(matches!(
            catalog.load_planar_csv("d", "not,a,number,set,at,all\n"),
            Err(CatalogError::Load(_))
        ));
        assert!(matches!(
            catalog.load_planar_csv("d", "# only comments\n"),
            Err(CatalogError::Empty)
        ));
        assert!(matches!(catalog.load_line_csv("d", "\n"), Err(CatalogError::Empty)));
        let rendered =
            CatalogError::Load(LoadError { line: 3, kind: LoadErrorKind::NegativeWeight })
                .to_string();
        assert!(rendered.contains("line 3"), "{rendered}");
    }
}
