//! A bounded ring of recently executed query traces.
//!
//! Every non-cache-hit query the service executes leaves behind a
//! [`QueryTrace`] — the per-phase wall-time
//! breakdown recorded by the engine's
//! [`TraceRecorder`](mrs_core::engine::TraceRecorder), stamped with the
//! request id the client saw in its `X-Request-Id` header.  The ring keeps
//! the most recent [`TraceRing::capacity`] of them so `GET /debug/traces`
//! can answer "what did request `r-000042` actually spend its time on?"
//! without unbounded memory growth: the ring is a `Mutex<VecDeque>` touched
//! once per *executed* query (cache hits never lock it), so it is far off
//! the hot path.

use std::collections::VecDeque;
use std::sync::Mutex;

use mrs_core::engine::{Phase, QueryTrace};

use crate::json::Json;

/// How many traces `GET /debug/traces` retains by default.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// A fixed-capacity FIFO of the most recent query traces.
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    ring: Mutex<VecDeque<QueryTrace>>,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceRing {
    /// Creates a ring that retains the `capacity` most recent traces.
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
        }
    }

    /// The maximum number of traces retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a trace, evicting the oldest when full.  A panic while a
    /// previous holder had the lock poisons the mutex, but the ring's data
    /// (a deque of plain clones) cannot be left half-updated, so the lock
    /// is recovered rather than propagating the poison.
    pub fn push(&self, trace: QueryTrace) {
        let mut ring = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// All retained traces for one request id, oldest first (a batch request
    /// leaves one trace per executed query under the same id).
    pub fn for_request(&self, id: &str) -> Vec<QueryTrace> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .filter(|t| t.id == id)
            .cloned()
            .collect()
    }
}

/// Renders one trace as the JSON object `/debug/traces` serves.
pub fn trace_json(trace: &QueryTrace) -> Json {
    let mut phases = Vec::with_capacity(Phase::ALL.len());
    for phase in Phase::ALL {
        phases.push((phase.name().to_string(), Json::num(trace.phase(phase).as_micros() as f64)));
    }
    let mut fields = vec![
        ("trace".to_string(), Json::str(trace.id.clone())),
        ("dataset".to_string(), Json::str(trace.dataset.clone())),
        ("query".to_string(), Json::num(trace.query as f64)),
        ("solver".to_string(), Json::str(trace.solver.clone())),
    ];
    if let Some(routed) = trace.routed {
        fields.push(("routed".to_string(), Json::str(routed)));
    }
    fields.push(("shape".to_string(), Json::str(trace.shape.clone())));
    fields.push(("version".to_string(), Json::num(trace.version as f64)));
    fields.push(("ok".to_string(), Json::Bool(trace.ok)));
    fields.push(("degraded".to_string(), Json::Bool(trace.degraded)));
    match trace.certified {
        Some(flag) => fields.push(("certified".to_string(), Json::Bool(flag))),
        None => fields.push(("certified".to_string(), Json::Null)),
    }
    fields.push(("phases_us".to_string(), Json::Obj(phases)));
    fields.push(("total_us".to_string(), Json::num(trace.phase_total().as_micros() as f64)));
    fields.push(("candidates_examined".to_string(), Json::num(trace.candidates_examined as f64)));
    fields.push(("grid_cells_visited".to_string(), Json::num(trace.grid_cells_visited as f64)));
    fields.push(("sieve_rejected".to_string(), Json::num(trace.sieve_rejected as f64)));
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn trace(id: &str, query: usize) -> QueryTrace {
        let mut t = QueryTrace {
            id: id.to_string(),
            dataset: "demo".to_string(),
            query,
            solver: "exact-disk-2d".to_string(),
            ok: true,
            certified: Some(true),
            ..QueryTrace::default()
        };
        t.set_phase(Phase::Solve, Duration::from_micros(120));
        t
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(trace("r-000001", i));
        }
        let kept: Vec<usize> = ring.snapshot().iter().map(|t| t.query).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn traces_are_found_by_request_id() {
        let ring = TraceRing::default();
        ring.push(trace("r-000001", 0));
        ring.push(trace("r-000002", 0));
        ring.push(trace("r-000002", 1));
        assert_eq!(ring.for_request("r-000002").len(), 2);
        assert_eq!(ring.for_request("r-000009").len(), 0);
    }

    #[test]
    fn trace_json_carries_phases_and_id() {
        let rendered = trace_json(&trace("r-000042", 7)).render();
        assert!(rendered.contains("\"trace\":\"r-000042\""));
        assert!(rendered.contains("\"solve\":120"));
        assert!(rendered.contains("\"certified\":true"));
    }
}
