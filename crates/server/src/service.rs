//! The service layer: configuration, shared state, routing, and the
//! endpoint handlers.
//!
//! Request flow for a query:
//!
//! 1. resolve the dataset in the [`Catalog`] (404 if absent);
//! 2. look each query up in the [`AnswerCache`] under
//!    `(epoch, solver, shape)` — hits return the stored rendered answer;
//! 3. misses become one [`BatchRequest`](mrs_core::engine::BatchRequest)
//!    over the dataset's shared `Arc`s, answered by
//!    [`BatchExecutor::execute_with_index`] against the
//!    catalog-resident [`SharedIndex`](mrs_core::engine::SharedIndex), so
//!    index structures are built at most once per dataset lifetime;
//! 4. computed answers are rendered to JSON once, stored in the cache, and
//!    merged with the hits in request order.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use mrs_core::engine::{
    BatchCapability, BatchExecutor, BatchQuery, BatchStats, DimSupport, EngineConfig, EngineError,
    EngineResult, ExecutorConfig, GuaranteeClass, LatencySummary, Phase, ProblemKind, QueryTrace,
    RangeShape, Registry, ScriptOutcome, ScriptStep, ShapeClass, SolverDescriptor, SolverReport,
    TraceRecorder, WeightedInstance, WeightedSolver,
};
use mrs_core::Placement;

use crate::cache::{AnswerCache, CacheKey};
use crate::catalog::{Catalog, Dataset, DatasetCore};
use crate::http::{Request, Response};
use crate::json::Json;
use crate::metrics::render_metrics;
use crate::stats::ServerStats;
use crate::trace::{trace_json, TraceRing};

/// Which runtime drives connection I/O (compute always goes through the
/// same worker pool and [`Service::handle`], so admission, deadlines, and
/// panic isolation are identical under either).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RuntimeKind {
    /// The epoll reactor (Linux only): one event-loop thread drives every
    /// connection with edge-triggered nonblocking sockets, incremental
    /// in-place parsing, HTTP/1.1 pipelining, and coalesced writes.  On
    /// other platforms this falls back to [`RuntimeKind::Threaded`].
    Epoll,
    /// The portable blocking runtime: an accept thread feeds a bounded
    /// queue; workers do blocking reads/writes and park idle keep-alives.
    Threaded,
}

impl Default for RuntimeKind {
    /// `Epoll` where it exists, `Threaded` elsewhere.
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            RuntimeKind::Epoll
        } else {
            RuntimeKind::Threaded
        }
    }
}

impl RuntimeKind {
    /// Parses a `--runtime` flag value.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "epoll" => Some(RuntimeKind::Epoll),
            "threaded" => Some(RuntimeKind::Threaded),
            _ => None,
        }
    }

    /// The flag spelling of this runtime.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::Epoll => "epoll",
            RuntimeKind::Threaded => "threaded",
        }
    }
}

/// Server configuration.  [`ServerConfig::default`] is ready for local use.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, `HOST:PORT` (port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads; `0` picks `min(available_parallelism, 8)`.
    pub threads: usize,
    /// Approximation parameter handed to the approximate solvers.
    pub eps: f64,
    /// Seed for the randomized solvers.  `Some` makes every answer
    /// deterministic (solvers are constructed per lookup from the seeded
    /// config), which the end-to-end tests rely on; `None` leaves them
    /// entropy-seeded.
    pub seed: Option<u64>,
    /// Shards of the answer cache.
    pub cache_shards: usize,
    /// Total capacity of the answer cache, in entries.
    pub cache_capacity: usize,
    /// Re-certify every computed answer against the resident index.
    pub certify: bool,
    /// Slow-query threshold: an executed query whose phases sum past this
    /// gets one structured line on stderr (`None` disables the log).
    pub slow_query: Option<Duration>,
    /// Default per-request compute deadline for `/query` and `/batch`
    /// (`--request-timeout-ms`).  A request's `X-Deadline-Ms` header
    /// overrides it per call; `None` disables the default.
    pub request_timeout: Option<Duration>,
    /// Capacity of the bounded accepted-connection queue; connections
    /// arriving when it is full are shed with a `503` + `Retry-After`.
    pub queue_capacity: usize,
    /// Global limit on concurrently-handled `/query` + `/batch` requests;
    /// requests past it are shed with a `503` + `Retry-After`.
    pub max_inflight: usize,
    /// Per-dataset limit on concurrently-handled query requests (`0`
    /// derives `max_inflight / 2`, floored at 1).
    pub max_inflight_per_dataset: usize,
    /// Overload watermark in `[0, 1]`: once global in-flight reaches this
    /// fraction of `max_inflight`, new queries run in degradation mode (the
    /// `auto` router restricts to predicted-cheap solvers).  `>= 1.0`
    /// disables degradation.
    pub overload_watermark: f64,
    /// Keep-alive window for idle connections (the runtime evicts idle
    /// connections past it).
    pub keep_alive: Duration,
    /// Registers the test-only `chaos-panic` solver (always panics) so the
    /// fault-injection harness can exercise panic isolation end to end.
    pub chaos_solver: bool,
    /// Which runtime drives connection I/O (`--runtime {threaded,epoll}`).
    pub runtime: RuntimeKind,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".to_string(),
            threads: 0,
            eps: 0.25,
            seed: None,
            cache_shards: 8,
            cache_capacity: 4096,
            certify: true,
            slow_query: None,
            request_timeout: None,
            queue_capacity: 1024,
            max_inflight: 256,
            max_inflight_per_dataset: 0,
            overload_watermark: 0.75,
            keep_alive: Duration::from_secs(30),
            chaos_solver: false,
            runtime: RuntimeKind::default(),
        }
    }
}

impl ServerConfig {
    /// The worker-pool size this configuration resolves to.
    pub fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8)
        }
    }

    /// The per-dataset in-flight limit this configuration resolves to.
    pub fn resolved_max_inflight_per_dataset(&self) -> usize {
        if self.max_inflight_per_dataset > 0 {
            self.max_inflight_per_dataset
        } else {
            (self.max_inflight / 2).max(1)
        }
    }
}

/// The full workspace registry under `config` (re-exported from
/// [`mrs_batched::engine::full_registry`], where the wiring lives so every
/// consumer — CLI, service, benchmarks — dispatches the same solver set).
pub use mrs_batched::engine::full_registry;

/// Shared, thread-safe service state: every worker holds an `Arc<Service>`.
pub struct Service {
    config: ServerConfig,
    registry: Registry,
    catalog: Catalog,
    cache: AnswerCache,
    stats: ServerStats,
    traces: TraceRing,
    next_request_id: AtomicU64,
    shutdown: AtomicBool,
    local_addr: OnceLock<std::net::SocketAddr>,
    dataset_inflight: Mutex<HashMap<String, Arc<AtomicU64>>>,
}

/// The test-only always-panicking solver behind `--chaos-solver`: the
/// fault-injection harness queries it to prove a worker survives a handler
/// panic (the client sees a well-formed `500`, `/stats` counts it, and the
/// pool keeps serving).  Registered *externally* — never part of the default
/// registry, so `maxrs solvers` output is untouched without the flag.
struct ChaosPanicSolver;

impl ChaosPanicSolver {
    const DESCRIPTOR: SolverDescriptor = SolverDescriptor {
        name: "chaos-panic",
        problem: ProblemKind::Weighted,
        shape: ShapeClass::Any,
        dims: DimSupport::Any,
        guarantee: GuaranteeClass::HalfMinusEps,
        dynamic: false,
        batch: BatchCapability::Independent,
        negative_weights: true,
        reference: "test-only always-panicking solver (fault-injection harness)",
    };
}

impl<const D: usize> WeightedSolver<D> for ChaosPanicSolver {
    fn descriptor(&self) -> &SolverDescriptor {
        &Self::DESCRIPTOR
    }

    fn solve(&self, _instance: &WeightedInstance<D>) -> EngineResult<SolverReport<Placement<D>>> {
        panic!("chaos-panic solver fired (fault injection)");
    }
}

/// A parsed query before the target dataset's dimension is known.
struct QuerySpec {
    solver: String,
    problem: ProblemKind,
    shape: ShapeSpec,
}

/// A query shape before dimension resolution.
#[derive(Clone, Copy)]
enum ShapeSpec {
    /// A ball of the given radius (`{"interval": L}` arrives as `L/2`).
    Ball(f64),
    /// A planar box of the given extents.
    Box(f64, f64),
}

impl QuerySpec {
    /// The concrete 2-D query, for planar datasets.
    fn to_planar(&self) -> Result<BatchQuery<2>, String> {
        let shape = match self.shape {
            ShapeSpec::Ball(radius) => RangeShape::<2>::ball(radius),
            ShapeSpec::Box(w, h) => RangeShape::rect(w, h),
        };
        Ok(self.query(shape))
    }

    /// The concrete 1-D query, for line datasets (box shapes are planar-only).
    fn to_line(&self) -> Result<BatchQuery<1>, String> {
        let shape = match self.shape {
            ShapeSpec::Ball(radius) => RangeShape::<1>::ball(radius),
            ShapeSpec::Box(..) => {
                return Err("box queries need a planar (2-D) dataset".to_string());
            }
        };
        Ok(self.query(shape))
    }

    fn query<const D: usize>(&self, shape: RangeShape<D>) -> BatchQuery<D> {
        match self.problem {
            ProblemKind::Weighted => BatchQuery::weighted(self.solver.clone(), shape),
            ProblemKind::Colored => BatchQuery::colored(self.solver.clone(), shape),
        }
    }
}

/// How one query of a request was answered.
enum Outcome {
    /// Served from the answer cache.
    Hit(Arc<str>),
    /// Computed by the engine this request.
    Computed(Arc<str>),
    /// A typed engine failure: failed dispatch (unknown solver,
    /// shape/dimension mismatch, ...) or an exceeded deadline.
    Failed(EngineError),
}

/// RAII guard for one slot of the global in-flight window; dropping it
/// releases the slot even when the handler panics.
struct InflightPermit<'s> {
    stats: &'s ServerStats,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        self.stats.inflight_exit();
    }
}

/// RAII guard for one slot of a dataset's in-flight window.
struct DatasetPermit {
    counter: Arc<AtomicU64>,
}

impl Drop for DatasetPermit {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The merged result of answering a list of queries.
struct Answered {
    outcomes: Vec<Outcome>,
    cache_hits: usize,
    executed: usize,
    stats: Option<BatchStats>,
    latency: LatencySummary,
}

impl Service {
    /// A service with the given configuration and an empty catalog.
    pub fn new(config: ServerConfig) -> Self {
        let mut engine_config = EngineConfig::practical(config.eps);
        if let Some(seed) = config.seed {
            engine_config = engine_config.with_seed(seed);
        }
        let mut registry = full_registry(engine_config);
        if config.chaos_solver {
            registry.register_weighted::<2>(Arc::new(ChaosPanicSolver));
            registry.register_weighted::<1>(Arc::new(ChaosPanicSolver));
        }
        Self {
            registry,
            catalog: Catalog::new(),
            cache: AnswerCache::new(config.cache_shards, config.cache_capacity),
            stats: ServerStats::new(),
            traces: TraceRing::default(),
            next_request_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            local_addr: OnceLock::new(),
            dataset_inflight: Mutex::new(HashMap::new()),
            config,
        }
    }

    /// The dataset catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The answer cache.
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// The per-endpoint statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The ring of recent query traces (`GET /debug/traces`).
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// The configuration the service runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// `true` once shutdown was requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown (idempotent).  The runtime's accept loop observes
    /// the flag; see [`crate::runtime::ServerHandle`].
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the (possibly blocked) accept loop awake.  A wildcard bind
        // (0.0.0.0 / ::) is not connectable on every platform, so aim the
        // poke at the loopback of the same family instead.
        if let Some(addr) = self.local_addr.get() {
            let mut target = *addr;
            if target.ip().is_unspecified() {
                target.set_ip(match target {
                    std::net::SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                    std::net::SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
                });
            }
            let _ = std::net::TcpStream::connect(target);
        }
    }

    /// Records the bound address (runtime calls this once after binding).
    pub(crate) fn set_local_addr(&self, addr: std::net::SocketAddr) {
        let _ = self.local_addr.set(addr);
    }

    /// Routes one request to its handler and measures it into the stats.
    /// Every response — success or error — carries an `X-Request-Id`
    /// header; executed queries key their `/debug/traces` entries by it.
    pub fn handle(&self, request: &Request) -> Response {
        let started = Instant::now();
        let rid = format!("r-{:06}", self.next_request_id.fetch_add(1, Ordering::Relaxed));
        let endpoint = crate::stats::Endpoint::of(&request.target);
        // Admission: the compute endpoints hold a global in-flight permit
        // for their whole handling window; past the limit they shed with a
        // well-formed 503 + Retry-After instead of queueing unboundedly.
        let compute =
            matches!(endpoint, crate::stats::Endpoint::Query | crate::stats::Endpoint::Batch);
        let _permit = if compute {
            match self.admit_global() {
                Ok(permit) => Some(permit),
                Err(response) => {
                    self.stats.record(endpoint, started.elapsed(), false);
                    return response.with_header("X-Request-Id", rid);
                }
            }
        } else {
            None
        };
        let response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.route(request, &rid)))
                .unwrap_or_else(|_| {
                    self.stats.record_panic();
                    Response::json(500, r#"{"error":"internal panic while handling the request"}"#)
                });
        self.stats.record(endpoint, started.elapsed(), response.is_success());
        response.with_header("X-Request-Id", rid)
    }

    /// Takes one slot of the global in-flight window, or builds the 503 the
    /// request is shed with.
    fn admit_global(&self) -> Result<InflightPermit<'_>, Response> {
        let max = self.config.max_inflight as u64;
        if max > 0 && self.stats.inflight() >= max {
            self.stats.record_shed();
            return Err(self.shed_response("server is at its in-flight request limit"));
        }
        self.stats.inflight_enter();
        Ok(InflightPermit { stats: &self.stats })
    }

    /// Takes one slot of `dataset`'s in-flight window, or builds the 503
    /// the request is shed with.
    fn admit_dataset(&self, dataset: &str) -> Result<DatasetPermit, Response> {
        let limit = self.config.resolved_max_inflight_per_dataset() as u64;
        let counter = {
            let mut map =
                self.dataset_inflight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(map.entry(dataset.to_string()).or_default())
        };
        // Optimistic increment with rollback: contention on one dataset
        // never blocks queries against the others.
        if counter.fetch_add(1, Ordering::AcqRel) >= limit {
            counter.fetch_sub(1, Ordering::AcqRel);
            self.stats.record_shed();
            return Err(self
                .shed_response(&format!("dataset `{dataset}` is at its in-flight request limit")));
        }
        Ok(DatasetPermit { counter })
    }

    /// The well-formed shed response: `503` + `Retry-After` derived from
    /// the query endpoint's p99 scaled by the current in-flight depth —
    /// roughly how long the backlog needs to drain — clamped to `[1, 60]`
    /// seconds.
    pub(crate) fn shed_response(&self, message: &str) -> Response {
        let p99 = self
            .stats
            .endpoint_histogram(crate::stats::Endpoint::Query)
            .quantile(0.99)
            .as_secs_f64();
        let depth = self.stats.inflight().max(1) as f64;
        let retry_after = (p99 * depth).ceil().clamp(1.0, 60.0) as u64;
        error_response(503, message).with_header("Retry-After", retry_after.to_string())
    }

    /// `true` once global in-flight load crosses the overload watermark:
    /// new queries then run in degradation mode.
    fn overloaded(&self) -> bool {
        let max = self.config.max_inflight as f64;
        let watermark = self.config.overload_watermark;
        max > 0.0 && watermark < 1.0 && self.stats.inflight() as f64 >= watermark * max
    }

    /// The compute deadline for one request: the `X-Deadline-Ms` header
    /// when present (and parseable), else the configured default.
    fn request_deadline(&self, request: &Request) -> Option<Instant> {
        let timeout = match request.header("x-deadline-ms").map(str::trim) {
            Some(raw) => raw.parse::<u64>().ok().map(Duration::from_millis),
            None => self.config.request_timeout,
        };
        timeout.map(|t| Instant::now() + t)
    }

    fn route(&self, request: &Request, rid: &str) -> Response {
        let path = request.target.split('?').next().unwrap_or("");
        match (request.method.as_str(), path) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/solvers") => self.solvers(),
            ("GET", "/stats") => self.stats_endpoint(),
            ("GET", "/metrics") => self.metrics_endpoint(),
            ("GET", "/debug/traces") => self.debug_traces(request),
            ("GET", "/datasets") => self.list_datasets(),
            ("POST", "/query") => self.query(request, rid),
            ("POST", "/batch") => self.batch(request, rid),
            ("POST", "/shutdown") => {
                self.request_shutdown();
                Response::json(200, r#"{"status":"shutting down"}"#)
            }
            ("POST", p) if p.starts_with("/datasets/") => {
                let rest = &p["/datasets/".len()..];
                match rest.split_once('/') {
                    None => self.upload_dataset(rest, request),
                    Some((name, action @ ("insert" | "delete"))) => {
                        self.mutate_dataset(name, action, request)
                    }
                    Some(_) => error_response(404, "no such endpoint"),
                }
            }
            ("GET" | "POST", _) => error_response(404, "no such endpoint"),
            _ => error_response(405, "method not allowed"),
        }
    }

    fn healthz(&self) -> Response {
        let body = Json::Obj(vec![
            ("status".into(), Json::str("ok")),
            ("uptime_us".into(), Json::num(self.stats.uptime().as_micros() as f64)),
            ("datasets".into(), Json::num(self.catalog.len() as f64)),
        ]);
        Response::json(200, body.render())
    }

    fn solvers(&self) -> Response {
        let solvers: Vec<Json> = self
            .registry
            .descriptors()
            .iter()
            .map(|d| {
                Json::Obj(vec![
                    ("name".into(), Json::str(d.name)),
                    (
                        "problem".into(),
                        Json::str(match d.problem {
                            ProblemKind::Weighted => "weighted",
                            ProblemKind::Colored => "colored",
                        }),
                    ),
                    ("shape".into(), Json::str(d.shape.to_string())),
                    (
                        "dims".into(),
                        match d.dims {
                            DimSupport::Any => Json::str("any"),
                            DimSupport::Fixed(n) => Json::num(n as f64),
                        },
                    ),
                    (
                        "guarantee".into(),
                        Json::str(match d.guarantee {
                            GuaranteeClass::Exact => "exact",
                            GuaranteeClass::HalfMinusEps => "half-minus-eps",
                            GuaranteeClass::OneMinusEps => "one-minus-eps",
                        }),
                    ),
                    (
                        "batch".into(),
                        Json::str(match d.batch {
                            BatchCapability::Independent => "independent",
                            BatchCapability::IndexShared => "index-shared",
                        }),
                    ),
                    ("updates".into(), Json::str(if d.dynamic { "incremental" } else { "static" })),
                    ("reference".into(), Json::str(d.reference)),
                ])
            })
            .collect();
        Response::json(200, Json::Obj(vec![("solvers".into(), Json::Arr(solvers))]).render())
    }

    fn dataset_summary(&self, dataset: &Dataset) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(dataset.name())),
            ("dim".into(), Json::num(dataset.dim() as f64)),
            ("epoch".into(), Json::num(dataset.epoch() as f64)),
            ("version".into(), Json::num(dataset.version() as f64)),
            ("delta".into(), Json::num(dataset.delta_size() as f64)),
            ("compactions".into(), Json::num(dataset.compactions() as f64)),
            ("compaction_time_us".into(), Json::num(dataset.compaction_time().as_micros() as f64)),
            ("points".into(), Json::num(dataset.point_count() as f64)),
            ("sites".into(), Json::num(dataset.site_count() as f64)),
            ("requests".into(), Json::num(dataset.requests() as f64)),
            ("index_builds".into(), Json::num(dataset.index_builds() as f64)),
            (
                "index_build_time_us".into(),
                Json::num(dataset.index_build_time().as_micros() as f64),
            ),
        ])
    }

    fn list_datasets(&self) -> Response {
        let datasets: Vec<Json> =
            self.catalog.datasets().iter().map(|d| self.dataset_summary(d)).collect();
        Response::json(200, Json::Obj(vec![("datasets".into(), Json::Arr(datasets))]).render())
    }

    fn upload_dataset(&self, name: &str, request: &Request) -> Response {
        let Some(csv) = request.body_text() else {
            return error_response(400, "dataset body must be UTF-8 CSV text");
        };
        let loaded = match query_param(&request.target, "dim") {
            None | Some("2") => self.catalog.load_planar_csv(name, csv),
            Some("1") => self.catalog.load_line_csv(name, csv),
            Some(other) => {
                return error_response(400, &format!("unsupported dataset dim `{other}`"));
            }
        };
        match loaded {
            Ok(dataset) => Response::json(
                200,
                Json::Obj(vec![("dataset".into(), self.dataset_summary(&dataset))]).render(),
            ),
            Err(e) => error_response(400, &e.to_string()),
        }
    }

    /// `POST /datasets/{name}/insert|delete`: applies a mutation body (the
    /// dataset's own CSV record shape for inserts, bare coordinates for
    /// deletes) as one version bump, then purges the answer cache entries
    /// of that dataset's older versions — fine-grained invalidation, no
    /// catalog-wide epoch bump.
    fn mutate_dataset(&self, name: &str, action: &str, request: &Request) -> Response {
        let Some(dataset) = self.catalog.get(name) else {
            return error_response(404, &format!("no dataset is named `{name}`"));
        };
        let Some(csv) = request.body_text() else {
            return error_response(400, "mutation body must be UTF-8 CSV text");
        };
        let applied = match action {
            "insert" => dataset.insert_csv(csv),
            _ => dataset.delete_csv(csv),
        };
        match applied {
            Ok(report) => {
                let invalidated =
                    self.cache.invalidate_dataset_below(dataset.epoch(), report.version);
                let body = Json::Obj(vec![
                    (
                        "mutated".into(),
                        Json::Obj(vec![
                            ("action".into(), Json::str(action)),
                            ("inserted".into(), Json::num(report.outcome.inserted as f64)),
                            ("deleted".into(), Json::num(report.outcome.deleted as f64)),
                            ("missed".into(), Json::num(report.outcome.missed as f64)),
                            ("version".into(), Json::num(report.version as f64)),
                            ("compacted".into(), Json::Bool(report.compacted)),
                            ("cache_invalidated".into(), Json::num(invalidated as f64)),
                        ]),
                    ),
                    ("dataset".into(), self.dataset_summary(&dataset)),
                ]);
                Response::json(200, body.render())
            }
            Err(e) => error_response(400, &e.to_string()),
        }
    }

    fn stats_endpoint(&self) -> Response {
        let endpoints: Vec<Json> = self
            .stats
            .snapshots()
            .into_iter()
            .map(|s| {
                Json::Obj(vec![
                    ("endpoint".into(), Json::str(s.name)),
                    ("requests".into(), Json::num(s.requests as f64)),
                    ("errors".into(), Json::num(s.errors as f64)),
                    ("total_us".into(), Json::num(s.total.as_micros() as f64)),
                    ("latency".into(), latency_json(&s.latency)),
                ])
            })
            .collect();
        let cache = self.cache.counters();
        let datasets: Vec<Json> =
            self.catalog.datasets().iter().map(|d| self.dataset_summary(d)).collect();
        let body = Json::Obj(vec![
            ("uptime_us".into(), Json::num(self.stats.uptime().as_micros() as f64)),
            ("requests".into(), Json::num(self.stats.total_requests() as f64)),
            ("requests_per_sec".into(), Json::num(self.stats.requests_per_sec())),
            (
                "work".into(),
                Json::Obj(vec![
                    (
                        "candidates_examined".into(),
                        Json::num(self.stats.candidates_examined() as f64),
                    ),
                    (
                        "grid_cells_visited".into(),
                        Json::num(self.stats.grid_cells_visited() as f64),
                    ),
                    ("sieve_rejected".into(), Json::num(self.stats.sieve_rejected() as f64)),
                ]),
            ),
            (
                "auto".into(),
                Json::Obj(vec![
                    ("picks".into(), Json::num(self.stats.auto_picks() as f64)),
                    ("predicted_work".into(), Json::num(self.stats.auto_predicted_work() as f64)),
                    ("actual_work".into(), Json::num(self.stats.auto_actual_work() as f64)),
                ]),
            ),
            (
                "overload".into(),
                Json::Obj(vec![
                    ("shed".into(), Json::num(self.stats.shed() as f64)),
                    ("deadline_exceeded".into(), Json::num(self.stats.deadline_exceeded() as f64)),
                    ("panics".into(), Json::num(self.stats.panics() as f64)),
                    ("degraded".into(), Json::num(self.stats.degraded() as f64)),
                    ("inflight".into(), Json::num(self.stats.inflight() as f64)),
                    ("max_inflight".into(), Json::num(self.config.max_inflight as f64)),
                    ("queue_capacity".into(), Json::num(self.config.queue_capacity as f64)),
                    ("overload_watermark".into(), Json::num(self.config.overload_watermark)),
                ]),
            ),
            (
                "reactor".into(),
                Json::Obj({
                    let reactor = self.stats.reactor();
                    vec![
                        ("runtime".into(), Json::Str(self.config.runtime.name().into())),
                        ("wakeups".into(), Json::num(reactor.wakeups as f64)),
                        ("readiness_events".into(), Json::num(reactor.readiness_events as f64)),
                        ("accepted".into(), Json::num(reactor.accepted as f64)),
                        ("closed".into(), Json::num(reactor.closed as f64)),
                        ("max_pipeline_depth".into(), Json::num(reactor.max_pipeline_depth as f64)),
                        (
                            "coalesced_write_bytes".into(),
                            Json::num(reactor.coalesced_write_bytes as f64),
                        ),
                        ("spurious_wakeups".into(), Json::num(reactor.spurious_wakeups as f64)),
                    ]
                }),
            ),
            ("endpoints".into(), Json::Arr(endpoints)),
            (
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::num(cache.hits as f64)),
                    ("misses".into(), Json::num(cache.misses as f64)),
                    ("evictions".into(), Json::num(cache.evictions as f64)),
                    ("invalidations".into(), Json::num(cache.invalidations as f64)),
                    ("entries".into(), Json::num(cache.entries as f64)),
                    ("capacity".into(), Json::num(cache.capacity as f64)),
                    ("hit_rate".into(), Json::num(cache.hit_rate())),
                ]),
            ),
            ("datasets".into(), Json::Arr(datasets)),
        ]);
        Response::json(200, body.render())
    }

    /// `GET /metrics`: the whole observability surface in Prometheus text
    /// exposition format (see [`crate::metrics`]).
    fn metrics_endpoint(&self) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            headers: Vec::new(),
            body: render_metrics(&self.stats, &self.catalog, &self.cache.counters()).into_bytes(),
        }
    }

    /// `GET /debug/traces[?id=r-000042]`: the retained phase-timed traces,
    /// oldest first, optionally filtered to one request id.
    fn debug_traces(&self, request: &Request) -> Response {
        let traces = match query_param(&request.target, "id") {
            Some(id) => self.traces.for_request(id),
            None => self.traces.snapshot(),
        };
        let body = Json::Obj(vec![
            ("capacity".into(), Json::num(self.traces.capacity() as f64)),
            ("traces".into(), Json::Arr(traces.iter().map(trace_json).collect())),
        ]);
        Response::json(200, body.render())
    }

    /// Parses one query object — `{"solver": "...", "shape": {"ball": R} |
    /// {"box": [W, H]} | {"interval": L}}` — into a dimension-agnostic spec.
    /// The problem kind (weighted vs colored) comes from the solver's
    /// registry descriptor (`descriptors` is hoisted by the caller so a
    /// batch resolves the listing once, not per query); the spec becomes a
    /// concrete [`BatchQuery`] only once the target dataset's dimension is
    /// known.
    fn parse_query_spec(
        &self,
        descriptors: &[mrs_core::engine::SolverDescriptor],
        value: &Json,
    ) -> Result<QuerySpec, String> {
        let solver = value
            .get("solver")
            .and_then(Json::as_str)
            .ok_or("query needs a `solver` name".to_string())?;
        let shape = value.get("shape").ok_or("query needs a `shape`".to_string())?;
        let positive = |what: &str, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(format!("{what} must be positive, got {v}"))
            }
        };
        let shape = if let Some(radius) = shape.get("ball").and_then(Json::as_f64) {
            ShapeSpec::Ball(positive("ball radius", radius)?)
        } else if let Some(length) = shape.get("interval").and_then(Json::as_f64) {
            ShapeSpec::Ball(positive("interval length", length)? / 2.0)
        } else if let Some(extents) = shape.get("box").and_then(Json::as_arr) {
            let [Some(w), Some(h)] =
                [extents.first().and_then(Json::as_f64), extents.get(1).and_then(Json::as_f64)]
            else {
                return Err("`box` must be an array of two numbers".to_string());
            };
            ShapeSpec::Box(positive("box width", w)?, positive("box height", h)?)
        } else {
            return Err(
                "`shape` must be {\"ball\": R}, {\"box\": [W, H]} or {\"interval\": L}".to_string()
            );
        };
        // One name can serve both problem kinds (the `auto` router does);
        // an explicit `"problem"` field picks the side, otherwise the first
        // registered descriptor under that name wins.
        let problem = match value.get("problem").and_then(Json::as_str) {
            None => None,
            Some("weighted") => Some(ProblemKind::Weighted),
            Some("colored") => Some(ProblemKind::Colored),
            Some(other) => {
                return Err(format!(
                    "`problem` must be \"weighted\" or \"colored\", got `{other}`"
                ));
            }
        };
        let descriptor = descriptors
            .iter()
            .find(|d| d.name == solver && problem.is_none_or(|p| d.problem == p))
            .ok_or_else(|| match problem {
                None => format!("no registered solver is named `{solver}`"),
                Some(p) => format!(
                    "no registered {} solver is named `{solver}`",
                    match p {
                        ProblemKind::Weighted => "weighted",
                        ProblemKind::Colored => "colored",
                    }
                ),
            })?;
        Ok(QuerySpec { solver: solver.to_string(), problem: descriptor.problem, shape })
    }

    /// Answers queries against a dataset of any supported dimension: cache
    /// lookups first (keyed by the dataset's epoch *and* current version),
    /// then one engine script over the misses at the dataset's current
    /// version — every computed answer is certified against, stamped with,
    /// and cached under exactly the version it was computed at.
    ///
    /// Every executed (non-cache-hit) query leaves one phase-timed
    /// [`QueryTrace`] in the [`TraceRing`], keyed by `rid` — the same id
    /// the response's `X-Request-Id` header carries — with the service-side
    /// cache-probe and render phases stitched onto the engine's
    /// plan/build/solve/certify phases.
    fn answer<const D: usize>(
        &self,
        dataset: &DatasetCore<D>,
        queries: &[BatchQuery<D>],
        use_cache: bool,
        rid: &str,
        deadline: Option<Instant>,
        degraded: bool,
    ) -> Answered {
        let epoch = dataset.epoch();
        let version = dataset.versioned().version();
        let mut outcomes: Vec<Option<Outcome>> = Vec::with_capacity(queries.len());
        outcomes.resize_with(queries.len(), || None);
        let mut steps: Vec<ScriptStep<D>> = Vec::new();
        let mut miss_positions: Vec<usize> = Vec::new();
        let mut miss_probe: Vec<Duration> = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            let probe_start = Instant::now();
            if use_cache {
                if let Some(rendered) = self.cache.get(&CacheKey::for_query(epoch, version, query))
                {
                    outcomes[i] = Some(Outcome::Hit(rendered));
                    continue;
                }
            }
            miss_positions.push(i);
            miss_probe.push(if use_cache { probe_start.elapsed() } else { Duration::ZERO });
            steps.push(ScriptStep::Query(query.clone()));
        }

        let mut stats = None;
        let mut latency = LatencySummary::default();
        if !miss_positions.is_empty() {
            // The executor certifies per answer against the version's delta
            // overlay, so the flag rendered (and cached) here is per answer
            // — one contract violation in a batch cannot mislabel its
            // neighbors, and certifying after a mutation rebuilds nothing.
            let executor = BatchExecutor::with_config(
                &self.registry,
                ExecutorConfig { threads: None, certify: self.config.certify, deadline, degraded },
            );
            if degraded {
                self.stats.record_degraded();
            }
            let mut recorder = TraceRecorder::new();
            let report = executor.execute_script_traced(dataset.versioned(), &steps, &mut recorder);
            let mut render_times = vec![Duration::ZERO; steps.len()];
            for (slot, (&i, outcome)) in miss_positions.iter().zip(&report.outcomes).enumerate() {
                let ScriptOutcome::Answer { version, certified, answer } = outcome else {
                    unreachable!("an all-query script answers every step");
                };
                outcomes[i] = Some(match answer.error() {
                    Some(e) => {
                        if matches!(e, EngineError::DeadlineExceeded { .. }) {
                            self.stats.record_deadline_exceeded();
                        }
                        Outcome::Failed(e.clone())
                    }
                    None => {
                        let flag = *certified == Some(true);
                        let render_start = Instant::now();
                        let rendered: Arc<str> = Arc::from(render_answer(answer, flag, *version));
                        render_times[slot] = render_start.elapsed();
                        // Never cache a contract violation: it must stay
                        // loud, not be replayed from the LRU.
                        if use_cache && *certified != Some(false) {
                            self.cache.insert(
                                CacheKey::for_query(epoch, *version, &queries[i]),
                                Arc::clone(&rendered),
                            );
                        }
                        Outcome::Computed(rendered)
                    }
                });
            }
            latency = report.per_query_latency();
            let batch_stats = report.stats;
            self.stats.record_work(
                batch_stats.candidates_examined,
                batch_stats.grid_cells_visited,
                batch_stats.sieve_rejected,
            );
            self.stats.record_auto(
                batch_stats.auto_picks,
                batch_stats.auto_predicted_work,
                batch_stats.auto_actual_work,
            );
            stats = Some(batch_stats);

            // Stamp, account and retain the traces: `trace.query` comes
            // back as the script step position, which is the miss slot.
            for mut trace in recorder.take() {
                let slot = trace.query;
                trace.id = rid.to_string();
                trace.dataset = dataset.name().to_string();
                trace.query = miss_positions.get(slot).copied().unwrap_or(slot);
                trace.set_phase(
                    Phase::CacheLookup,
                    miss_probe.get(slot).copied().unwrap_or(Duration::ZERO),
                );
                trace.set_phase(
                    Phase::Render,
                    render_times.get(slot).copied().unwrap_or(Duration::ZERO),
                );
                self.stats.record_solver(&trace.solver, trace.phase(Phase::Solve));
                self.stats.record_dataset_query(dataset.name(), trace.phase_total());
                if let Some(choice) = trace.routed {
                    self.stats.record_auto_choice(choice);
                }
                if let Some(threshold) = self.config.slow_query {
                    if trace.phase_total() >= threshold {
                        eprintln!("{}", slow_query_line(&trace));
                    }
                }
                self.traces.push(trace);
            }
        }
        dataset.count_requests(queries.len() as u64);

        let executed = miss_positions.len();
        Answered {
            outcomes: outcomes.into_iter().map(|o| o.expect("every query answered")).collect(),
            cache_hits: queries.len() - executed,
            executed,
            stats,
            latency,
        }
    }

    fn query(&self, request: &Request, rid: &str) -> Response {
        let body = match parse_body(request) {
            Ok(v) => v,
            Err(resp) => return *resp,
        };
        let Some(dataset_name) = body.get("dataset").and_then(Json::as_str) else {
            return error_response(400, "query needs a `dataset` name");
        };
        let Some(dataset) = self.catalog.get(dataset_name) else {
            return error_response(404, &format!("no dataset is named `{dataset_name}`"));
        };
        let spec = match self.parse_query_spec(&self.registry.descriptors(), &body) {
            Ok(spec) => spec,
            Err(message) => return error_response(400, &message),
        };
        let use_cache = body.get("cache").and_then(Json::as_bool).unwrap_or(true);
        let _dataset_permit = match self.admit_dataset(dataset_name) {
            Ok(permit) => permit,
            Err(response) => return response,
        };
        let deadline = self.request_deadline(request);
        let degraded = self.overloaded();
        let answered = match dataset.as_ref() {
            Dataset::Planar(core) => match spec.to_planar() {
                Ok(query) => self.answer(
                    core,
                    std::slice::from_ref(&query),
                    use_cache,
                    rid,
                    deadline,
                    degraded,
                ),
                Err(message) => return error_response(400, &message),
            },
            Dataset::Line(core) => match spec.to_line() {
                Ok(query) => self.answer(
                    core,
                    std::slice::from_ref(&query),
                    use_cache,
                    rid,
                    deadline,
                    degraded,
                ),
                Err(message) => return error_response(400, &message),
            },
        };
        match &answered.outcomes[0] {
            Outcome::Failed(error @ EngineError::DeadlineExceeded { .. }) => {
                error_response(504, &error.to_string())
            }
            Outcome::Failed(error) => error_response(422, &error.to_string()),
            Outcome::Hit(rendered) => Response::json(
                200,
                format!("{{\"cached\":true,\"trace\":\"{rid}\",\"answer\":{rendered}}}"),
            ),
            Outcome::Computed(rendered) => Response::json(
                200,
                format!("{{\"cached\":false,\"trace\":\"{rid}\",\"answer\":{rendered}}}"),
            ),
        }
    }

    fn batch(&self, request: &Request, rid: &str) -> Response {
        let body = match parse_body(request) {
            Ok(v) => v,
            Err(resp) => return *resp,
        };
        let Some(dataset_name) = body.get("dataset").and_then(Json::as_str) else {
            return error_response(400, "batch needs a `dataset` name");
        };
        let Some(dataset) = self.catalog.get(dataset_name) else {
            return error_response(404, &format!("no dataset is named `{dataset_name}`"));
        };
        let Some(raw_queries) = body.get("queries").and_then(Json::as_arr) else {
            return error_response(400, "batch needs a `queries` array");
        };
        let descriptors = self.registry.descriptors();
        let mut specs = Vec::with_capacity(raw_queries.len());
        for (i, raw) in raw_queries.iter().enumerate() {
            match self.parse_query_spec(&descriptors, raw) {
                Ok(spec) => specs.push(spec),
                Err(message) => return error_response(400, &format!("query {i}: {message}")),
            }
        }
        let use_cache = body.get("cache").and_then(Json::as_bool).unwrap_or(true);
        let queries_len = specs.len();
        let _dataset_permit = match self.admit_dataset(dataset_name) {
            Ok(permit) => permit,
            Err(response) => return response,
        };
        let deadline = self.request_deadline(request);
        let degraded = self.overloaded();
        let answered = match dataset.as_ref() {
            Dataset::Planar(core) => {
                let mut queries = Vec::with_capacity(specs.len());
                for (i, spec) in specs.iter().enumerate() {
                    match spec.to_planar() {
                        Ok(query) => queries.push(query),
                        Err(message) => {
                            return error_response(400, &format!("query {i}: {message}"));
                        }
                    }
                }
                self.answer(core, &queries, use_cache, rid, deadline, degraded)
            }
            Dataset::Line(core) => {
                let mut queries = Vec::with_capacity(specs.len());
                for (i, spec) in specs.iter().enumerate() {
                    match spec.to_line() {
                        Ok(query) => queries.push(query),
                        Err(message) => {
                            return error_response(400, &format!("query {i}: {message}"));
                        }
                    }
                }
                self.answer(core, &queries, use_cache, rid, deadline, degraded)
            }
        };

        let mut body = String::from("{\"answers\":[");
        let mut failed = 0usize;
        for (i, outcome) in answered.outcomes.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            match outcome {
                Outcome::Hit(rendered) => {
                    body.push_str(&format!(
                        "{{\"cached\":true,\"trace\":\"{rid}\",\"answer\":{rendered}}}"
                    ));
                }
                Outcome::Computed(rendered) => {
                    body.push_str(&format!(
                        "{{\"cached\":false,\"trace\":\"{rid}\",\"answer\":{rendered}}}"
                    ));
                }
                Outcome::Failed(error) => {
                    failed += 1;
                    let mut fields = vec![("error".into(), Json::str(error.to_string()))];
                    if matches!(error, EngineError::DeadlineExceeded { .. }) {
                        fields.push(("deadline_exceeded".into(), Json::Bool(true)));
                    }
                    body.push_str(&Json::Obj(fields).render());
                }
            }
        }
        body.push_str("],\"stats\":");
        let mut stats = vec![
            ("queries".to_string(), Json::num(queries_len as f64)),
            ("failed".to_string(), Json::num(failed as f64)),
            ("cache_hits".to_string(), Json::num(answered.cache_hits as f64)),
            ("executed".to_string(), Json::num(answered.executed as f64)),
            ("latency".to_string(), latency_json(&answered.latency)),
        ];
        if let Some(batch_stats) = &answered.stats {
            stats.extend([
                ("certified".to_string(), Json::num(batch_stats.certified as f64)),
                ("certify_failures".to_string(), Json::num(batch_stats.certify_failures as f64)),
                ("index_builds".to_string(), Json::num(batch_stats.index_builds as f64)),
                ("threads".to_string(), Json::num(batch_stats.threads as f64)),
                ("wall_us".to_string(), Json::num(batch_stats.wall.as_micros() as f64)),
            ]);
        }
        body.push_str(&Json::Obj(stats).render());
        body.push('}');
        Response::json(200, body)
    }
}

/// Renders one successful engine answer as a JSON object string.  The
/// center is an array of `D` coordinates; `version` stamps the dataset
/// version the answer was computed (and certified) at, so clients of a
/// mutable dataset can detect stale reads.
fn render_answer<const D: usize>(
    answer: &mrs_core::engine::BatchAnswer<D>,
    certified: bool,
    version: u64,
) -> String {
    let center_of =
        |center: &mrs_geom::Point<D>| Json::Arr((0..D).map(|i| Json::num(center[i])).collect());
    // Answers routed by the `auto` meta-solver carry their routing record:
    // the solver it picked plus the predicted and actual work.
    let auto_of = |stats: &mrs_core::engine::SolveStats| {
        stats.auto_choice.map(|choice| {
            Json::Obj(vec![
                ("choice".into(), Json::str(choice)),
                ("predicted_work".into(), Json::num(stats.auto_predicted_work.unwrap_or(0.0))),
                ("actual_work".into(), Json::num(stats.auto_actual_work.unwrap_or(0.0))),
            ])
        })
    };
    match answer {
        mrs_core::engine::BatchAnswer::Weighted(report) => {
            let mut fields = vec![
                ("kind".into(), Json::str("weighted")),
                ("solver".into(), Json::str(report.solver)),
                ("center".into(), center_of(&report.placement.center)),
                ("value".into(), Json::num(report.placement.value)),
                ("guarantee".into(), Json::str(report.guarantee.to_string())),
                ("certified".into(), Json::Bool(certified)),
                ("version".into(), Json::num(version as f64)),
                ("solve_us".into(), Json::num(report.stats.elapsed.as_micros() as f64)),
            ];
            if let Some(auto) = auto_of(&report.stats) {
                fields.push(("auto".into(), auto));
            }
            Json::Obj(fields).render()
        }
        mrs_core::engine::BatchAnswer::Colored(report) => {
            let mut fields = vec![
                ("kind".into(), Json::str("colored")),
                ("solver".into(), Json::str(report.solver)),
                ("center".into(), center_of(&report.placement.center)),
                ("distinct".into(), Json::num(report.placement.distinct as f64)),
                ("guarantee".into(), Json::str(report.guarantee.to_string())),
                ("certified".into(), Json::Bool(certified)),
                ("version".into(), Json::num(version as f64)),
                ("solve_us".into(), Json::num(report.stats.elapsed.as_micros() as f64)),
            ];
            if let Some(auto) = auto_of(&report.stats) {
                fields.push(("auto".into(), auto));
            }
            Json::Obj(fields).render()
        }
        mrs_core::engine::BatchAnswer::Failed(_) => {
            unreachable!("render_answer is only called on successful answers")
        }
    }
}

/// The value of one `?name=value` query parameter of a request target.
fn query_param<'t>(target: &'t str, name: &str) -> Option<&'t str> {
    let (_, query) = target.split_once('?')?;
    query.split('&').find_map(|pair| {
        let (key, value) = pair.split_once('=')?;
        (key == name).then_some(value)
    })
}

/// A [`LatencySummary`] as a JSON object (microsecond fields).
pub fn latency_json(summary: &LatencySummary) -> Json {
    let us = |d: std::time::Duration| Json::num(d.as_secs_f64() * 1e6);
    Json::Obj(vec![
        ("count".into(), Json::num(summary.count as f64)),
        ("min_us".into(), us(summary.min)),
        ("mean_us".into(), us(summary.mean)),
        ("p50_us".into(), us(summary.p50)),
        ("p95_us".into(), us(summary.p95)),
        ("p99_us".into(), us(summary.p99)),
        ("max_us".into(), us(summary.max)),
    ])
}

/// The one structured stderr line the slow-query log emits per offending
/// query: `key=value` pairs, grep- and cut-friendly.
fn slow_query_line(trace: &QueryTrace) -> String {
    let mut line = format!(
        "slow-query trace={} dataset={} query={} solver={}",
        trace.id, trace.dataset, trace.query, trace.solver
    );
    if let Some(choice) = trace.routed {
        line.push_str(&format!(" routed={choice}"));
    }
    line.push_str(&format!(" total_us={}", trace.phase_total().as_micros()));
    for phase in Phase::ALL {
        line.push_str(&format!(" {}_us={}", phase.name(), trace.phase(phase).as_micros()));
    }
    line.push_str(&format!(
        " ok={} candidates={} cells={}",
        trace.ok, trace.candidates_examined, trace.grid_cells_visited
    ));
    line
}

fn error_response(status: u16, message: &str) -> Response {
    Response::json(status, Json::Obj(vec![("error".into(), Json::str(message))]).render())
}

fn parse_body(request: &Request) -> Result<Json, Box<Response>> {
    let Some(text) = request.body_text() else {
        return Err(Box::new(error_response(400, "request body must be UTF-8 JSON")));
    };
    Json::parse(text).map_err(|e| Box::new(error_response(400, &e.to_string())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        Service::new(ServerConfig { seed: Some(42), ..ServerConfig::default() })
    }

    fn post(target: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            target: target.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(target: &str) -> Request {
        Request { method: "GET".into(), target: target.into(), headers: Vec::new(), body: vec![] }
    }

    const CSV: &str = "0,0,1,0\n0.4,0,1,1\n0,0.4,1,2\n9,9,2,0\n";

    #[test]
    fn health_solvers_and_dataset_lifecycle() {
        let service = service();
        let health = service.handle(&get("/healthz"));
        assert_eq!(health.status, 200);
        let listing = service.handle(&get("/solvers"));
        let parsed = Json::parse(std::str::from_utf8(&listing.body).unwrap()).unwrap();
        let names: Vec<&str> = parsed
            .get("solvers")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"exact-disk-2d"), "{names:?}");
        assert!(names.contains(&"batched-interval-1d"), "{names:?}");

        assert_eq!(service.handle(&post("/datasets/demo", CSV)).status, 200);
        let listed = service.handle(&get("/datasets"));
        assert!(std::str::from_utf8(&listed.body).unwrap().contains("\"demo\""));
        // Bad CSV and bad names are clean 400s.
        assert_eq!(service.handle(&post("/datasets/demo", "zap\n")).status, 400);
        assert_eq!(service.handle(&post("/datasets/bad name", CSV)).status, 400);
        // Unknown routes 404, wrong methods 405.
        assert_eq!(service.handle(&get("/frob")).status, 404);
        let del = Request {
            method: "DELETE".into(),
            target: "/query".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(service.handle(&del).status, 405);
    }

    #[test]
    fn query_computes_then_hits_the_cache() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        let body = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        let first = service.handle(&post("/query", body));
        assert_eq!(first.status, 200, "{:?}", String::from_utf8_lossy(&first.body));
        let parsed = Json::parse(std::str::from_utf8(&first.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(false));
        let answer = parsed.get("answer").unwrap();
        assert_eq!(answer.get("value").unwrap().as_f64(), Some(3.0));
        assert_eq!(answer.get("certified").unwrap().as_bool(), Some(true));

        let second = service.handle(&post("/query", body));
        let parsed = Json::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("answer").unwrap().get("value").unwrap().as_f64(), Some(3.0));
        assert_eq!(service.cache().counters().hits, 1);

        // cache:false bypasses the cache (the warm-index measurement path).
        let bypass =
            r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0},"cache":false}"#;
        let third = service.handle(&post("/query", bypass));
        let parsed = Json::parse(std::str::from_utf8(&third.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(false));
        assert_eq!(service.cache().counters().hits, 1, "bypass must not touch the cache");

        // Reloading the dataset bumps the epoch: the old entry cannot match.
        service.handle(&post("/datasets/demo", CSV));
        let fourth = service.handle(&post("/query", body));
        let parsed = Json::parse(std::str::from_utf8(&fourth.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn query_error_paths_are_typed_statuses() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        // Unknown dataset → 404; unknown solver / malformed shape → 400;
        // well-formed but undispatchable → 422.
        let cases = [
            (r#"{"dataset":"nope","solver":"exact-disk-2d","shape":{"ball":1}}"#, 404),
            (r#"{"dataset":"demo","solver":"frob","shape":{"ball":1}}"#, 400),
            (r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":-1}}"#, 400),
            (r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"box":[1]}}"#, 400),
            (r#"{"dataset":"demo","solver":"exact-disk-2d"}"#, 400),
            (r#"not json"#, 400),
            (r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"box":[1,1]}}"#, 422),
            (r#"{"dataset":"demo","solver":"batched-interval-1d","shape":{"ball":1}}"#, 422),
        ];
        for (body, status) in cases {
            let response = service.handle(&post("/query", body));
            assert_eq!(
                response.status,
                status,
                "{body} → {}",
                String::from_utf8_lossy(&response.body)
            );
        }
    }

    #[test]
    fn batch_merges_hits_and_misses_in_order() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        // Warm the cache with one query.
        service.handle(&post(
            "/query",
            r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#,
        ));
        let body = r#"{"dataset":"demo","queries":[
            {"solver":"exact-disk-2d","shape":{"ball":1.0}},
            {"solver":"exact-rect-2d","shape":{"box":[1.0,1.0]}},
            {"solver":"output-sensitive-colored-disk","shape":{"ball":1.0}},
            {"solver":"exact-disk-2d","shape":{"ball":0.1}}
        ]}"#;
        let response = service.handle(&post("/batch", body));
        assert_eq!(response.status, 200);
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let answers = parsed.get("answers").unwrap().as_arr().unwrap();
        assert_eq!(answers.len(), 4);
        assert_eq!(answers[0].get("cached").unwrap().as_bool(), Some(true));
        assert_eq!(answers[1].get("cached").unwrap().as_bool(), Some(false));
        let a = |i: usize| answers[i].get("answer").unwrap();
        assert_eq!(a(0).get("value").unwrap().as_f64(), Some(3.0));
        assert_eq!(a(1).get("value").unwrap().as_f64(), Some(3.0));
        assert_eq!(a(2).get("distinct").unwrap().as_f64(), Some(3.0));
        assert_eq!(a(3).get("value").unwrap().as_f64(), Some(2.0));
        let stats = parsed.get("stats").unwrap();
        assert_eq!(stats.get("queries").unwrap().as_f64(), Some(4.0));
        assert_eq!(stats.get("cache_hits").unwrap().as_f64(), Some(1.0));
        assert_eq!(stats.get("executed").unwrap().as_f64(), Some(3.0));
        assert_eq!(stats.get("certified").unwrap().as_f64(), Some(3.0));
        assert_eq!(stats.get("certify_failures").unwrap().as_f64(), Some(0.0));

        // A second identical batch is served fully from cache.
        let again = service.handle(&post("/batch", body));
        let parsed = Json::parse(std::str::from_utf8(&again.body).unwrap()).unwrap();
        let stats = parsed.get("stats").unwrap();
        assert_eq!(stats.get("cache_hits").unwrap().as_f64(), Some(4.0));
        assert_eq!(stats.get("executed").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn mutations_bump_versions_and_invalidate_fine_grained() {
        let service = service();
        // A base big enough that a few mutations stay below the compaction
        // threshold.
        let csv: String = (0..40).map(|i| format!("{},{},1,{}\n", i, i, i % 4)).collect();
        service.handle(&post("/datasets/demo", &csv));
        service.handle(&post("/datasets/other", &csv));

        // Warm the cache on both datasets.
        let q = |name: &str| {
            format!(r#"{{"dataset":"{name}","solver":"exact-disk-2d","shape":{{"ball":1.0}}}}"#)
        };
        let first = service.handle(&post("/query", &q("demo")));
        let parsed = Json::parse(std::str::from_utf8(&first.body).unwrap()).unwrap();
        assert_eq!(parsed.get("answer").unwrap().get("version").unwrap().as_f64(), Some(1.0));
        service.handle(&post("/query", &q("other")));
        assert_eq!(service.cache().counters().entries, 2);

        // Mutate `demo`: a cluster of three points lands at (0.2, 0.2).
        let mutate =
            service.handle(&post("/datasets/demo/insert", "0.2,0.2,5\n0.3,0.2,5\n0.2,0.3,5,9\n"));
        assert_eq!(mutate.status, 200, "{:?}", String::from_utf8_lossy(&mutate.body));
        let parsed = Json::parse(std::str::from_utf8(&mutate.body).unwrap()).unwrap();
        let mutated = parsed.get("mutated").unwrap();
        assert_eq!(mutated.get("inserted").unwrap().as_f64(), Some(3.0));
        assert_eq!(mutated.get("version").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            mutated.get("cache_invalidated").unwrap().as_f64(),
            Some(1.0),
            "only demo's stale entry is purged, not other's"
        );
        assert_eq!(parsed.get("dataset").unwrap().get("version").unwrap().as_f64(), Some(2.0));

        // The same query now recomputes at version 2 and sees the new mass.
        let after = service.handle(&post("/query", &q("demo")));
        let parsed = Json::parse(std::str::from_utf8(&after.body).unwrap()).unwrap();
        assert_eq!(
            parsed.get("cached").unwrap().as_bool(),
            Some(false),
            "stale answers never replay"
        );
        let answer = parsed.get("answer").unwrap();
        assert_eq!(answer.get("version").unwrap().as_f64(), Some(2.0));
        assert_eq!(answer.get("certified").unwrap().as_bool(), Some(true));
        assert!(
            answer.get("value").unwrap().as_f64().unwrap() >= 17.0,
            "the inserted cluster wins"
        );
        // `other` still serves its version-1 cache entry.
        let other = service.handle(&post("/query", &q("other")));
        let parsed = Json::parse(std::str::from_utf8(&other.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(true));

        // Deletes remove the cluster again; a repeated delete misses.
        let del = service.handle(&post("/datasets/demo/delete", "0.2,0.2\n0.3,0.2\n0.2,0.3\n"));
        let parsed = Json::parse(std::str::from_utf8(&del.body).unwrap()).unwrap();
        assert_eq!(parsed.get("mutated").unwrap().get("deleted").unwrap().as_f64(), Some(3.0));
        let del = service.handle(&post("/datasets/demo/delete", "0.2,0.2\n"));
        let parsed = Json::parse(std::str::from_utf8(&del.body).unwrap()).unwrap();
        assert_eq!(parsed.get("mutated").unwrap().get("missed").unwrap().as_f64(), Some(1.0));

        // Error paths: unknown dataset 404, bad body 400, bad action 404.
        assert_eq!(service.handle(&post("/datasets/nope/insert", "1,1\n")).status, 404);
        assert_eq!(service.handle(&post("/datasets/demo/insert", "zap\n")).status, 400);
        assert_eq!(service.handle(&post("/datasets/demo/insert", "# empty\n")).status, 400);
        assert_eq!(service.handle(&post("/datasets/demo/frob", "1,1\n")).status, 404);

        // /stats surfaces version, delta, compactions and invalidations.
        let stats = service.handle(&get("/stats"));
        let parsed = Json::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        let datasets = parsed.get("datasets").unwrap().as_arr().unwrap();
        let demo =
            datasets.iter().find(|d| d.get("name").and_then(Json::as_str) == Some("demo")).unwrap();
        assert_eq!(demo.get("version").unwrap().as_f64(), Some(4.0));
        assert!(demo.get("delta").unwrap().as_f64().is_some());
        assert!(demo.get("compactions").unwrap().as_f64().is_some());
        let cache = parsed.get("cache").unwrap();
        assert!(cache.get("invalidations").unwrap().as_f64().unwrap() >= 1.0);
        let endpoints = parsed.get("endpoints").unwrap().as_arr().unwrap();
        let mutate_track = endpoints
            .iter()
            .find(|e| e.get("endpoint").and_then(Json::as_str) == Some("mutate"))
            .expect("mutate endpoint is tracked");
        assert!(mutate_track.get("requests").unwrap().as_f64().unwrap() >= 6.0);
    }

    #[test]
    fn dynamic_ball_queries_follow_mutations_without_rebuilds() {
        let service = service();
        let csv: String = (0..30).map(|i| format!("{},0\n", 0.02 * i as f64)).collect();
        service.handle(&post("/datasets/demo", &csv));
        let q = r#"{"dataset":"demo","solver":"dynamic-ball","shape":{"ball":1.0},"cache":false}"#;
        let first = service.handle(&post("/query", q));
        assert_eq!(first.status, 200, "{:?}", String::from_utf8_lossy(&first.body));
        let parsed = Json::parse(std::str::from_utf8(&first.body).unwrap()).unwrap();
        let v1 = parsed.get("answer").unwrap().get("value").unwrap().as_f64().unwrap();
        assert_eq!(v1, 30.0);
        // Insert a far, heavier cluster: the maintained tracker must follow.
        let body: String = (0..8).map(|i| format!("{},50,10\n", 50.0 + 0.01 * i as f64)).collect();
        service.handle(&post("/datasets/demo/insert", &body));
        let second = service.handle(&post("/query", q));
        let parsed = Json::parse(std::str::from_utf8(&second.body).unwrap()).unwrap();
        let answer = parsed.get("answer").unwrap();
        assert_eq!(answer.get("value").unwrap().as_f64(), Some(80.0));
        assert_eq!(answer.get("version").unwrap().as_f64(), Some(2.0));
        assert_eq!(answer.get("certified").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn stats_aggregate_index_work_counters() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        assert_eq!(service.stats().candidates_examined(), 0);
        let body =
            r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0},"cache":false}"#;
        assert_eq!(service.handle(&post("/query", body)).status, 200);
        let after_one = service.stats().candidates_examined();
        assert!(after_one > 0, "the disk sweep must report grid work");
        assert!(service.stats().grid_cells_visited() > 0);
        // The counters surface on /stats under `work`.
        let response = service.handle(&get("/stats"));
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let work = parsed.get("work").expect("stats carries work counters");
        assert_eq!(work.get("candidates_examined").and_then(Json::as_f64), Some(after_one as f64));
        // The first cached query computes (work doubles); its repeat is a
        // cache hit, executes nothing, and adds nothing.
        let cached = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        service.handle(&post("/query", cached));
        assert_eq!(service.stats().candidates_examined(), 2 * after_one);
        service.handle(&post("/query", cached));
        assert_eq!(service.stats().candidates_examined(), 2 * after_one);
    }

    #[test]
    fn resident_index_is_built_once_across_requests() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        let body =
            r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0},"cache":false}"#;
        service.handle(&post("/query", body));
        let builds_after_first = service.catalog().get("demo").unwrap().index_builds();
        for _ in 0..10 {
            assert_eq!(service.handle(&post("/query", body)).status, 200);
        }
        let dataset = service.catalog().get("demo").unwrap();
        assert_eq!(
            dataset.index_builds(),
            builds_after_first,
            "the resident index must be built exactly once"
        );
        assert_eq!(dataset.requests(), 11);
    }

    #[test]
    fn every_response_carries_a_request_id_and_answers_echo_it() {
        let service = service();
        let health = service.handle(&get("/healthz"));
        let rid_of = |response: &Response| {
            response
                .headers
                .iter()
                .find(|(name, _)| *name == "X-Request-Id")
                .map(|(_, value)| value.clone())
                .expect("every response is stamped")
        };
        assert_eq!(rid_of(&health), "r-000001");
        // Errors are stamped too.
        assert_eq!(rid_of(&service.handle(&get("/frob"))), "r-000002");

        service.handle(&post("/datasets/demo", CSV));
        let body = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        let computed = service.handle(&post("/query", body));
        let rid = rid_of(&computed);
        let parsed = Json::parse(std::str::from_utf8(&computed.body).unwrap()).unwrap();
        assert_eq!(parsed.get("trace").and_then(Json::as_str), Some(rid.as_str()));
        // Cache hits echo their own request's id, not the computing one's.
        let hit = service.handle(&post("/query", body));
        let parsed = Json::parse(std::str::from_utf8(&hit.body).unwrap()).unwrap();
        assert_eq!(parsed.get("trace").and_then(Json::as_str), Some(rid_of(&hit).as_str()));
    }

    #[test]
    fn executed_queries_leave_retrievable_traces() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        let body = r#"{"dataset":"demo","queries":[
            {"solver":"exact-disk-2d","shape":{"ball":1.0}},
            {"solver":"auto","shape":{"ball":0.7}}
        ]}"#;
        let response = service.handle(&post("/batch", body));
        assert_eq!(response.status, 200);
        let rid = response
            .headers
            .iter()
            .find(|(name, _)| *name == "X-Request-Id")
            .map(|(_, value)| value.clone())
            .unwrap();

        // Both executed queries left one trace each under the request id.
        let traces = service.handle(&get(&format!("/debug/traces?id={rid}")));
        let parsed = Json::parse(std::str::from_utf8(&traces.body).unwrap()).unwrap();
        let listed = parsed.get("traces").unwrap().as_arr().unwrap();
        assert_eq!(listed.len(), 2, "one trace per executed query");
        for (i, trace) in listed.iter().enumerate() {
            assert_eq!(trace.get("trace").and_then(Json::as_str), Some(rid.as_str()));
            assert_eq!(trace.get("dataset").and_then(Json::as_str), Some("demo"));
            assert_eq!(trace.get("query").and_then(Json::as_f64), Some(i as f64));
            assert_eq!(trace.get("ok").and_then(Json::as_bool), Some(true));
            let phases = trace.get("phases_us").unwrap();
            assert!(phases.get("solve").and_then(Json::as_f64).is_some());
        }
        assert_eq!(listed[1].get("solver").and_then(Json::as_str), Some("auto"));
        assert!(listed[1].get("routed").and_then(Json::as_str).is_some());

        // Cache hits execute nothing and leave no trace.
        let before = service.traces().snapshot().len();
        service.handle(&post("/batch", body));
        assert_eq!(service.traces().snapshot().len(), before);

        // Per-solver and per-dataset histograms got the samples.
        let solvers: Vec<String> =
            service.stats().solver_histograms().into_iter().map(|(name, _)| name).collect();
        assert!(solvers.contains(&"auto".to_string()), "{solvers:?}");
        assert!(solvers.contains(&"exact-disk-2d".to_string()), "{solvers:?}");
        assert_eq!(service.stats().dataset_histograms()[0].0, "demo");
        assert!(!service.stats().auto_choice_counts().is_empty());
    }

    #[test]
    fn metrics_serve_prometheus_text() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        let q = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        service.handle(&post("/query", q));
        service.handle(&post("/query", q)); // cache hit
        let response = service.handle(&get("/metrics"));
        assert_eq!(response.status, 200);
        assert!(response.content_type.starts_with("text/plain"));
        let text = std::str::from_utf8(&response.body).unwrap();
        assert!(text.contains("# TYPE maxrs_request_duration_seconds histogram"));
        assert!(text.contains("maxrs_requests_total{endpoint=\"query\"} 2"));
        assert!(text.contains("maxrs_solver_duration_seconds_count{solver=\"exact-disk-2d\"} 1"));
        assert!(text.contains("maxrs_dataset_query_duration_seconds_count{dataset=\"demo\"} 1"));
        assert!(text.contains("maxrs_cache_hits_total 1"));
        assert!(text.contains("maxrs_dataset_points{dataset=\"demo\"} 4"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn stats_latency_reports_p99_and_slow_query_lines_format() {
        let service = service();
        service.handle(&get("/healthz"));
        let stats = service.handle(&get("/stats"));
        let parsed = Json::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        let endpoints = parsed.get("endpoints").unwrap().as_arr().unwrap();
        for endpoint in endpoints {
            assert!(
                endpoint.get("latency").unwrap().get("p99_us").is_some(),
                "every endpoint latency carries p99_us"
            );
        }

        let mut trace = QueryTrace {
            id: "r-000007".into(),
            dataset: "demo".into(),
            query: 3,
            solver: "auto".into(),
            routed: Some("exact-disk-2d"),
            ok: true,
            ..QueryTrace::default()
        };
        trace.set_phase(Phase::Solve, Duration::from_micros(1500));
        let line = slow_query_line(&trace);
        assert!(line.starts_with("slow-query trace=r-000007 dataset=demo query=3 solver=auto"));
        assert!(line.contains("routed=exact-disk-2d"));
        assert!(line.contains("total_us=1500"));
        assert!(line.contains("solve_us=1500"));
    }

    #[test]
    fn line_datasets_serve_interval_queries_off_the_resident_line() {
        let service = service();
        // 1-D upload: x[,weight] records, `?dim=1`.
        let csv = "0\n1\n1.5\n2\n10,4\n";
        let response = service.handle(&post("/datasets/ticks?dim=1", csv));
        assert_eq!(response.status, 200, "{:?}", String::from_utf8_lossy(&response.body));
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(parsed.get("dataset").unwrap().get("dim").unwrap().as_f64(), Some(1.0));

        // The Theorem 1.3 batched solver answers off the resident sorted
        // line; `{"interval": L}` sugar is a ball of radius L/2.
        let body = r#"{"dataset":"ticks","solver":"batched-interval-1d","shape":{"interval":2.0},"cache":false}"#;
        let first = service.handle(&post("/query", body));
        assert_eq!(first.status, 200, "{:?}", String::from_utf8_lossy(&first.body));
        let parsed = Json::parse(std::str::from_utf8(&first.body).unwrap()).unwrap();
        let answer = parsed.get("answer").unwrap();
        // Points 0,1,1.5,2 fit in one length-2 interval: weight 4.
        assert_eq!(answer.get("value").unwrap().as_f64(), Some(4.0));
        assert_eq!(answer.get("certified").unwrap().as_bool(), Some(true));
        assert_eq!(answer.get("center").unwrap().as_arr().unwrap().len(), 1);

        // Warm repeats must not rebuild the sorted line / Fenwick tree.
        let builds = service.catalog().get("ticks").unwrap().index_builds();
        for _ in 0..5 {
            assert_eq!(service.handle(&post("/query", body)).status, 200);
        }
        assert_eq!(service.catalog().get("ticks").unwrap().index_builds(), builds);

        // The independent exact 1-D solver agrees.
        let exact = r#"{"dataset":"ticks","solver":"exact-interval-1d","shape":{"ball":1.0}}"#;
        let response = service.handle(&post("/query", exact));
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(parsed.get("answer").unwrap().get("value").unwrap().as_f64(), Some(4.0));

        // Box queries need a planar dataset; planar-only solvers fail typed.
        let boxy = r#"{"dataset":"ticks","solver":"exact-rect-2d","shape":{"box":[1,1]}}"#;
        assert_eq!(service.handle(&post("/query", boxy)).status, 400);
        let wrong_dim = r#"{"dataset":"ticks","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        assert_eq!(service.handle(&post("/query", wrong_dim)).status, 422);
        // And a bad dim parameter is a clean 400.
        assert_eq!(service.handle(&post("/datasets/x?dim=7", csv)).status, 400);
    }

    fn post_with_header(target: &str, body: &str, name: &str, value: &str) -> Request {
        Request {
            method: "POST".into(),
            target: target.into(),
            headers: vec![(name.to_string(), value.to_string())],
            body: body.as_bytes().to_vec(),
        }
    }

    #[test]
    fn expired_deadlines_return_typed_504_and_never_cache() {
        let service = service();
        service.handle(&post("/datasets/demo", CSV));
        let body = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        // `X-Deadline-Ms: 0` is expired by the time the executor runs.
        let timed_out = service.handle(&post_with_header("/query", body, "x-deadline-ms", "0"));
        assert_eq!(timed_out.status, 504, "{:?}", String::from_utf8_lossy(&timed_out.body));
        let text = std::str::from_utf8(&timed_out.body).unwrap();
        assert!(text.contains("exceeded its deadline"), "{text}");
        assert_eq!(service.stats().deadline_exceeded(), 1);
        // The expired answer must not have been cached: the same query
        // without a deadline computes fresh.
        let fresh = service.handle(&post("/query", body));
        assert_eq!(fresh.status, 200);
        let parsed = Json::parse(std::str::from_utf8(&fresh.body).unwrap()).unwrap();
        assert_eq!(parsed.get("cached").unwrap().as_bool(), Some(false));

        // The configured default applies when no header is present...
        let strict = Service::new(ServerConfig {
            seed: Some(42),
            request_timeout: Some(Duration::ZERO),
            ..ServerConfig::default()
        });
        strict.handle(&post("/datasets/demo", CSV));
        assert_eq!(strict.handle(&post("/query", body)).status, 504);
        // ...and a generous header overrides the strict default.
        let relaxed = strict.handle(&post_with_header("/query", body, "x-deadline-ms", "60000"));
        assert_eq!(relaxed.status, 200, "{:?}", String::from_utf8_lossy(&relaxed.body));

        // Batch deadline failures are per-answer error objects, flagged.
        let batch = r#"{"dataset":"demo","queries":[
            {"solver":"exact-disk-2d","shape":{"ball":1.0}}
        ],"cache":false}"#;
        let response = strict.handle(&post("/batch", batch));
        assert_eq!(response.status, 200);
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let answers = parsed.get("answers").unwrap().as_arr().unwrap();
        assert_eq!(answers[0].get("deadline_exceeded").and_then(Json::as_bool), Some(true));
        assert_eq!(parsed.get("stats").unwrap().get("failed").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn panicking_solver_yields_well_formed_500_and_the_worker_survives() {
        let service = Service::new(ServerConfig {
            seed: Some(42),
            chaos_solver: true,
            ..ServerConfig::default()
        });
        service.handle(&post("/datasets/demo", CSV));
        let chaos = r#"{"dataset":"demo","solver":"chaos-panic","shape":{"ball":1.0}}"#;
        let response = service.handle(&post("/query", chaos));
        assert_eq!(response.status, 500);
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert!(parsed.get("error").and_then(Json::as_str).is_some(), "500s carry a JSON error");
        assert_eq!(service.stats().panics(), 1);
        // The service keeps answering after the panic, and the in-flight
        // permit was released on the unwind path.
        assert_eq!(service.stats().inflight(), 0);
        let body = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        assert_eq!(service.handle(&post("/query", body)).status, 200);
    }

    #[test]
    fn saturated_inflight_window_sheds_with_retry_after() {
        let service = Service::new(ServerConfig {
            seed: Some(42),
            max_inflight: 1,
            ..ServerConfig::default()
        });
        service.handle(&post("/datasets/demo", CSV));
        let body = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        // Occupy the only slot, as a concurrent in-flight request would.
        service.stats().inflight_enter();
        let shed = service.handle(&post("/query", body));
        assert_eq!(shed.status, 503, "{:?}", String::from_utf8_lossy(&shed.body));
        let retry_after = shed
            .headers
            .iter()
            .find(|(name, _)| *name == "Retry-After")
            .map(|(_, value)| value.parse::<u64>().unwrap())
            .expect("every shed carries Retry-After");
        assert!((1..=60).contains(&retry_after), "{retry_after}");
        assert_eq!(service.stats().shed(), 1);
        // Shed responses are well-formed JSON errors.
        let parsed = Json::parse(std::str::from_utf8(&shed.body).unwrap()).unwrap();
        assert!(parsed.get("error").and_then(Json::as_str).is_some());
        // Non-compute endpoints are never shed.
        assert_eq!(service.handle(&get("/healthz")).status, 200);
        assert_eq!(service.handle(&get("/stats")).status, 200);
        // Releasing the slot restores service.
        service.stats().inflight_exit();
        assert_eq!(service.handle(&post("/query", body)).status, 200);
        // /stats surfaces the overload block.
        let stats = service.handle(&get("/stats"));
        let parsed = Json::parse(std::str::from_utf8(&stats.body).unwrap()).unwrap();
        let overload = parsed.get("overload").expect("stats carries overload counters");
        assert_eq!(overload.get("shed").unwrap().as_f64(), Some(1.0));
        assert_eq!(overload.get("max_inflight").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn saturated_dataset_window_sheds_but_leaves_other_datasets_alone() {
        let service = Service::new(ServerConfig {
            seed: Some(42),
            max_inflight: 64,
            max_inflight_per_dataset: 1,
            ..ServerConfig::default()
        });
        service.handle(&post("/datasets/demo", CSV));
        service.handle(&post("/datasets/other", CSV));
        // Occupy demo's only slot, as a concurrent request would.
        service
            .dataset_inflight
            .lock()
            .unwrap()
            .entry("demo".to_string())
            .or_default()
            .fetch_add(1, Ordering::AcqRel);
        let demo = r#"{"dataset":"demo","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        let other = r#"{"dataset":"other","solver":"exact-disk-2d","shape":{"ball":1.0}}"#;
        assert_eq!(service.handle(&post("/query", demo)).status, 503);
        assert_eq!(service.handle(&post("/query", other)).status, 200);
        assert_eq!(service.stats().shed(), 1);
    }

    #[test]
    fn overload_watermark_degrades_auto_routing() {
        let service = Service::new(ServerConfig {
            seed: Some(42),
            max_inflight: 2,
            overload_watermark: 0.5,
            ..ServerConfig::default()
        });
        service.handle(&post("/datasets/demo", CSV));
        // One synthetic in-flight request + this one = 2 >= 0.5 * 2.
        service.stats().inflight_enter();
        let body = r#"{"dataset":"demo","solver":"auto","shape":{"ball":1.0},"cache":false}"#;
        let response = service.handle(&post("/query", body));
        assert_eq!(response.status, 200, "{:?}", String::from_utf8_lossy(&response.body));
        service.stats().inflight_exit();
        assert!(service.stats().degraded() >= 1, "the degraded solve is counted");
        // The auto router was restricted to non-exact solvers.
        let parsed = Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        let choice = parsed
            .get("answer")
            .unwrap()
            .get("auto")
            .expect("auto answers carry their routing record")
            .get("choice")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        let listing = service.handle(&get("/solvers"));
        let parsed = Json::parse(std::str::from_utf8(&listing.body).unwrap()).unwrap();
        let guarantee = parsed
            .get("solvers")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(choice.as_str()))
            .unwrap()
            .get("guarantee")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_ne!(guarantee, "exact", "degraded routing avoids exact-tier solvers: {choice}");
        // The solve's trace is stamped degraded.
        let traces = service.traces().snapshot();
        assert!(traces.last().is_some_and(|t| t.degraded), "the trace records degradation");
    }
}
