//! A hand-rolled HTTP/1.1 subset: enough to parse the requests the service
//! routes and to write well-formed responses, with hard limits on header and
//! body sizes so a misbehaving client cannot balloon memory.
//!
//! Supported: request line + headers + `Content-Length` bodies, keep-alive
//! (the HTTP/1.1 default) and `Connection: close`.  Not supported (and
//! rejected cleanly): chunked transfer encoding, upgrades, HTTP/2.

use std::io::{self, BufRead, Write};

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 16 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body (dataset uploads are CSV text; 64 MB is
/// roughly twenty million points).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// The request target path, e.g. `/datasets/taxi`.
    pub target: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of the named header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// `true` if the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8 text, if it is valid UTF-8.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be parsed.  Carries the HTTP status the server
/// should answer with before closing the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// The status code to respond with (400, 413 or 431).
    pub status: u16,
    /// A short human-readable reason.
    pub message: &'static str,
}

/// The outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly before sending a request.
    Closed,
    /// The bytes on the wire were not an acceptable request.
    Bad(ParseError),
}

fn bad(status: u16, message: &'static str) -> ReadOutcome {
    ReadOutcome::Bad(ParseError { status, message })
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing [`MAX_LINE`].
/// `Ok(None)` means EOF before any byte of the line.
///
/// Timeout errors (the socket's short idle-poll read timeout) propagate
/// immediately only when `idle_start` is set and no byte has arrived yet —
/// that is the caller's "connection is idle" signal.  Once any byte of the
/// line has been read (or for header lines, which only exist mid-request),
/// timeouts are retried until the *request-wide* `deadline` — one budget
/// for the whole request, not per line, so a client trickling one header
/// every few seconds cannot pin a worker past [`MID_REQUEST_PATIENCE`].
fn read_line(
    reader: &mut impl BufRead,
    idle_start: bool,
    deadline: std::time::Instant,
) -> io::Result<Option<Result<String, ParseError>>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = match io::Read::read(reader, &mut byte) {
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if line.is_empty() && idle_start {
                    // Genuinely idle: surface the raw timeout kind, which is
                    // the caller's "poll the shutdown flag" signal.
                    return Err(e);
                }
                if std::time::Instant::now() >= deadline {
                    return Err(mid_request_timeout());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(if line.is_empty() {
                None
            } else {
                Some(Err(ParseError { status: 400, message: "truncated request line" }))
            });
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(String::from_utf8(line).map_err(|_| ParseError {
                status: 400,
                message: "request line is not valid UTF-8",
            })));
        }
        if line.len() >= MAX_LINE {
            return Ok(Some(Err(ParseError { status: 431, message: "header line too long" })));
        }
        line.push(byte[0]);
    }
}

/// Reads one request from the stream.  I/O errors bubble up; protocol
/// errors come back as [`ReadOutcome::Bad`] so the caller can answer with
/// the right status before closing.
///
/// `continue_to`: where to write an interim `100 Continue` when the client
/// sent `Expect: 100-continue` (curl does for large uploads, then stalls up
/// to a second waiting for it).  Pass a sink to suppress.
pub fn read_request(
    reader: &mut impl BufRead,
    continue_to: &mut impl Write,
) -> io::Result<ReadOutcome> {
    // One stall budget for the WHOLE request (request line + headers +
    // body).  It starts ticking here — before the first byte — but an idle
    // connection exits immediately through the `idle_start` path below, so
    // in practice the budget covers the transfer itself.
    let deadline = std::time::Instant::now() + MID_REQUEST_PATIENCE;
    let request_line = match read_line(reader, true, deadline)? {
        None => return Ok(ReadOutcome::Closed),
        Some(Err(e)) => return Ok(ReadOutcome::Bad(e)),
        Some(Ok(line)) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(bad(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(bad(400, "unsupported HTTP version"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, false, deadline)? {
            None => return Ok(bad(400, "truncated headers")),
            Some(Err(e)) => return Ok(ReadOutcome::Bad(e)),
            Some(Ok(line)) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(bad(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(bad(400, "malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(bad(400, "chunked transfer encoding is not supported"));
    }

    let length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) if n <= MAX_BODY => n,
            Ok(_) => return Ok(bad(413, "request body too large")),
            Err(_) => return Ok(bad(400, "malformed Content-Length")),
        },
    };
    if headers.iter().any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue")) {
        // The client is holding the body back until it hears from us.
        continue_to.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        continue_to.flush()?;
    }
    let mut body = vec![0u8; length];
    read_exact_patiently(reader, &mut body, deadline)?;

    Ok(ReadOutcome::Request(Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// How long a request may stall in total once its first byte has arrived.
/// The socket's short read timeout exists so *idle* connections can poll a
/// shutdown flag; a partially-transferred request must not be dropped by it.
const MID_REQUEST_PATIENCE: std::time::Duration = std::time::Duration::from_secs(30);

/// The error returned when a *partially transferred* request stalls past
/// [`MID_REQUEST_PATIENCE`].  Deliberately NOT `WouldBlock`/`TimedOut`: the
/// connection loop treats those as idle keep-alive polls and keeps the
/// stream open, which after a half-consumed request would desynchronize
/// the protocol.  This kind makes the caller drop the connection instead.
fn mid_request_timeout() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "request stalled mid-transfer")
}

/// `read_exact` that retries timeout errors until the request-wide
/// `deadline`: the per-read socket timeout is short (idle-poll
/// granularity), but a large upload legitimately spans many reads.
fn read_exact_patiently(
    reader: &mut impl BufRead,
    mut buf: &mut [u8],
    deadline: std::time::Instant,
) -> io::Result<()> {
    while !buf.is_empty() {
        match io::Read::read(reader, buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated body")),
            Ok(n) => buf = &mut buf[n..],
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if std::time::Instant::now() >= deadline {
                    return Err(mid_request_timeout());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// An HTTP response ready to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim after
    /// `Content-Type` — the request-id stamp rides here.
    pub headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds one response header (builder style).  The value must not
    /// contain CR or LF; this is asserted, since a header value is written
    /// to the wire verbatim.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        let value = value.into();
        assert!(!value.contains(['\r', '\n']), "header values must be single-line");
        self.headers.push((name, value));
        self
    }

    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Writes the response, flagging whether the connection will stay open.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in &response.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes()), &mut io::sink()).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let ReadOutcome::Request(req) = parse(raw) else { panic!("expected a request") };
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_text(), Some("hello world"));
        assert!(!req.wants_close());
    }

    #[test]
    fn detects_connection_close_and_eof() {
        let raw = "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ReadOutcome::Request(req) = parse(raw) else { panic!("expected a request") };
        assert!(req.wants_close());
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_malformed_requests_with_statuses() {
        let cases = [
            ("FROB\r\n\r\n", 400),
            ("GET / SPDY/3\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nbad header\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n", 413),
            ("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
        ];
        for (raw, status) in cases {
            match parse(raw) {
                ReadOutcome::Bad(e) => assert_eq!(e.status, status, "{raw:?}"),
                _ => panic!("expected Bad for {raw:?}"),
            }
        }
    }

    #[test]
    fn expect_100_continue_is_acknowledged() {
        let raw =
            "POST /datasets/x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\nhello";
        let mut interim = Vec::new();
        let outcome = read_request(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        let ReadOutcome::Request(req) = outcome else { panic!("expected a request") };
        assert_eq!(req.body_text(), Some("hello"));
        assert_eq!(String::from_utf8(interim).unwrap(), "HTTP/1.1 100 Continue\r\n\r\n");
    }

    #[test]
    fn writes_parseable_responses() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
        assert!(Response::json(200, "").is_success());
        assert!(!Response::text(404, "nope").is_success());
    }

    #[test]
    fn writes_extra_headers_before_the_body() {
        let mut out = Vec::new();
        let response = Response::json(200, "{}").with_header("X-Request-Id", "r-000042");
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: r-000042\r\n"), "{text}");
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body separator");
        assert!(head.contains("X-Request-Id"));
        assert_eq!(body, "{}");
    }
}
