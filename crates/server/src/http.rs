//! A hand-rolled HTTP/1.1 subset: enough to parse the requests the service
//! routes and to write well-formed responses, with hard limits on header and
//! body sizes so a misbehaving client cannot balloon memory.
//!
//! Supported: request line + headers + `Content-Length` bodies, keep-alive
//! (the HTTP/1.1 default) and `Connection: close`.  Not supported (and
//! rejected cleanly): chunked transfer encoding, upgrades, HTTP/2.
//!
//! Two parsing front ends share these semantics:
//!
//! * [`read_request`] — the blocking one-shot reader the threaded runtime
//!   uses: it pulls bytes off a `BufRead` until one request is complete.
//! * [`Parser`] — the incremental, zero-copy state machine the epoll
//!   reactor uses: it is fed a connection's growing read buffer, resumes
//!   across arbitrary split points (mid-header, mid-body, between pipelined
//!   requests), borrows every slice in place (header names are lowercased
//!   and the method uppercased *inside* the buffer) and only materializes
//!   an owned [`Request`] once a frame is complete.  Both front ends
//!   enforce the same limits and produce the same typed [`ParseError`]s —
//!   a property test splits pipelined streams at every boundary to hold
//!   them to that.

use std::io::{self, BufRead, Write};
use std::ops::Range;

/// Longest accepted request line or header line, in bytes.
const MAX_LINE: usize = 16 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;
/// Largest accepted request body (dataset uploads are CSV text; 64 MB is
/// roughly twenty million points).
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The request method (`GET`, `POST`, ...), uppercased by the client.
    pub method: String,
    /// The request target path, e.g. `/datasets/taxi`.
    pub target: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of the named header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// `true` if the client asked to close the connection after this
    /// exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8 text, if it is valid UTF-8.
    pub fn body_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Why a request could not be parsed.  Carries the HTTP status the server
/// should answer with before closing the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// The status code to respond with (400, 413 or 431).
    pub status: u16,
    /// A short human-readable reason.
    pub message: &'static str,
}

/// The outcome of reading one request off a connection.
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly before sending a request.
    Closed,
    /// The bytes on the wire were not an acceptable request.
    Bad(ParseError),
}

fn bad(status: u16, message: &'static str) -> ReadOutcome {
    ReadOutcome::Bad(ParseError { status, message })
}

/// Reads one CRLF- (or bare-LF-) terminated line, enforcing [`MAX_LINE`].
/// `Ok(None)` means EOF before any byte of the line.
///
/// Timeout errors (the socket's short idle-poll read timeout) propagate
/// immediately only when `idle_start` is set and no byte has arrived yet —
/// that is the caller's "connection is idle" signal.  Once any byte of the
/// line has been read (or for header lines, which only exist mid-request),
/// timeouts are retried until the *request-wide* `deadline` — one budget
/// for the whole request, not per line, so a client trickling one header
/// every few seconds cannot pin a worker past [`MID_REQUEST_PATIENCE`].
fn read_line(
    reader: &mut impl BufRead,
    idle_start: bool,
    deadline: std::time::Instant,
) -> io::Result<Option<Result<String, ParseError>>> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = match io::Read::read(reader, &mut byte) {
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if line.is_empty() && idle_start {
                    // Genuinely idle: surface the raw timeout kind, which is
                    // the caller's "poll the shutdown flag" signal.
                    return Err(e);
                }
                if std::time::Instant::now() >= deadline {
                    return Err(mid_request_timeout());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Ok(if line.is_empty() {
                None
            } else {
                Some(Err(ParseError { status: 400, message: "truncated request line" }))
            });
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(String::from_utf8(line).map_err(|_| ParseError {
                status: 400,
                message: "request line is not valid UTF-8",
            })));
        }
        if line.len() >= MAX_LINE {
            return Ok(Some(Err(ParseError { status: 431, message: "header line too long" })));
        }
        line.push(byte[0]);
    }
}

/// Reads one request from the stream.  I/O errors bubble up; protocol
/// errors come back as [`ReadOutcome::Bad`] so the caller can answer with
/// the right status before closing.
///
/// `continue_to`: where to write an interim `100 Continue` when the client
/// sent `Expect: 100-continue` (curl does for large uploads, then stalls up
/// to a second waiting for it).  Pass a sink to suppress.
pub fn read_request(
    reader: &mut impl BufRead,
    continue_to: &mut impl Write,
) -> io::Result<ReadOutcome> {
    // One stall budget for the WHOLE request (request line + headers +
    // body).  It starts ticking here — before the first byte — but an idle
    // connection exits immediately through the `idle_start` path below, so
    // in practice the budget covers the transfer itself.
    let deadline = std::time::Instant::now() + MID_REQUEST_PATIENCE;
    let request_line = match read_line(reader, true, deadline)? {
        None => return Ok(ReadOutcome::Closed),
        Some(Err(e)) => return Ok(ReadOutcome::Bad(e)),
        Some(Ok(line)) => line,
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(bad(400, "malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(bad(400, "unsupported HTTP version"));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, false, deadline)? {
            None => return Ok(bad(400, "truncated headers")),
            Some(Err(e)) => return Ok(ReadOutcome::Bad(e)),
            Some(Ok(line)) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(bad(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(bad(400, "malformed header"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(bad(400, "chunked transfer encoding is not supported"));
    }

    let length = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) if n <= MAX_BODY => n,
            Ok(_) => return Ok(bad(413, "request body too large")),
            Err(_) => return Ok(bad(400, "malformed Content-Length")),
        },
    };
    if headers.iter().any(|(k, v)| k == "expect" && v.eq_ignore_ascii_case("100-continue")) {
        // The client is holding the body back until it hears from us.
        continue_to.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        continue_to.flush()?;
    }
    let mut body = vec![0u8; length];
    read_exact_patiently(reader, &mut body, deadline)?;

    Ok(ReadOutcome::Request(Request {
        method: method.to_ascii_uppercase(),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// How long a request may stall in total once its first byte has arrived.
/// The socket's short read timeout exists so *idle* connections can poll a
/// shutdown flag; a partially-transferred request must not be dropped by it.
pub(crate) const MID_REQUEST_PATIENCE: std::time::Duration = std::time::Duration::from_secs(30);

/// The error returned when a *partially transferred* request stalls past
/// [`MID_REQUEST_PATIENCE`].  Deliberately NOT `WouldBlock`/`TimedOut`: the
/// connection loop treats those as idle keep-alive polls and keeps the
/// stream open, which after a half-consumed request would desynchronize
/// the protocol.  This kind makes the caller drop the connection instead.
fn mid_request_timeout() -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, "request stalled mid-transfer")
}

/// `read_exact` that retries timeout errors until the request-wide
/// `deadline`: the per-read socket timeout is short (idle-poll
/// granularity), but a large upload legitimately spans many reads.
fn read_exact_patiently(
    reader: &mut impl BufRead,
    mut buf: &mut [u8],
    deadline: std::time::Instant,
) -> io::Result<()> {
    while !buf.is_empty() {
        match io::Read::read(reader, buf) {
            Ok(0) => return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated body")),
            Ok(n) => buf = &mut buf[n..],
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if std::time::Instant::now() >= deadline {
                    return Err(mid_request_timeout());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// One parsing step of the incremental [`Parser`].
#[derive(Debug)]
pub enum ParseStep {
    /// The buffer does not yet hold a complete request; read more bytes and
    /// call [`Parser::advance`] again.
    NeedMore,
    /// A complete request occupies the first [`RequestFrame::end`] bytes of
    /// the buffer.  Drain them; the parser has already reset itself for the
    /// next pipelined request.
    Complete(RequestFrame),
    /// The bytes are not an acceptable request: answer with the error's
    /// status and close the connection.
    Bad(ParseError),
}

/// What a connection should do when the peer closes with an incomplete
/// parse in flight.
#[derive(Debug, PartialEq, Eq)]
pub enum EofOutcome {
    /// EOF between requests: a clean close, nothing to answer.
    Clean,
    /// EOF mid-head: answer the typed `400` before closing (the same error
    /// [`read_request`] reports for a truncated head).
    Error(ParseError),
    /// EOF mid-body: drop the connection without a response (the blocking
    /// reader surfaces this as an I/O error, never a response).
    Drop,
}

/// A complete request located inside a connection's read buffer: every
/// field is a byte range into that buffer, nothing is copied until
/// [`RequestFrame::to_request`] materializes the owned [`Request`] handed
/// to the worker pool.  Header names have been lowercased and the method
/// uppercased *in place* by the parser.
#[derive(Debug)]
pub struct RequestFrame {
    /// Total bytes the request occupies at the front of the buffer
    /// (head + body): the caller drains exactly this many.
    pub end: usize,
    /// Whether the head carried `Expect: 100-continue` (and passed the
    /// body-size check, so an interim `100 Continue` is owed).
    pub expect_continue: bool,
    method: Range<usize>,
    target: Range<usize>,
    headers: Vec<(Range<usize>, Range<usize>)>,
    body: Range<usize>,
}

impl RequestFrame {
    /// The method as a borrowed slice of `buf` (already uppercased).
    pub fn method<'a>(&self, buf: &'a [u8]) -> &'a str {
        str_range(buf, &self.method)
    }

    /// The target as a borrowed slice of `buf`.
    pub fn target<'a>(&self, buf: &'a [u8]) -> &'a str {
        str_range(buf, &self.target)
    }

    /// The body as a borrowed slice of `buf`.
    pub fn body<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[self.body.clone()]
    }

    /// Materializes the owned [`Request`] (the one allocation point of the
    /// zero-copy path: the dispatch to a worker thread must outlive the
    /// connection buffer the frame borrows).
    pub fn to_request(&self, buf: &[u8]) -> Request {
        Request {
            method: self.method(buf).to_string(),
            target: self.target(buf).to_string(),
            headers: self
                .headers
                .iter()
                .map(|(name, value)| {
                    (str_range(buf, name).to_string(), str_range(buf, value).to_string())
                })
                .collect(),
            body: self.body(buf).to_vec(),
        }
    }
}

/// The range as `&str`.  Only called on ranges the parser validated as
/// UTF-8 line content, so the unwrap cannot fire.
fn str_range<'a>(buf: &'a [u8], range: &Range<usize>) -> &'a str {
    std::str::from_utf8(&buf[range.clone()]).expect("parser validated this range as UTF-8")
}

/// Head-scanning state: how far the terminator search got and what the
/// completed lines parsed into.  All offsets are absolute positions in the
/// connection buffer, which only ever grows between frames (the caller
/// drains it exactly at frame boundaries).
#[derive(Debug, Default)]
struct HeadScan {
    /// Resume position of the byte scan.
    pos: usize,
    /// First byte of the current (incomplete) line.
    line_start: usize,
    /// Completed lines so far (the request line is line 0).
    lines: usize,
    method: Range<usize>,
    target: Range<usize>,
    headers: Vec<(Range<usize>, Range<usize>)>,
}

#[derive(Debug)]
enum ParserState {
    /// Scanning the head (request line + headers) for the blank line.
    Head(HeadScan),
    /// Head parsed; waiting for `length` body bytes after `body_start`.
    Body { frame: RequestFrame, body_start: usize, length: usize },
}

/// The incremental, resumable request parser behind the epoll reactor: feed
/// it a connection's growing read buffer and it picks up exactly where the
/// previous call stopped — mid-header, mid-body, or between pipelined
/// requests.  It enforces the same limits (`MAX_LINE`, `MAX_HEADERS`,
/// [`MAX_BODY`]) with the same typed [`ParseError`]s as [`read_request`],
/// *at the same byte positions*: an over-long line is rejected as soon as
/// its `MAX_LINE+1`-th byte arrives, without waiting for a terminator, and
/// an oversized `Content-Length` is rejected at the head — before any body
/// byte — so `Expect: 100-continue` probes are refused with `413` and no
/// interim response.
#[derive(Debug)]
pub struct Parser {
    state: ParserState,
    /// Latched when a head completes carrying `Expect: 100-continue`; the
    /// caller collects it via [`Parser::take_continue`] and owes the peer
    /// an interim `100 Continue` before the real response.
    continue_latch: bool,
}

impl Default for Parser {
    fn default() -> Self {
        Self::new()
    }
}

impl Parser {
    /// A parser at the start of a request.
    pub fn new() -> Self {
        Self { state: ParserState::Head(HeadScan::default()), continue_latch: false }
    }

    /// `true` exactly once after a head carrying `Expect: 100-continue`
    /// completed: the connection owes the peer `HTTP/1.1 100 Continue`.
    pub fn take_continue(&mut self) -> bool {
        std::mem::take(&mut self.continue_latch)
    }

    /// Drives parsing as far as the buffer allows.  `buf` is the
    /// connection's unconsumed read buffer; it is mutated in place (header
    /// names lowercased, the method uppercased) but never truncated or
    /// reordered.  After [`ParseStep::Complete`] the caller drains
    /// `frame.end` bytes and the parser is already reset; after
    /// [`ParseStep::Bad`] the connection must answer and close.
    pub fn advance(&mut self, buf: &mut [u8]) -> ParseStep {
        loop {
            match &mut self.state {
                ParserState::Head(scan) => match scan_head(scan, buf) {
                    Err(error) => return ParseStep::Bad(error),
                    Ok(false) => return ParseStep::NeedMore,
                    Ok(true) => {
                        let scan = std::mem::take(scan);
                        match finish_head(scan, buf) {
                            Err(error) => return ParseStep::Bad(error),
                            Ok((frame, body_start, length, expect)) => {
                                self.continue_latch = expect;
                                self.state = ParserState::Body { frame, body_start, length };
                            }
                        }
                    }
                },
                ParserState::Body { body_start, length, .. } => {
                    if buf.len() < *body_start + *length {
                        return ParseStep::NeedMore;
                    }
                    let frame = match std::mem::replace(
                        &mut self.state,
                        ParserState::Head(HeadScan::default()),
                    ) {
                        ParserState::Body { frame, .. } => frame,
                        ParserState::Head(_) => unreachable!("state checked above"),
                    };
                    return ParseStep::Complete(frame);
                }
            }
        }
    }

    /// Classifies a peer close given `buffered` unconsumed bytes: clean
    /// between requests, a typed `400` mid-head (matching
    /// [`read_request`]'s truncation errors), or a silent drop mid-body.
    pub fn eof_outcome(&self, buffered: usize) -> EofOutcome {
        match &self.state {
            ParserState::Head(scan) => {
                if buffered == 0 && scan.lines == 0 {
                    EofOutcome::Clean
                } else if scan.line_start < buffered {
                    // EOF mid-line: the same error `read_line` reports.
                    EofOutcome::Error(ParseError { status: 400, message: "truncated request line" })
                } else {
                    EofOutcome::Error(ParseError { status: 400, message: "truncated headers" })
                }
            }
            ParserState::Body { .. } => EofOutcome::Drop,
        }
    }

    /// `true` while a request is partially transferred (any head byte seen
    /// or a body pending): the reactor's slow-loris sweep uses this to
    /// distinguish a stalled transfer from an idle keep-alive.
    pub fn mid_request(&self, buffered: usize) -> bool {
        match &self.state {
            ParserState::Head(scan) => buffered > 0 || scan.lines > 0,
            ParserState::Body { .. } => true,
        }
    }
}

/// Scans for the head terminator (the first empty line), parsing each line
/// as it completes so errors fire at the same byte position as the blocking
/// reader's.  `Ok(true)` means the head is complete (`scan.pos` is the
/// first body byte).
fn scan_head(scan: &mut HeadScan, buf: &mut [u8]) -> Result<bool, ParseError> {
    while scan.pos < buf.len() {
        let byte = buf[scan.pos];
        if byte != b'\n' {
            // `read_line` rejects the MAX_LINE+1-th byte of a line without
            // waiting for the terminator; `\r` counts (it is only stripped
            // when the `\n` lands).
            if scan.pos - scan.line_start >= MAX_LINE {
                return Err(ParseError { status: 431, message: "header line too long" });
            }
            scan.pos += 1;
            continue;
        }
        let start = scan.line_start;
        let mut content_end = scan.pos;
        if content_end > start && buf[content_end - 1] == b'\r' {
            content_end -= 1;
        }
        let line_index = scan.lines;
        scan.pos += 1;
        scan.line_start = scan.pos;
        scan.lines += 1;
        let head_done = process_line(scan, buf, start, content_end, line_index)?;
        if head_done {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Handles one completed head line: request line, header, or the blank
/// terminator.  Returns `Ok(true)` when the head is complete.
fn process_line(
    scan: &mut HeadScan,
    buf: &mut [u8],
    start: usize,
    content_end: usize,
    line_index: usize,
) -> Result<bool, ParseError> {
    let line = std::str::from_utf8(&buf[start..content_end])
        .map_err(|_| ParseError { status: 400, message: "request line is not valid UTF-8" })?;
    if line_index == 0 {
        // The request line: METHOD TARGET VERSION (split on whitespace,
        // extra tokens ignored — exactly `split_whitespace` semantics).
        let mut tokens = token_ranges(line, start).into_iter();
        let (Some(method), Some(target), Some(version)) =
            (tokens.next(), tokens.next(), tokens.next())
        else {
            return Err(ParseError { status: 400, message: "malformed request line" });
        };
        if !str_range(buf, &version).starts_with("HTTP/1.") {
            return Err(ParseError { status: 400, message: "unsupported HTTP version" });
        }
        buf[method.clone()].make_ascii_uppercase();
        scan.method = method;
        scan.target = target;
        return Ok(false);
    }
    if line.is_empty() {
        return Ok(true);
    }
    if scan.headers.len() >= MAX_HEADERS {
        return Err(ParseError { status: 431, message: "too many headers" });
    }
    let Some(colon) = line.find(':') else {
        return Err(ParseError { status: 400, message: "malformed header" });
    };
    let name = trimmed_range(&line[..colon], start);
    let value = trimmed_range(&line[colon + 1..], start + colon + 1);
    buf[name.clone()].make_ascii_lowercase();
    scan.headers.push((name, value));
    Ok(false)
}

/// Whitespace-separated token ranges of `line`, absolute (offset by
/// `base`).  Unicode whitespace, like `split_whitespace`.
fn token_ranges(line: &str, base: usize) -> Vec<Range<usize>> {
    let mut tokens = Vec::new();
    let mut token_start: Option<usize> = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = token_start.take() {
                tokens.push(base + s..base + i);
            }
        } else if token_start.is_none() {
            token_start = Some(i);
        }
    }
    if let Some(s) = token_start {
        tokens.push(base + s..base + line.len());
    }
    tokens
}

/// The absolute range of `piece` with surrounding whitespace trimmed
/// (Unicode trim, like `str::trim`).
fn trimmed_range(piece: &str, base: usize) -> Range<usize> {
    let trimmed = piece.trim_start();
    let lead = piece.len() - trimmed.len();
    let trimmed = trimmed.trim_end();
    base + lead..base + lead + trimmed.len()
}

/// Runs the post-head checks in [`read_request`]'s order — transfer
/// encoding, `Content-Length`, then `Expect` — and builds the frame
/// skeleton.  Returns `(frame, body_start, length, expect_continue)`.
fn finish_head(
    scan: HeadScan,
    buf: &[u8],
) -> Result<(RequestFrame, usize, usize, bool), ParseError> {
    let header = |name: &str| {
        scan.headers
            .iter()
            .find(|(n, _)| &buf[n.clone()] == name.as_bytes())
            .map(|(_, v)| str_range(buf, v))
    };
    let chunked = scan.headers.iter().any(|(n, v)| {
        &buf[n.clone()] == b"transfer-encoding"
            && !str_range(buf, v).eq_ignore_ascii_case("identity")
    });
    if chunked {
        return Err(ParseError {
            status: 400,
            message: "chunked transfer encoding is not supported",
        });
    }
    let length = match header("content-length") {
        None => 0,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n <= MAX_BODY => n,
            Ok(_) => return Err(ParseError { status: 413, message: "request body too large" }),
            Err(_) => return Err(ParseError { status: 400, message: "malformed Content-Length" }),
        },
    };
    let expect = scan.headers.iter().any(|(n, v)| {
        &buf[n.clone()] == b"expect" && str_range(buf, v).eq_ignore_ascii_case("100-continue")
    });
    let body_start = scan.pos;
    let frame = RequestFrame {
        end: body_start + length,
        expect_continue: expect,
        method: scan.method,
        target: scan.target,
        headers: scan.headers,
        body: body_start..body_start + length,
    };
    Ok((frame, body_start, length, expect))
}

/// An HTTP response ready to be written.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value), written verbatim after
    /// `Content-Type` — the request-id stamp rides here.
    pub headers: Vec<(&'static str, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Adds one response header (builder style).  The value must not
    /// contain CR or LF; this is asserted, since a header value is written
    /// to the wire verbatim.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        let value = value.into();
        assert!(!value.contains(['\r', '\n']), "header values must be single-line");
        self.headers.push((name, value));
        self
    }

    /// `true` for 2xx statuses.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// The standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Writes the response, flagging whether the connection will stay open.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in &response.headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        read_request(&mut BufReader::new(raw.as_bytes()), &mut io::sink()).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = "POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let ReadOutcome::Request(req) = parse(raw) else { panic!("expected a request") };
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_text(), Some("hello world"));
        assert!(!req.wants_close());
    }

    #[test]
    fn detects_connection_close_and_eof() {
        let raw = "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let ReadOutcome::Request(req) = parse(raw) else { panic!("expected a request") };
        assert!(req.wants_close());
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn rejects_malformed_requests_with_statuses() {
        let cases = [
            ("FROB\r\n\r\n", 400),
            ("GET / SPDY/3\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nbad header\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", 400),
            ("GET / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n", 413),
            ("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
        ];
        for (raw, status) in cases {
            match parse(raw) {
                ReadOutcome::Bad(e) => assert_eq!(e.status, status, "{raw:?}"),
                _ => panic!("expected Bad for {raw:?}"),
            }
        }
    }

    #[test]
    fn expect_100_continue_is_acknowledged() {
        let raw =
            "POST /datasets/x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\nhello";
        let mut interim = Vec::new();
        let outcome = read_request(&mut BufReader::new(raw.as_bytes()), &mut interim).unwrap();
        let ReadOutcome::Request(req) = outcome else { panic!("expected a request") };
        assert_eq!(req.body_text(), Some("hello"));
        assert_eq!(String::from_utf8(interim).unwrap(), "HTTP/1.1 100 Continue\r\n\r\n");
    }

    /// Feeds `raw` to a fresh [`Parser`] in two chunks split at `split`,
    /// collecting every completed request and the terminal error, if any.
    fn drive_split(raw: &[u8], split: usize) -> (Vec<Request>, Option<ParseError>) {
        let mut parser = Parser::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut requests = Vec::new();
        for chunk in [&raw[..split], &raw[split..]] {
            buf.extend_from_slice(chunk);
            loop {
                match parser.advance(&mut buf) {
                    ParseStep::NeedMore => break,
                    ParseStep::Bad(e) => return (requests, Some(e)),
                    ParseStep::Complete(frame) => {
                        requests.push(frame.to_request(&buf));
                        buf.drain(..frame.end);
                    }
                }
            }
        }
        (requests, None)
    }

    #[test]
    fn incremental_parser_matches_one_shot_at_every_split() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world\
                    GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        // One-shot reference: both requests through the blocking reader.
        let mut reader = BufReader::new(&raw[..]);
        let mut reference = Vec::new();
        while let ReadOutcome::Request(req) = read_request(&mut reader, &mut io::sink()).unwrap() {
            reference.push(req);
        }
        assert_eq!(reference.len(), 2);
        for split in 0..=raw.len() {
            let (requests, error) = drive_split(raw, split);
            assert!(error.is_none(), "split {split}: {error:?}");
            assert_eq!(requests.len(), reference.len(), "split {split}");
            for (got, want) in requests.iter().zip(&reference) {
                assert_eq!(got.method, want.method, "split {split}");
                assert_eq!(got.target, want.target, "split {split}");
                assert_eq!(got.headers, want.headers, "split {split}");
                assert_eq!(got.body, want.body, "split {split}");
            }
        }
    }

    #[test]
    fn incremental_parser_rejects_with_the_same_typed_errors() {
        let cases: [(&[u8], u16); 7] = [
            (b"FROB\r\n\r\n", 400),
            (b"GET / SPDY/3\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nbad header\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: pony\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n", 413),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nHost: \xff\xfe\r\n\r\n", 400),
        ];
        for (raw, status) in cases {
            for split in 0..=raw.len() {
                let (_, error) = drive_split(raw, split);
                let error = error.unwrap_or_else(|| panic!("{raw:?} split {split} must fail"));
                assert_eq!(error.status, status, "{raw:?} split {split}");
                // The one-shot reader agrees on the exact error.
                match read_request(&mut BufReader::new(raw), &mut io::sink()).unwrap() {
                    ReadOutcome::Bad(e) => assert_eq!(e, error, "{raw:?}"),
                    _ => panic!("one-shot reader accepted {raw:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_lines_are_rejected_before_the_terminator_arrives() {
        // MAX_LINE+1 bytes of a single line, no newline in sight: the
        // parser must refuse immediately instead of buffering unboundedly.
        let mut parser = Parser::new();
        let mut buf = vec![b'A'; MAX_LINE + 1];
        match parser.advance(&mut buf) {
            ParseStep::Bad(e) => assert_eq!(e.status, 431),
            other => panic!("expected Bad(431), got {other:?}"),
        }
    }

    #[test]
    fn expect_continue_latches_at_head_completion_before_the_body() {
        let mut parser = Parser::new();
        let mut buf =
            b"POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 5\r\n\r\n".to_vec();
        assert!(matches!(parser.advance(&mut buf), ParseStep::NeedMore));
        assert!(parser.take_continue(), "interim owed once the head completes");
        assert!(!parser.take_continue(), "the latch reads once");
        buf.extend_from_slice(b"hello");
        match parser.advance(&mut buf) {
            ParseStep::Complete(frame) => {
                assert!(frame.expect_continue);
                assert_eq!(frame.to_request(&buf).body_text(), Some("hello"));
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn oversized_declared_bodies_refuse_without_an_interim_continue() {
        let mut parser = Parser::new();
        let mut buf =
            b"POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 999999999999\r\n\r\n"
                .to_vec();
        match parser.advance(&mut buf) {
            ParseStep::Bad(e) => assert_eq!(e.status, 413),
            other => panic!("expected Bad(413), got {other:?}"),
        }
        assert!(!parser.take_continue(), "no interim invites a refused body");
    }

    #[test]
    fn eof_outcomes_mirror_the_blocking_reader() {
        // Clean close between requests.
        let parser = Parser::new();
        assert_eq!(parser.eof_outcome(0), EofOutcome::Clean);
        assert!(!parser.mid_request(0));
        // Mid-line: truncated request line.
        let mut parser = Parser::new();
        let mut buf = b"GET /he".to_vec();
        assert!(matches!(parser.advance(&mut buf), ParseStep::NeedMore));
        assert!(parser.mid_request(buf.len()));
        match parser.eof_outcome(buf.len()) {
            EofOutcome::Error(e) => assert_eq!(e.message, "truncated request line"),
            other => panic!("expected Error, got {other:?}"),
        }
        // At a line boundary mid-head: truncated headers.
        let mut parser = Parser::new();
        let mut buf = b"GET / HTTP/1.1\r\n".to_vec();
        assert!(matches!(parser.advance(&mut buf), ParseStep::NeedMore));
        match parser.eof_outcome(buf.len()) {
            EofOutcome::Error(e) => assert_eq!(e.message, "truncated headers"),
            other => panic!("expected Error, got {other:?}"),
        }
        // Mid-body: a silent drop.
        let mut parser = Parser::new();
        let mut buf = b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhe".to_vec();
        assert!(matches!(parser.advance(&mut buf), ParseStep::NeedMore));
        assert_eq!(parser.eof_outcome(buf.len()), EofOutcome::Drop);
        assert!(parser.mid_request(buf.len()));
    }

    #[test]
    fn writes_parseable_responses() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{\"ok\":true}"), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
        assert!(Response::json(200, "").is_success());
        assert!(!Response::text(404, "nope").is_success());
    }

    #[test]
    fn writes_extra_headers_before_the_body() {
        let mut out = Vec::new();
        let response = Response::json(200, "{}").with_header("X-Request-Id", "r-000042");
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Request-Id: r-000042\r\n"), "{text}");
        let (head, body) = text.split_once("\r\n\r\n").expect("header/body separator");
        assert!(head.contains("X-Request-Id"));
        assert_eq!(body, "{}");
    }
}
