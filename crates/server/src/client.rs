//! A tiny blocking HTTP/1.1 client for the service's own tests and the
//! `serve_loadgen` benchmark driver.  Keep-alive by default: one [`Client`]
//! holds one connection and issues requests sequentially on it, which is
//! exactly the shape an open-loop load generator needs.

use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A persistent connection to one server.  The request head, response
/// line, and response body all go through connection-owned scratch buffers
/// reused across requests, so a long-lived client (the load generator's
/// shape) allocates per response body, not per protocol step.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Request serialization scratch: the whole head (+ body) is built
    /// here and written with one `write` syscall.
    scratch: String,
    /// Response status/header line scratch.
    line: String,
    /// Response body scratch; the returned `String` is the only per-body
    /// allocation.
    body_buf: Vec<u8>,
}

/// One request of a pipelined burst (see [`Client::pipeline`]).
#[derive(Clone, Copy, Debug)]
pub struct PipelineRequest<'a> {
    /// The HTTP method.
    pub method: &'a str,
    /// The request target.
    pub path: &'a str,
    /// The request body (`Content-Length` is derived).
    pub body: &'a str,
}

impl<'a> PipelineRequest<'a> {
    /// A `GET` with an empty body.
    pub fn get(path: &'a str) -> Self {
        Self { method: "GET", path, body: "" }
    }

    /// A `POST` carrying `body`.
    pub fn post(path: &'a str, body: &'a str) -> Self {
        Self { method: "POST", path, body }
    }
}

/// A full response: status code, headers (lowercased names, trimmed
/// values), and the body as text.
pub type FullResponse = (u16, Vec<(String, String)>, String);

impl Client {
    /// Connects to the address (e.g. `127.0.0.1:7070` or a `SocketAddr`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr: SocketAddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: stream,
            scratch: String::new(),
            line: String::new(),
            body_buf: Vec::new(),
        })
    }

    /// Issues one request and reads the full response.  Returns the status
    /// code and the body as text.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let (status, _, text) = self.request_with(method, path, &[], body)?;
        Ok((status, text))
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST path` with a body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Issues one request and returns the status code, the response
    /// headers (lowercased names, trimmed values) and the body — the
    /// variant observability tests use to read `X-Request-Id`.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<FullResponse> {
        self.request_with(method, path, &[], body)
    }

    /// Issues one request carrying extra headers (e.g. `X-Deadline-Ms`)
    /// and returns the full response.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &str,
    ) -> io::Result<FullResponse> {
        self.scratch.clear();
        let _ = write!(self.scratch, "{method} {path} HTTP/1.1\r\nHost: mrs\r\n");
        for (name, value) in extra_headers {
            let _ = write!(self.scratch, "{name}: {value}\r\n");
        }
        let _ = write!(self.scratch, "Content-Length: {}\r\n\r\n", body.len());
        self.scratch.push_str(body);
        self.writer.write_all(self.scratch.as_bytes())?;
        self.writer.flush()?;
        self.read_response_with_headers()
    }

    /// Writes every request back-to-back as one coalesced burst (a single
    /// `write` syscall), then reads the responses in order.  HTTP/1.1
    /// answers pipelined requests strictly in request order, so response
    /// `i` belongs to request `i`.
    pub fn pipeline(&mut self, requests: &[PipelineRequest<'_>]) -> io::Result<Vec<FullResponse>> {
        self.scratch.clear();
        for request in requests {
            let _ = write!(
                self.scratch,
                "{} {} HTTP/1.1\r\nHost: mrs\r\nContent-Length: {}\r\n\r\n",
                request.method,
                request.path,
                request.body.len()
            );
            self.scratch.push_str(request.body);
        }
        self.writer.write_all(self.scratch.as_bytes())?;
        self.writer.flush()?;
        requests.iter().map(|_| self.read_response_with_headers()).collect()
    }

    /// Reads the next `\r\n`-terminated line into the connection-owned
    /// scratch and returns it trimmed.
    fn read_line(&mut self) -> io::Result<&str> {
        self.line.clear();
        if self.reader.read_line(&mut self.line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(self.line.trim_end_matches(['\r', '\n']))
    }

    fn read_response_with_headers(&mut self) -> io::Result<FullResponse> {
        let status_line = self.read_line()?;
        let status: u16 = match status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()) {
            Some(status) => status,
            None => {
                let bad = format!("bad status: {status_line}");
                return Err(io::Error::new(io::ErrorKind::InvalidData, bad));
            }
        };
        let mut length = 0usize;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        self.body_buf.resize(length, 0);
        self.reader.read_exact(&mut self.body_buf)?;
        let body = std::str::from_utf8(&self.body_buf)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?
            .to_string();
        Ok((status, headers, body))
    }
}

/// Retry policy for [`RetryingClient`]: jittered exponential backoff on
/// transport errors, server-directed waits (`Retry-After`) on `503` sheds,
/// and a hard cap on the total time a client will spend sleeping between
/// retries so a flooded server cannot hold its clients hostage.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries per request (on top of the first attempt).
    pub max_retries: u32,
    /// First backoff; attempt `n` waits `base_backoff * 2^(n-1)`, jittered.
    pub base_backoff: Duration,
    /// Upper bound on any single wait, including server-directed ones.
    pub max_backoff: Duration,
    /// Total sleep budget across the client's lifetime; a wait that would
    /// exceed it is not taken and the last outcome is returned as-is.
    pub retry_budget: Duration,
    /// Seed for the backoff jitter (deterministic for tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            retry_budget: Duration::from_secs(10),
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// What a [`RetryingClient`] did so far, surfaced so load generators and
/// operators can see retry pressure instead of silently absorbed sheds.
#[derive(Clone, Copy, Debug, Default)]
pub struct RetryCounters {
    /// Requests attempted (every try, including retries).
    pub attempts: u64,
    /// Attempts that were retried (after a shed or a transport error).
    pub retries: u64,
    /// Waits taken from a `503`'s `Retry-After` header.
    pub retry_after_honored: u64,
    /// Requests abandoned because the retry budget ran dry.
    pub budget_exhausted: u64,
}

/// A [`Client`] wrapper with admission-control-aware retries: `503` sheds
/// wait the server-directed `Retry-After`, transport errors reconnect under
/// jittered exponential backoff, and both are bounded per request
/// (`max_retries`) and across the client's lifetime (`retry_budget`).
pub struct RetryingClient {
    addr: SocketAddr,
    client: Option<Client>,
    policy: RetryPolicy,
    rng: u64,
    slept: Duration,
    counters: RetryCounters,
}

impl RetryingClient {
    /// A retrying client for the address; the connection is established
    /// lazily on the first request (and re-established after failures).
    pub fn new(addr: impl ToSocketAddrs, policy: RetryPolicy) -> io::Result<Self> {
        let addr: SocketAddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let rng = policy.seed | 1; // xorshift must not start at 0
        Ok(Self {
            addr,
            client: None,
            policy,
            rng,
            slept: Duration::ZERO,
            counters: RetryCounters::default(),
        })
    }

    /// The retry counters accumulated so far.
    pub fn counters(&self) -> RetryCounters {
        self.counters
    }

    /// `GET path`, with retries.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST path` with a body, with retries.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Issues one request, retrying sheds and transport errors under the
    /// policy.  Returns the last status/body (or error) when retries or the
    /// budget run out — a shed is then the caller's to observe, never
    /// silently swallowed.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.counters.attempts += 1;
            match self.try_once(method, path, body) {
                Ok((503, headers, text)) if attempt <= self.policy.max_retries => {
                    let retry_after = headers
                        .iter()
                        .find(|(name, _)| name == "retry-after")
                        .and_then(|(_, value)| value.parse::<u64>().ok());
                    let wait = match retry_after {
                        Some(secs) => {
                            self.counters.retry_after_honored += 1;
                            Duration::from_secs(secs).min(self.policy.max_backoff)
                        }
                        None => self.backoff(attempt),
                    };
                    if !self.sleep_within_budget(wait) {
                        self.counters.budget_exhausted += 1;
                        return Ok((503, text));
                    }
                    self.counters.retries += 1;
                }
                Ok((status, _, text)) => return Ok((status, text)),
                Err(e) if attempt <= self.policy.max_retries => {
                    // The connection is suspect (reset, EOF, stall): drop it
                    // and reconnect on the next attempt.
                    self.client = None;
                    let wait = self.backoff(attempt);
                    if !self.sleep_within_budget(wait) {
                        self.counters.budget_exhausted += 1;
                        return Err(e);
                    }
                    self.counters.retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_once(&mut self, method: &str, path: &str, body: &str) -> io::Result<FullResponse> {
        if self.client.is_none() {
            self.client = Some(Client::connect(self.addr)?);
        }
        let result =
            self.client.as_mut().expect("just connected").request_with_headers(method, path, body);
        if result.is_err() {
            self.client = None;
        }
        result
    }

    /// The jittered exponential backoff for the `attempt`-th try:
    /// `base * 2^(attempt-1)`, scaled by a factor in `[0.5, 1.5)`, capped.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let exp = self.policy.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
        let jitter = 0.5 + self.next_unit();
        exp.mul_f64(jitter).min(self.policy.max_backoff)
    }

    /// The next xorshift64 draw in `[0, 1)` (std-only, deterministic).
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Sleeps `wait` if the lifetime budget allows it; `false` means the
    /// budget is exhausted and the caller must stop retrying.
    fn sleep_within_budget(&mut self, wait: Duration) -> bool {
        if self.slept + wait > self.policy.retry_budget {
            return false;
        }
        self.slept += wait;
        std::thread::sleep(wait);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Serves the canned responses in order on one keep-alive connection,
    /// reading (and discarding) one request before each.
    fn canned_server(responses: Vec<String>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for canned in responses {
                let mut length = 0usize;
                loop {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap_or(0) == 0 {
                        return;
                    }
                    let line = line.trim_end();
                    if line.is_empty() {
                        break;
                    }
                    if let Some((name, value)) = line.split_once(':') {
                        if name.eq_ignore_ascii_case("content-length") {
                            length = value.trim().parse().unwrap_or(0);
                        }
                    }
                }
                let mut body = vec![0u8; length];
                let _ = reader.read_exact(&mut body);
                writer.write_all(canned.as_bytes()).unwrap();
                writer.flush().unwrap();
            }
        });
        addr
    }

    fn response(status: u16, reason: &str, extra: &str, body: &str) -> String {
        format!("HTTP/1.1 {status} {reason}\r\nContent-Length: {}\r\n{extra}\r\n{body}", body.len())
    }

    #[test]
    fn sheds_are_retried_after_the_server_directed_wait() {
        let addr = canned_server(vec![
            response(503, "Service Unavailable", "Retry-After: 1\r\n", "{\"error\":\"shed\"}"),
            response(200, "OK", "", "{\"ok\":true}"),
        ]);
        let policy = RetryPolicy {
            // Keep the honored wait short so the test stays fast: the
            // server says 1 s, the cap trims it to 20 ms.
            max_backoff: Duration::from_millis(20),
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(addr, policy).unwrap();
        let (status, body) = client.get("/query").unwrap();
        assert_eq!(status, 200, "{body}");
        let counters = client.counters();
        assert_eq!(counters.attempts, 2);
        assert_eq!(counters.retries, 1);
        assert_eq!(counters.retry_after_honored, 1);
        assert_eq!(counters.budget_exhausted, 0);
    }

    #[test]
    fn the_retry_budget_caps_how_long_a_client_waits() {
        let addr = canned_server(vec![response(
            503,
            "Service Unavailable",
            "Retry-After: 60\r\n",
            "{\"error\":\"shed\"}",
        )]);
        let policy = RetryPolicy {
            max_backoff: Duration::from_secs(120),
            retry_budget: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(addr, policy).unwrap();
        let started = std::time::Instant::now();
        let (status, _) = client.get("/query").unwrap();
        assert_eq!(status, 503, "the shed is surfaced, not swallowed");
        assert!(started.elapsed() < Duration::from_secs(5), "no 60 s sleep was taken");
        let counters = client.counters();
        assert_eq!(counters.budget_exhausted, 1);
        assert_eq!(counters.retries, 0);
    }

    #[test]
    fn pipelined_bursts_read_responses_in_order() {
        let addr = canned_server(vec![
            response(200, "OK", "", "{\"n\":1}"),
            response(404, "Not Found", "", "{\"n\":2}"),
            response(200, "OK", "", "{\"n\":3}"),
        ]);
        let mut client = Client::connect(addr).unwrap();
        let burst = [
            PipelineRequest::get("/healthz"),
            PipelineRequest::get("/nope"),
            PipelineRequest::post("/query", "{\"q\":1}"),
        ];
        let responses = client.pipeline(&burst).unwrap();
        let seen: Vec<(u16, &str)> =
            responses.iter().map(|(status, _, body)| (*status, body.as_str())).collect();
        assert_eq!(seen, [(200, "{\"n\":1}"), (404, "{\"n\":2}"), (200, "{\"n\":3}")]);
    }

    #[test]
    fn transport_errors_reconnect_with_backoff() {
        // The canned server hangs up after its one response: the second
        // request hits EOF, reconnects, and fails cleanly once retries run
        // out (nothing is listening anymore).
        let addr = canned_server(vec![response(200, "OK", "", "{\"ok\":true}")]);
        let policy = RetryPolicy {
            max_retries: 1,
            base_backoff: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let mut client = RetryingClient::new(addr, policy).unwrap();
        assert_eq!(client.get("/healthz").unwrap().0, 200);
        let result = client.request("GET", "/healthz", "");
        assert!(result.is_err(), "a dead server fails after bounded retries");
        assert!(client.counters().retries >= 1);
    }
}
