//! A tiny blocking HTTP/1.1 client for the service's own tests and the
//! `serve_loadgen` benchmark driver.  Keep-alive by default: one [`Client`]
//! holds one connection and issues requests sequentially on it, which is
//! exactly the shape an open-loop load generator needs.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A persistent connection to one server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A full response: status code, headers (lowercased names, trimmed
/// values), and the body as text.
pub type FullResponse = (u16, Vec<(String, String)>, String);

impl Client {
    /// Connects to the address (e.g. `127.0.0.1:7070` or a `SocketAddr`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let addr: SocketAddr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream })
    }

    /// Issues one request and reads the full response.  Returns the status
    /// code and the body as text.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: mrs\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST path` with a body.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Issues one request and returns the status code, the response
    /// headers (lowercased names, trimmed values) and the body — the
    /// variant observability tests use to read `X-Request-Id`.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<FullResponse> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: mrs\r\nContent-Length: {}\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        self.read_response_with_headers()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"));
        }
        Ok(line.trim_end_matches(['\r', '\n']).to_string())
    }

    fn read_response(&mut self) -> io::Result<(u16, String)> {
        let (status, _, body) = self.read_response_with_headers()?;
        Ok((status, body))
    }

    fn read_response_with_headers(&mut self) -> io::Result<FullResponse> {
        let status_line = self.read_line()?;
        let status: u16 =
            status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(
                || io::Error::new(io::ErrorKind::InvalidData, format!("bad status: {status_line}")),
            )?;
        let mut length = 0usize;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
            }
        }
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 body"))?;
        Ok((status, headers, body))
    }
}
