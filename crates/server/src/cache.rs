//! The sharded LRU answer cache.
//!
//! MaxRS queries are pure functions of `(dataset contents, solver, query
//! shape)`, so the service can hand back a previously rendered answer
//! whenever the same query repeats — the Zipfian reuse real query logs show.
//! Keys embed the dataset's **epoch** (bumped every time a dataset is
//! (re)loaded) *and* its **version** (bumped by every mutation), so
//! invalidation is fine-grained: a reload silently invalidates every cached
//! answer for the old contents (stale keys can never match again and age
//! out of the LRU order naturally), while a mutation invalidates only the
//! answers of **that dataset's** older versions — the service additionally
//! purges those eagerly through [`AnswerCache::invalidate_dataset_below`],
//! so one hot mutable dataset cannot pollute the LRU with unreachable
//! entries, and the purge count is surfaced as a counter.
//!
//! The map is split into shards, each behind its own mutex, so concurrent
//! workers contend only when their keys hash to the same shard.  Within a
//! shard, recency is tracked with a monotone clock: a `BTreeMap` from clock
//! stamp to key makes "evict the least recently used entry" an `O(log n)`
//! pop of the smallest stamp.

use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mrs_core::engine::{BatchQuery, RangeShape};

/// A query shape reduced to hashable bits (`f64::to_bits`; `-0.0` and `0.0`
/// therefore key differently, which only costs a duplicate cache entry).
/// Works in any ambient dimension — box extents carry one bit pattern per
/// axis.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ShapeKey {
    /// A ball of the given radius bits.
    Ball(u64),
    /// An axis box of the given extent bits, one per axis.
    Box(Vec<u64>),
}

impl<const D: usize> From<&RangeShape<D>> for ShapeKey {
    fn from(shape: &RangeShape<D>) -> Self {
        match shape {
            RangeShape::Ball { radius } => ShapeKey::Ball(radius.to_bits()),
            RangeShape::AxisBox { extents } => {
                ShapeKey::Box(extents.iter().map(|e| e.to_bits()).collect())
            }
        }
    }
}

/// What uniquely identifies a cacheable answer: which dataset *contents*
/// (epoch + version), which problem family, which solver, and which query
/// shape.
///
/// The ambient dimension needs no field of its own: an epoch belongs to one
/// dataset, and a dataset has one dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The dataset epoch the answer was computed against (identifies one
    /// load of one dataset).
    pub epoch: u64,
    /// The dataset version within that epoch (bumped by every mutation).
    pub version: u64,
    /// `true` for colored queries, `false` for weighted ones.
    pub colored: bool,
    /// The registry name of the solver.
    pub solver: String,
    /// The query shape, bit-exact.
    pub shape: ShapeKey,
}

impl CacheKey {
    /// The key for one batch query against a dataset epoch and version.
    pub fn for_query<const D: usize>(epoch: u64, version: u64, query: &BatchQuery<D>) -> Self {
        Self {
            epoch,
            version,
            colored: matches!(query, BatchQuery::Colored { .. }),
            solver: query.solver().to_string(),
            shape: ShapeKey::from(query.shape()),
        }
    }
}

/// One shard: a bounded LRU map from key to rendered answer.
struct Shard {
    /// Key → (answer, recency stamp).
    map: HashMap<CacheKey, (Arc<str>, u64)>,
    /// Recency stamp → key; the smallest stamp is the LRU entry.
    order: BTreeMap<u64, CacheKey>,
    /// Monotone recency clock (shard-local).
    clock: u64,
}

impl Shard {
    fn new() -> Self {
        Self { map: HashMap::new(), order: BTreeMap::new(), clock: 0 }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<str>> {
        let stamp = self.tick();
        let (value, old) = self.map.get_mut(key)?;
        let value = Arc::clone(value);
        let previous = std::mem::replace(old, stamp);
        self.order.remove(&previous);
        self.order.insert(stamp, key.clone());
        Some(value)
    }

    /// Inserts, evicting least-recently-used entries to stay within
    /// `capacity`.  Returns how many entries were evicted.
    fn insert(&mut self, key: CacheKey, value: Arc<str>, capacity: usize) -> u64 {
        let stamp = self.tick();
        if let Some((_, old)) = self.map.remove(&key) {
            self.order.remove(&old);
        }
        let mut evicted = 0;
        while self.map.len() >= capacity {
            let Some((&oldest, _)) = self.order.iter().next() else { break };
            let victim = self.order.remove(&oldest).expect("stamp was present");
            self.map.remove(&victim);
            evicted += 1;
        }
        self.map.insert(key.clone(), (value, stamp));
        self.order.insert(stamp, key);
        evicted
    }
}

/// Point-in-time cache counters, as served by `/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries purged by fine-grained version invalidation (see
    /// [`AnswerCache::invalidate_dataset_below`]).
    pub invalidations: u64,
    /// Live entries right now, across all shards.
    pub entries: usize,
    /// Maximum live entries (shards × per-shard capacity).
    pub capacity: usize,
}

impl CacheCounters {
    /// Hit fraction over all lookups so far (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded LRU answer cache.  All methods take `&self`; sharding keeps
/// lock contention per-key.
pub struct AnswerCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl AnswerCache {
    /// A cache of `shards` shards with `capacity` total entries (rounded up
    /// to a multiple of the shard count; both are clamped to at least 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks the key up, counting a hit or a miss and refreshing recency.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        let result = self.shard(key).lock().expect("cache shard poisoned").get(key);
        match &result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Stores a rendered answer, evicting LRU entries as needed.
    pub fn insert(&self, key: CacheKey, value: Arc<str>) {
        let evicted = self.shard(&key).lock().expect("cache shard poisoned").insert(
            key,
            value,
            self.per_shard_capacity,
        );
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Eagerly purges every entry of dataset `epoch` whose version is
    /// below `version` — the fine-grained invalidation a mutation triggers.
    /// Keys of other datasets (other epochs) and of the new version are
    /// untouched.  Returns how many entries were purged (also accumulated
    /// into [`CacheCounters::invalidations`]).
    ///
    /// Strictly speaking the purge is an optimization: stale keys could
    /// never match again anyway (lookups embed the current version).  It
    /// keeps a hot mutable dataset from filling the LRU with unreachable
    /// entries, and gives operators a counter that proves invalidation is
    /// per-dataset, not catalog-wide.
    pub fn invalidate_dataset_below(&self, epoch: u64, version: u64) -> u64 {
        let mut purged = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            // Collect the victims' recency stamps (cheap u64s, no key
            // clones); each stamp owns its key in `order`, so removal pulls
            // the key back out of the recency index for the map removal.
            let stamps: Vec<u64> = shard
                .map
                .iter()
                .filter(|(k, _)| k.epoch == epoch && k.version < version)
                .map(|(_, (_, stamp))| *stamp)
                .collect();
            for stamp in stamps {
                if let Some(key) = shard.order.remove(&stamp) {
                    shard.map.remove(&key);
                    purged += 1;
                }
            }
        }
        if purged > 0 {
            self.invalidations.fetch_add(purged, Ordering::Relaxed);
        }
        purged
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// `true` when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum live entries.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Point-in-time counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, radius: f64) -> CacheKey {
        versioned_key(epoch, 1, radius)
    }

    fn versioned_key(epoch: u64, version: u64, radius: f64) -> CacheKey {
        CacheKey {
            epoch,
            version,
            colored: false,
            solver: "exact-disk-2d".to_string(),
            shape: ShapeKey::Ball(radius.to_bits()),
        }
    }

    fn value(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_miss_and_epoch_invalidation() {
        let cache = AnswerCache::new(4, 64);
        assert!(cache.get(&key(1, 0.5)).is_none());
        cache.insert(key(1, 0.5), value("a"));
        assert_eq!(cache.get(&key(1, 0.5)).as_deref(), Some("a"));
        // A new epoch is a different key: the old answer can never match.
        assert!(cache.get(&key(2, 0.5)).is_none());
        let counters = cache.counters();
        assert_eq!((counters.hits, counters.misses), (1, 2));
        assert!((counters.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(counters.entries, 1);
    }

    #[test]
    fn capacity_is_enforced_with_lru_eviction() {
        // One shard, capacity 3: inserting a 4th evicts the least recently
        // used, and a get() refreshes recency.
        let cache = AnswerCache::new(1, 3);
        for i in 0..3 {
            cache.insert(key(1, i as f64 + 1.0), value("v"));
        }
        assert_eq!(cache.len(), 3);
        // Touch the oldest (radius 1): radius 2 becomes the LRU victim.
        assert!(cache.get(&key(1, 1.0)).is_some());
        cache.insert(key(1, 4.0), value("v"));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(&key(1, 1.0)).is_some(), "refreshed entry survives");
        assert!(cache.get(&key(1, 2.0)).is_none(), "LRU entry was evicted");
        assert_eq!(cache.counters().evictions, 1);
        // Reinserting an existing key replaces in place, no eviction.
        cache.insert(key(1, 4.0), value("w"));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.get(&key(1, 4.0)).as_deref(), Some("w"));
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn shape_keys_distinguish_queries() {
        let ball = ShapeKey::from(&RangeShape::<2>::ball(1.0));
        let other = ShapeKey::from(&RangeShape::<2>::ball(2.0));
        let rect = ShapeKey::from(&RangeShape::rect(1.0, 2.0));
        assert_ne!(ball, other);
        assert_ne!(ball, rect);
        assert_eq!(rect, ShapeKey::Box(vec![1.0f64.to_bits(), 2.0f64.to_bits()]));
        // 1-D interval queries key as balls of half the length.
        let interval = ShapeKey::from(&RangeShape::<1>::interval(3.0));
        assert_eq!(interval, ShapeKey::Ball(1.5f64.to_bits()));
        let q = BatchQuery::colored("approx-colored-ball", RangeShape::<2>::ball(1.0));
        let k = CacheKey::for_query(7, 3, &q);
        assert!(k.colored);
        assert_eq!(k.epoch, 7);
        assert_eq!(k.version, 3);
        assert_eq!(k.solver, "approx-colored-ball");
    }

    #[test]
    fn version_invalidation_is_per_dataset_and_counted() {
        let cache = AnswerCache::new(4, 64);
        // Dataset epoch 1 at versions 1 and 2; dataset epoch 2 at version 1.
        cache.insert(versioned_key(1, 1, 0.5), value("old"));
        cache.insert(versioned_key(1, 1, 0.7), value("old"));
        cache.insert(versioned_key(1, 2, 0.5), value("new"));
        cache.insert(versioned_key(2, 1, 0.5), value("other"));
        // A mutation bumps dataset 1 to version 2: only its older entries go.
        let purged = cache.invalidate_dataset_below(1, 2);
        assert_eq!(purged, 2);
        assert!(cache.get(&versioned_key(1, 1, 0.5)).is_none());
        assert!(cache.get(&versioned_key(1, 1, 0.7)).is_none());
        assert_eq!(cache.get(&versioned_key(1, 2, 0.5)).as_deref(), Some("new"));
        assert_eq!(
            cache.get(&versioned_key(2, 1, 0.5)).as_deref(),
            Some("other"),
            "other datasets' entries must survive a mutation elsewhere"
        );
        assert_eq!(cache.counters().invalidations, 2);
        assert_eq!(cache.invalidate_dataset_below(1, 2), 0, "idempotent");
    }
}
