//! The serving runtime: bind, drive connection I/O, and shut down
//! gracefully.  Two runtimes share this entry point, selected by
//! [`ServerConfig::runtime`]:
//!
//! * **epoll** (Linux default) — the event-driven reactor in
//!   `crate::reactor`: one event-loop thread drives every connection
//!   with edge-triggered nonblocking sockets, incremental in-place
//!   parsing, HTTP/1.1 pipelining, and coalesced writes, handing parsed
//!   requests to the worker pool;
//! * **threaded** (portable fallback, and the only runtime off Linux) —
//!   the blocking worker pool documented below.
//!
//! Both call [`Service::handle`](crate::service::Service::handle) for
//! compute, so admission control, deadlines, panic isolation, and stats
//! are identical; only the I/O strategy differs.
//!
//! ## The threaded runtime
//!
//! ```text
//!   TcpListener ──accept──▶ mpsc channel ──▶ worker 0 ─┐
//!        (one accept thread)     ▲         ──▶ worker 1 ─┼─▶ Service::handle
//!                                │         ──▶ worker N ─┘
//!                                └──── idle connections PARKED back ────┘
//! ```
//!
//! A worker serves a connection's requests back to back, but the moment one
//! idle poll (`IDLE_POLL`, 200 ms) expires with no next request, the
//! connection is **parked back into the queue** (with its accumulated idle
//! budget) and the worker moves on.  Idle kept-alive connections therefore
//! cost one poll per pass through the pool — they cannot pin workers, so
//! `N` idle clients can never starve the service for the keep-alive
//! window.  A connection whose total idle exceeds the configured
//! keep-alive window ([`ServerConfig::keep_alive`], default 30 s) is
//! dropped.
//!
//! **Admission at the door**: the connection queue is *bounded*
//! ([`ServerConfig::queue_capacity`]).  When a connection flood fills it,
//! the accept loop sheds new arrivals with a well-formed `503` +
//! `Retry-After` (written best-effort, then the socket is dropped) rather
//! than queueing unboundedly; parked idle connections that no longer fit
//! are simply closed.  Every shed increments the `/stats` and `/metrics`
//! shed counter.
//!
//! Shutdown: [`ServerHandle::shutdown`] (or `POST /shutdown`) flips the
//! service's flag and pokes the listener with a throwaway connection so the
//! blocking `accept` observes it.  Workers poll the flag between
//! connections (and on every idle poll); in-flight requests always
//! complete, parked connections are dropped.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, write_response, ParseError, ReadOutcome, Response};
#[cfg(target_os = "linux")]
use crate::service::RuntimeKind;
use crate::service::{ServerConfig, Service};

/// The response both runtimes answer a malformed frame with before closing
/// the connection (the message is a literal, so quoting via `{:?}` is
/// valid JSON).
pub(crate) fn bad_frame_response(error: &ParseError) -> Response {
    Response::json(error.status, format!("{{\"error\":{:?}}}", error.message))
}

/// Granularity of the keep-alive wait: the socket read timeout is short so
/// an idle connection costs one such poll per pass through the pool (and so
/// idle workers re-check the shutdown flag often).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// One unit of worker work: a connection, either fresh off the listener or
/// parked by a worker after an idle poll, carrying its idle budget so far.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    idle: Duration,
}

impl Conn {
    fn fresh(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream, idle: Duration::ZERO })
    }
}

/// A running server: its bound address, its shared service state, and the
/// threads behind it.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    /// The accept thread (threaded runtime) or the reactor thread (epoll).
    driver: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (catalog, cache, stats).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown and waits for every thread to finish.  In-flight
    /// requests complete; idle kept-alive connections are abandoned.
    pub fn shutdown(mut self) {
        self.service.request_shutdown();
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until every server thread exits (e.g. after a remote
    /// `POST /shutdown`).  This is what `maxrs serve` parks on.
    pub fn join(mut self) {
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds the configured address and starts the accept loop plus worker
/// pool.  Returns once the socket is bound and the service is ready; the
/// returned handle owns the threads.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    serve_with(Arc::new(Service::new(config)))
}

/// Like [`serve`], over an externally constructed (possibly pre-loaded)
/// service.  Dispatches to the configured runtime; requesting `epoll` off
/// Linux silently falls back to the threaded runtime.
pub fn serve_with(service: Arc<Service>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&service.config().addr)?;
    let addr = listener.local_addr()?;
    service.set_local_addr(addr);
    #[cfg(target_os = "linux")]
    if service.config().runtime == RuntimeKind::Epoll {
        let (driver, workers) = crate::reactor::spawn(listener, Arc::clone(&service))?;
        return Ok(ServerHandle { addr, service, driver: Some(driver), workers });
    }
    serve_threaded(listener, service, addr)
}

/// The blocking worker-pool runtime (see the module docs).
fn serve_threaded(
    listener: TcpListener,
    service: Arc<Service>,
    addr: SocketAddr,
) -> io::Result<ServerHandle> {
    let (sender, receiver) = mpsc::sync_channel::<Conn>(service.config().queue_capacity.max(1));
    let receiver = Arc::new(Mutex::new(receiver));
    let threads = service.config().resolved_threads();
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let service = Arc::clone(&service);
            let receiver = Arc::clone(&receiver);
            let sender = sender.clone();
            std::thread::Builder::new()
                .name(format!("mrs-worker-{i}"))
                .spawn(move || worker_loop(&service, &receiver, &sender))
                .expect("spawning a worker thread")
        })
        .collect();

    let accept_service = Arc::clone(&service);
    let accept_thread = std::thread::Builder::new()
        .name("mrs-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_service, sender))
        .expect("spawning the accept thread");

    Ok(ServerHandle { addr, service, driver: Some(accept_thread), workers })
}

fn accept_loop(listener: &TcpListener, service: &Service, sender: SyncSender<Conn>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if service.is_shutting_down() {
                    // The poke connection (or a raced client) lands here.
                    break;
                }
                let Ok(conn) = Conn::fresh(stream) else { continue };
                match sender.try_send(conn) {
                    Ok(()) => {}
                    Err(TrySendError::Full(mut conn)) => {
                        // The bounded queue is full: shed at the door with a
                        // well-formed 503 + Retry-After (best-effort write —
                        // a flood peer may already be gone) and move on, so
                        // the accept loop itself never stalls.
                        service.stats().record_shed();
                        let response = service.shed_response("server connection queue is full");
                        let _ = write_response(&mut conn.writer, &response, false);
                    }
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) if service.is_shutting_down() => break,
            Err(_) => continue, // transient accept errors (EMFILE, resets)
        }
    }
}

fn worker_loop(
    service: &Service,
    receiver: &Arc<Mutex<Receiver<Conn>>>,
    sender: &SyncSender<Conn>,
) {
    loop {
        // Workers hold a sender clone (to park idle connections), so the
        // channel can never disconnect; shutdown is observed by polling the
        // flag between receives.  A worker that panicked mid-receive leaves
        // only the (stateless) lock behind, so poison is recovered rather
        // than cascading worker deaths across the pool.
        let next = receiver
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv_timeout(IDLE_POLL);
        if service.is_shutting_down() {
            break;
        }
        match next {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(conn) => {
                if let Some(parked) = handle_connection(service, conn) {
                    // An idle connection that no longer fits the bounded
                    // queue is dropped: under flood, idle keep-alives are
                    // the cheapest load to shed.
                    let _ = sender.try_send(parked);
                }
            }
        }
    }
}

/// Serves a connection's requests back to back.  Returns `Some(conn)` when
/// an idle poll expired and the connection should be parked back into the
/// queue (its idle budget not yet exhausted); `None` when it was closed.
fn handle_connection(service: &Service, mut conn: Conn) -> Option<Conn> {
    loop {
        match read_request(&mut conn.reader, &mut conn.writer) {
            // An idle poll expired before any byte of a request arrived
            // (mid-request stalls fail with a different error kind inside
            // `read_request`): park the connection instead of pinning this
            // worker on it.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                conn.idle += IDLE_POLL;
                if service.is_shutting_down() || conn.idle >= service.config().keep_alive {
                    break;
                }
                return Some(conn);
            }
            Err(_) => break, // reset, desync, or mid-request stall: drop
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Bad(e)) => {
                let _ = write_response(&mut conn.writer, &bad_frame_response(&e), false);
                break;
            }
            Ok(ReadOutcome::Request(request)) => {
                conn.idle = Duration::ZERO;
                let response = service.handle(&request);
                let keep_alive = !request.wants_close() && !service.is_shutting_down();
                if write_response(&mut conn.writer, &response, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
        }
    }
    let _ = conn.writer.flush();
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::service::RuntimeKind;

    /// Every behavioral test runs against both runtimes (off Linux, the
    /// epoll entry falls back to threaded and the pass is trivial).
    const RUNTIMES: [RuntimeKind; 2] = [RuntimeKind::Threaded, RuntimeKind::Epoll];

    fn start(runtime: RuntimeKind) -> ServerHandle {
        serve(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            seed: Some(7),
            runtime,
            ..ServerConfig::default()
        })
        .expect("bind an ephemeral port")
    }

    fn read_to_string_until(stream: &mut TcpStream, done: impl Fn(&str) -> bool) -> String {
        use std::io::Read;
        let mut text = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => {
                    text.push_str(&String::from_utf8_lossy(&buf[..n]));
                    if done(&text) {
                        break;
                    }
                }
            }
        }
        text
    }

    #[test]
    fn round_trips_requests_over_tcp() {
        for runtime in RUNTIMES {
            let server = start(runtime);
            let mut client = Client::connect(server.addr()).unwrap();
            let (status, body) = client.get("/healthz").unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"ok\""), "{body}");
            // Keep-alive: the same connection serves a second request.
            let (status, body) = client.get("/solvers").unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("exact-disk-2d"), "{body}");
            let (status, _) = client.get("/no-such-route").unwrap();
            assert_eq!(status, 404);
            server.shutdown();
        }
    }

    #[test]
    fn idle_connections_do_not_starve_new_clients() {
        // Open as many idle connections as there are workers; a fresh
        // client must still be served promptly (the threaded runtime parks
        // idle connections; the reactor never pins a thread on one).
        for runtime in RUNTIMES {
            let server = start(runtime); // 2 workers
            let _idle_a = std::net::TcpStream::connect(server.addr()).unwrap();
            let _idle_b = std::net::TcpStream::connect(server.addr()).unwrap();
            std::thread::sleep(Duration::from_millis(300)); // runtimes pick them up
            let started = std::time::Instant::now();
            let mut client = Client::connect(server.addr()).unwrap();
            let (status, _) = client.get("/healthz").unwrap();
            assert_eq!(status, 200);
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "a new client waited {:?} behind idle connections",
                started.elapsed()
            );
            server.shutdown();
        }
    }

    #[test]
    fn idle_connections_are_evicted_at_the_keep_alive_window() {
        use std::io::Read;
        for runtime in RUNTIMES {
            let server = serve(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                threads: 2,
                seed: Some(7),
                keep_alive: Duration::from_millis(400),
                runtime,
                ..ServerConfig::default()
            })
            .expect("bind an ephemeral port");
            // A connection that stays within the window keeps serving...
            let mut client = Client::connect(server.addr()).unwrap();
            assert_eq!(client.get("/healthz").unwrap().0, 200);
            std::thread::sleep(Duration::from_millis(250));
            assert_eq!(client.get("/healthz").unwrap().0, 200, "idle resets on every request");
            // ...while one idle past it is dropped by the server.
            let mut idle = TcpStream::connect(server.addr()).unwrap();
            idle.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            std::thread::sleep(Duration::from_millis(1500));
            let mut buf = [0u8; 16];
            let dead = match idle.read(&mut buf) {
                Ok(0) => true,  // clean EOF
                Ok(_) => false, // the server sent data?!
                // A reset is fine; a read timeout means it was never dropped.
                Err(e) => !matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut),
            };
            assert!(
                dead,
                "an idle connection past the keep-alive window must be dropped ({})",
                runtime.name()
            );
            server.shutdown();
        }
    }

    #[test]
    fn oversized_bodies_are_rejected_before_the_body_is_read() {
        for runtime in RUNTIMES {
            let server = start(runtime);
            // Announce a body far past MAX_BODY with `Expect: 100-continue`
            // and send none of it: the server must answer 413 *without*
            // inviting the upload with an interim `100 Continue`.
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            stream
                .write_all(
                    b"POST /datasets/x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 999999999999\r\n\r\n",
                )
                .unwrap();
            let response = read_to_string_until(&mut stream, |text| text.contains("\r\n\r\n"));
            assert!(response.starts_with("HTTP/1.1 413"), "{response}");
            assert!(!response.contains("100 Continue"), "no interim response invites the body");
            server.shutdown();
        }
    }

    #[test]
    fn expect_continue_is_answered_with_an_interim_response() {
        for runtime in RUNTIMES {
            let server = start(runtime);
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            stream
                .write_all(
                    b"POST /datasets/t HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 8\r\n\r\n",
                )
                .unwrap();
            let interim =
                read_to_string_until(&mut stream, |text| text.contains("100 Continue\r\n\r\n"));
            assert!(interim.starts_with("HTTP/1.1 100 Continue"), "{interim}");
            stream.write_all(b"0,0\n1,1\n").unwrap();
            let rest = read_to_string_until(&mut stream, |text| text.contains("HTTP/1.1 2"));
            assert!(rest.contains("HTTP/1.1 200"), "{rest}");
            server.shutdown();
        }
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn pipelined_requests_are_answered_in_order() {
        let server = start(RuntimeKind::Epoll);
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\n\
                  GET /solvers HTTP/1.1\r\n\r\n\
                  GET /no-such-route HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        // `Connection: close` on the last request ends the stream.
        let text = read_to_string_until(&mut stream, |_| false);
        // Bodies are not newline-terminated, so the next status line begins
        // mid-line: scan by substring, not by line.
        let statuses: Vec<&str> = text
            .match_indices("HTTP/1.1 ")
            .filter_map(|(pos, needle)| text[pos + needle.len()..].split_whitespace().next())
            .collect();
        assert_eq!(statuses, ["200", "200", "404"], "{text}");
        let rids: Vec<&str> =
            text.lines().filter_map(|line| line.strip_prefix("X-Request-Id: ")).collect();
        assert_eq!(rids.len(), 3, "{text}");
        assert!(
            rids.windows(2).all(|pair| pair[0] < pair[1]),
            "pipelined responses out of order: {rids:?}"
        );
        server.shutdown();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn at_capacity_arrivals_are_shed_with_retry_after() {
        let server = serve(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            seed: Some(7),
            queue_capacity: 1,
            runtime: RuntimeKind::Epoll,
            ..ServerConfig::default()
        })
        .expect("bind an ephemeral port");
        let mut first = Client::connect(server.addr()).unwrap();
        assert_eq!(first.get("/healthz").unwrap().0, 200);
        // The only slot is held by a live keep-alive: the next arrival is
        // shed at the door, exactly like the threaded runtime's full queue.
        let mut second = TcpStream::connect(server.addr()).unwrap();
        second.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let text = read_to_string_until(&mut second, |_| false);
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.contains("Retry-After:"), "{text}");
        assert!(server.service().stats().shed() >= 1);
        assert_eq!(first.get("/healthz").unwrap().0, 200, "the live connection is unharmed");
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        for runtime in RUNTIMES {
            let server = start(runtime);
            let addr = server.addr();
            let mut client = Client::connect(addr).unwrap();
            let (status, _) = client.post("/shutdown", "").unwrap();
            assert_eq!(status, 200);
            // join() returns because the runtime observed the flag.
            server.join();
            assert!(
                Client::connect(addr).is_err() || {
                    // The OS may accept into the backlog of the closed
                    // listener briefly; a request must at least fail.
                    let mut c = Client::connect(addr).unwrap();
                    c.get("/healthz").is_err()
                },
                "a shut-down server must not answer ({})",
                runtime.name()
            );
        }
    }
}
