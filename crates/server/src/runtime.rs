//! The serving runtime: bind, accept, fan connections out to a fixed worker
//! pool over a channel, and shut down gracefully.
//!
//! ```text
//!   TcpListener ──accept──▶ mpsc channel ──▶ worker 0 ─┐
//!        (one accept thread)     ▲         ──▶ worker 1 ─┼─▶ Service::handle
//!                                │         ──▶ worker N ─┘
//!                                └──── idle connections PARKED back ────┘
//! ```
//!
//! A worker serves a connection's requests back to back, but the moment one
//! idle poll (`IDLE_POLL`, 200 ms) expires with no next request, the
//! connection is **parked back into the queue** (with its accumulated idle
//! budget) and the worker moves on.  Idle kept-alive connections therefore
//! cost one poll per pass through the pool — they cannot pin workers, so
//! `N` idle clients can never starve the service for the keep-alive
//! window.  A connection whose total idle exceeds `KEEP_ALIVE_TIMEOUT`
//! (30 s) is dropped.
//!
//! Shutdown: [`ServerHandle::shutdown`] (or `POST /shutdown`) flips the
//! service's flag and pokes the listener with a throwaway connection so the
//! blocking `accept` observes it.  Workers poll the flag between
//! connections (and on every idle poll); in-flight requests always
//! complete, parked connections are dropped.

use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::http::{read_request, write_response, ReadOutcome, Response};
use crate::service::{ServerConfig, Service};

/// How long a connection may sit idle in total (across parks) before the
/// server drops it.
const KEEP_ALIVE_TIMEOUT: Duration = Duration::from_secs(30);

/// Granularity of the keep-alive wait: the socket read timeout is short so
/// an idle connection costs one such poll per pass through the pool (and so
/// idle workers re-check the shutdown flag often).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// One unit of worker work: a connection, either fresh off the listener or
/// parked by a worker after an idle poll, carrying its idle budget so far.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    idle: Duration,
}

impl Conn {
    fn fresh(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IDLE_POLL))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { reader, writer: stream, idle: Duration::ZERO })
    }
}

/// A running server: its bound address, its shared service state, and the
/// threads behind it.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state (catalog, cache, stats).
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown and waits for every thread to finish.  In-flight
    /// requests complete; idle kept-alive connections are abandoned.
    pub fn shutdown(mut self) {
        self.service.request_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until every server thread exits (e.g. after a remote
    /// `POST /shutdown`).  This is what `maxrs serve` parks on.
    pub fn join(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds the configured address and starts the accept loop plus worker
/// pool.  Returns once the socket is bound and the service is ready; the
/// returned handle owns the threads.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    serve_with(Arc::new(Service::new(config)))
}

/// Like [`serve`], over an externally constructed (possibly pre-loaded)
/// service.
pub fn serve_with(service: Arc<Service>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&service.config().addr)?;
    let addr = listener.local_addr()?;
    service.set_local_addr(addr);

    let (sender, receiver) = mpsc::channel::<Conn>();
    let receiver = Arc::new(Mutex::new(receiver));
    let threads = service.config().resolved_threads();
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|i| {
            let service = Arc::clone(&service);
            let receiver = Arc::clone(&receiver);
            let sender = sender.clone();
            std::thread::Builder::new()
                .name(format!("mrs-worker-{i}"))
                .spawn(move || worker_loop(&service, &receiver, &sender))
                .expect("spawning a worker thread")
        })
        .collect();

    let accept_service = Arc::clone(&service);
    let accept_thread = std::thread::Builder::new()
        .name("mrs-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_service, sender))
        .expect("spawning the accept thread");

    Ok(ServerHandle { addr, service, accept_thread: Some(accept_thread), workers })
}

fn accept_loop(listener: &TcpListener, service: &Service, sender: Sender<Conn>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if service.is_shutting_down() {
                    // The poke connection (or a raced client) lands here.
                    break;
                }
                let Ok(conn) = Conn::fresh(stream) else { continue };
                if sender.send(conn).is_err() {
                    break;
                }
            }
            Err(_) if service.is_shutting_down() => break,
            Err(_) => continue, // transient accept errors (EMFILE, resets)
        }
    }
}

fn worker_loop(service: &Service, receiver: &Arc<Mutex<Receiver<Conn>>>, sender: &Sender<Conn>) {
    loop {
        // Workers hold a sender clone (to park idle connections), so the
        // channel can never disconnect; shutdown is observed by polling the
        // flag between receives.
        let next = receiver.lock().expect("connection queue poisoned").recv_timeout(IDLE_POLL);
        if service.is_shutting_down() {
            break;
        }
        match next {
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
            Ok(conn) => {
                if let Some(parked) = handle_connection(service, conn) {
                    let _ = sender.send(parked);
                }
            }
        }
    }
}

/// Serves a connection's requests back to back.  Returns `Some(conn)` when
/// an idle poll expired and the connection should be parked back into the
/// queue (its idle budget not yet exhausted); `None` when it was closed.
fn handle_connection(service: &Service, mut conn: Conn) -> Option<Conn> {
    loop {
        match read_request(&mut conn.reader, &mut conn.writer) {
            // An idle poll expired before any byte of a request arrived
            // (mid-request stalls fail with a different error kind inside
            // `read_request`): park the connection instead of pinning this
            // worker on it.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                conn.idle += IDLE_POLL;
                if service.is_shutting_down() || conn.idle >= KEEP_ALIVE_TIMEOUT {
                    break;
                }
                return Some(conn);
            }
            Err(_) => break, // reset, desync, or mid-request stall: drop
            Ok(ReadOutcome::Closed) => break,
            Ok(ReadOutcome::Bad(e)) => {
                let response = Response::json(
                    e.status,
                    format!("{{\"error\":{:?}}}", e.message), // message is a literal: safe to quote
                );
                let _ = write_response(&mut conn.writer, &response, false);
                break;
            }
            Ok(ReadOutcome::Request(request)) => {
                conn.idle = Duration::ZERO;
                let response = service.handle(&request);
                let keep_alive = !request.wants_close() && !service.is_shutting_down();
                if write_response(&mut conn.writer, &response, keep_alive).is_err() || !keep_alive {
                    break;
                }
            }
        }
    }
    let _ = conn.writer.flush();
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn start() -> ServerHandle {
        serve(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            seed: Some(7),
            ..ServerConfig::default()
        })
        .expect("bind an ephemeral port")
    }

    #[test]
    fn round_trips_requests_over_tcp() {
        let server = start();
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, body) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""), "{body}");
        // Keep-alive: the same connection serves a second request.
        let (status, body) = client.get("/solvers").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("exact-disk-2d"), "{body}");
        let (status, _) = client.get("/no-such-route").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn idle_connections_do_not_starve_new_clients() {
        // Open as many idle connections as there are workers; a fresh
        // client must still be served promptly because idle connections are
        // parked back into the queue instead of pinning workers.
        let server = start(); // 2 workers
        let _idle_a = std::net::TcpStream::connect(server.addr()).unwrap();
        let _idle_b = std::net::TcpStream::connect(server.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(300)); // workers pick them up
        let started = std::time::Instant::now();
        let mut client = Client::connect(server.addr()).unwrap();
        let (status, _) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "a new client waited {:?} behind idle connections",
            started.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_endpoint_stops_the_server() {
        let server = start();
        let addr = server.addr();
        let mut client = Client::connect(addr).unwrap();
        let (status, _) = client.post("/shutdown", "").unwrap();
        assert_eq!(status, 200);
        // join() returns because the accept loop observed the flag.
        server.join();
        assert!(
            Client::connect(addr).is_err() || {
                // The OS may accept into the backlog of the closed listener
                // briefly; a request must at least fail.
                let mut c = Client::connect(addr).unwrap();
                c.get("/healthz").is_err()
            },
            "a shut-down server must not answer"
        );
    }
}
