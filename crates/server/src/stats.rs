//! Per-endpoint request counters and latency tracking for `/stats` and
//! `/metrics`.
//!
//! Everything on the record path is lock-free: counters are atomics and
//! latencies feed one [`Histogram`] per endpoint (log-linear atomic
//! buckets, ~1% relative error, cumulative since startup — so p99/p999 are
//! real tail quantiles, not a sliding-window artifact).  Histograms are
//! summarized on demand into the same [`LatencySummary`] the `maxrs batch`
//! CLI prints — one stats vocabulary across the whole workspace — and
//! walked bucket-wise by the `/metrics` Prometheus renderer.  Per-solver
//! and per-dataset latency series live in [`LabeledHistograms`] maps that
//! take a read lock only to find (or, once per label, insert) the `Arc`'d
//! histogram.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use mrs_core::engine::{Histogram, LatencySummary};

/// The endpoints the service tracks individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET /solvers`.
    Solvers,
    /// `GET /datasets` and `POST /datasets/{name}`.
    Datasets,
    /// `POST /datasets/{name}/insert` and `POST /datasets/{name}/delete`.
    Mutate,
    /// `POST /query`.
    Query,
    /// `POST /batch`.
    Batch,
    /// `GET /stats`.
    Stats,
    /// Everything else (404s, bad requests, `/shutdown`).
    Other,
}

/// All tracked endpoints, in `/stats` rendering order.
pub const ENDPOINTS: [Endpoint; 8] = [
    Endpoint::Healthz,
    Endpoint::Solvers,
    Endpoint::Datasets,
    Endpoint::Mutate,
    Endpoint::Query,
    Endpoint::Batch,
    Endpoint::Stats,
    Endpoint::Other,
];

impl Endpoint {
    /// The label used in `/stats`.
    pub fn name(&self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Solvers => "solvers",
            Endpoint::Datasets => "datasets",
            Endpoint::Mutate => "mutate",
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Stats => "stats",
            Endpoint::Other => "other",
        }
    }

    /// Classifies a request target path.
    pub fn of(target: &str) -> Endpoint {
        let path = target.split('?').next().unwrap_or(target);
        match path {
            "/healthz" => Endpoint::Healthz,
            "/solvers" => Endpoint::Solvers,
            "/query" => Endpoint::Query,
            "/batch" => Endpoint::Batch,
            "/stats" => Endpoint::Stats,
            // A mutation is /datasets/{name}/insert|delete with a non-empty
            // name; a dataset literally *named* "insert" uploads via
            // /datasets/insert (one segment) and stays under Datasets.
            p if p
                .strip_prefix("/datasets/")
                .and_then(|rest| rest.split_once('/'))
                .is_some_and(|(name, action)| {
                    !name.is_empty() && matches!(action, "insert" | "delete")
                }) =>
            {
                Endpoint::Mutate
            }
            p if p == "/datasets" || p.starts_with("/datasets/") => Endpoint::Datasets,
            _ => Endpoint::Other,
        }
    }

    /// The endpoint's slot in [`ENDPOINTS`] (const: the record hot path
    /// must not scan the table).
    pub const fn index(&self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Solvers => 1,
            Endpoint::Datasets => 2,
            Endpoint::Mutate => 3,
            Endpoint::Query => 4,
            Endpoint::Batch => 5,
            Endpoint::Stats => 6,
            Endpoint::Other => 7,
        }
    }
}

/// Counters and a latency histogram for one endpoint.  The request count is
/// the histogram's sample count — every handled request records exactly one
/// latency.
#[derive(Default)]
struct EndpointTrack {
    errors: AtomicU64,
    latency: Histogram,
}

/// A point-in-time view of one endpoint's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointSnapshot {
    /// The endpoint label.
    pub name: &'static str,
    /// Requests answered (including errors).
    pub requests: u64,
    /// Responses with non-2xx statuses.
    pub errors: u64,
    /// Total handling time across all requests.
    pub total: Duration,
    /// Latency summary over every request since startup (histogram-backed:
    /// count/min/max/mean exact, quantiles within ~1%).
    pub latency: LatencySummary,
}

/// A point-in-time view of the epoll reactor's counters.  All zero when
/// the threaded runtime is serving.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReactorSnapshot {
    /// `epoll_wait` returns that carried at least one readiness event.
    pub wakeups: u64,
    /// Total readiness events delivered across all wakeups.
    pub readiness_events: u64,
    /// Connections accepted and registered with the reactor.
    pub accepted: u64,
    /// Connections closed (clean, error, eviction, or shutdown).
    pub closed: u64,
    /// Highest number of unanswered pipelined requests observed on one
    /// connection.
    pub max_pipeline_depth: u64,
    /// Bytes written as part of multi-response coalesced writes.
    pub coalesced_write_bytes: u64,
    /// Readiness events that carried no work (stale connection tokens,
    /// empty eventfd edges).
    pub spurious_wakeups: u64,
}

/// A family of latency histograms keyed by a runtime label (solver or
/// dataset name).  Recording takes a read lock to find the label's `Arc`'d
/// histogram (insertion, once per label, takes the write lock); the
/// histogram update itself is lock-free.
#[derive(Default)]
pub struct LabeledHistograms {
    map: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl LabeledHistograms {
    /// Records one sample under `label`.
    pub fn record(&self, label: &str, sample: Duration) {
        if let Some(hist) = self.map.read().expect("labeled histograms poisoned").get(label) {
            hist.record(sample);
            return;
        }
        let mut map = self.map.write().expect("labeled histograms poisoned");
        map.entry(label.to_string()).or_default().record(sample);
    }

    /// The labels and their histograms, sorted by label.
    pub fn snapshot(&self) -> Vec<(String, Arc<Histogram>)> {
        let map = self.map.read().expect("labeled histograms poisoned");
        let mut entries: Vec<(String, Arc<Histogram>)> =
            map.iter().map(|(label, hist)| (label.clone(), Arc::clone(hist))).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }
}

/// Server-wide statistics: uptime plus one track per endpoint, plus the
/// engine's wall-clock-free work counters aggregated over every executed
/// batch (cache hits execute nothing and so add nothing).
pub struct ServerStats {
    started: Instant,
    tracks: [EndpointTrack; ENDPOINTS.len()],
    solver_latency: LabeledHistograms,
    dataset_latency: LabeledHistograms,
    auto_choices: Mutex<BTreeMap<&'static str, u64>>,
    candidates_examined: AtomicU64,
    grid_cells_visited: AtomicU64,
    sieve_rejected: AtomicU64,
    auto_picks: AtomicU64,
    auto_predicted_work: AtomicU64,
    auto_actual_work: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    degraded: AtomicU64,
    inflight: AtomicU64,
    reactor_wakeups: AtomicU64,
    reactor_readiness_events: AtomicU64,
    reactor_accepted: AtomicU64,
    reactor_closed: AtomicU64,
    reactor_max_pipeline_depth: AtomicU64,
    reactor_coalesced_bytes: AtomicU64,
    reactor_spurious_wakeups: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh statistics; uptime starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            tracks: Default::default(),
            solver_latency: LabeledHistograms::default(),
            dataset_latency: LabeledHistograms::default(),
            auto_choices: Mutex::new(BTreeMap::new()),
            candidates_examined: AtomicU64::new(0),
            grid_cells_visited: AtomicU64::new(0),
            sieve_rejected: AtomicU64::new(0),
            auto_picks: AtomicU64::new(0),
            auto_predicted_work: AtomicU64::new(0),
            auto_actual_work: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            reactor_wakeups: AtomicU64::new(0),
            reactor_readiness_events: AtomicU64::new(0),
            reactor_accepted: AtomicU64::new(0),
            reactor_closed: AtomicU64::new(0),
            reactor_max_pipeline_depth: AtomicU64::new(0),
            reactor_coalesced_bytes: AtomicU64::new(0),
            reactor_spurious_wakeups: AtomicU64::new(0),
        }
    }

    /// Counts one `epoll_wait` return that carried `events` readiness
    /// events (timeout ticks with no events are not wakeups).
    pub fn record_reactor_wakeup(&self, events: u64) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        self.reactor_readiness_events.fetch_add(events, Ordering::Relaxed);
    }

    /// Counts one connection accepted and registered by the reactor.
    pub fn record_reactor_accept(&self) {
        self.reactor_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one reactor connection closed (any reason: clean, error,
    /// eviction, shutdown).
    pub fn record_reactor_close(&self) {
        self.reactor_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the high-water mark of unanswered pipelined requests
    /// observed on a single connection.
    pub fn record_reactor_depth(&self, depth: u64) {
        self.reactor_max_pipeline_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Adds the size of one multi-response batch written as a single
    /// coalesced write (single-response batches do not count).
    pub fn record_reactor_coalesced(&self, bytes: u64) {
        self.reactor_coalesced_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one spurious readiness: an event for an already-closed
    /// connection, or an eventfd edge with nothing posted.
    pub fn record_reactor_spurious(&self) {
        self.reactor_spurious_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the reactor counters (all zero under the
    /// threaded runtime).
    pub fn reactor(&self) -> ReactorSnapshot {
        ReactorSnapshot {
            wakeups: self.reactor_wakeups.load(Ordering::Relaxed),
            readiness_events: self.reactor_readiness_events.load(Ordering::Relaxed),
            accepted: self.reactor_accepted.load(Ordering::Relaxed),
            closed: self.reactor_closed.load(Ordering::Relaxed),
            max_pipeline_depth: self.reactor_max_pipeline_depth.load(Ordering::Relaxed),
            coalesced_write_bytes: self.reactor_coalesced_bytes.load(Ordering::Relaxed),
            spurious_wakeups: self.reactor_spurious_wakeups.load(Ordering::Relaxed),
        }
    }

    /// Counts one connection or request shed by admission control (bounded
    /// queue full or an in-flight limit reached).
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections/requests shed by admission control since startup.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Counts one query that exceeded its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries that exceeded their deadline since startup.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Counts one handler panic caught and converted to a 500.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics caught since startup (the workers survive every one).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Counts one query answered in overload-degradation mode.
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries answered in overload-degradation mode since startup.
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Registers one request entering the in-flight window (gauge up).
    pub fn inflight_enter(&self) {
        self.inflight.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers one request leaving the in-flight window (gauge down).
    pub fn inflight_exit(&self) {
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently in flight (between admission and response).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Adds one executed batch's index-work counters (see
    /// `BatchStats::candidates_examined` / `grid_cells_visited` /
    /// `sieve_rejected`).
    pub fn record_work(
        &self,
        candidates_examined: usize,
        grid_cells_visited: usize,
        sieve_rejected: usize,
    ) {
        self.candidates_examined.fetch_add(candidates_examined as u64, Ordering::Relaxed);
        self.grid_cells_visited.fetch_add(grid_cells_visited as u64, Ordering::Relaxed);
        self.sieve_rejected.fetch_add(sieve_rejected as u64, Ordering::Relaxed);
    }

    /// Total candidates examined through spatial-index queries since startup.
    pub fn candidates_examined(&self) -> u64 {
        self.candidates_examined.load(Ordering::Relaxed)
    }

    /// Total spatial-index grid cells visited since startup.
    pub fn grid_cells_visited(&self) -> u64 {
        self.grid_cells_visited.load(Ordering::Relaxed)
    }

    /// Total candidates the widened f32 sieve rejected before the exact f64
    /// verify since startup (zero when the engine runs a pure-f64 kernel
    /// mode).
    pub fn sieve_rejected(&self) -> u64 {
        self.sieve_rejected.load(Ordering::Relaxed)
    }

    /// Adds one executed batch's `auto`-routing counters (see
    /// `BatchStats::auto_picks` and friends).  Work sums are rounded to
    /// whole units; the accuracy signal they carry is far coarser.
    pub fn record_auto(&self, picks: usize, predicted_work: f64, actual_work: f64) {
        if picks == 0 {
            return;
        }
        self.auto_picks.fetch_add(picks as u64, Ordering::Relaxed);
        self.auto_predicted_work.fetch_add(predicted_work.round() as u64, Ordering::Relaxed);
        self.auto_actual_work.fetch_add(actual_work.round() as u64, Ordering::Relaxed);
    }

    /// Queries the `auto` meta-solver routed since startup.
    pub fn auto_picks(&self) -> u64 {
        self.auto_picks.load(Ordering::Relaxed)
    }

    /// Total work the `auto` cost model predicted for its picks.
    pub fn auto_predicted_work(&self) -> u64 {
        self.auto_predicted_work.load(Ordering::Relaxed)
    }

    /// Total work the `auto` picks actually performed (the deterministic
    /// counter measure of `mrs_core::engine::cost::actual_work`).
    pub fn auto_actual_work(&self) -> u64 {
        self.auto_actual_work.load(Ordering::Relaxed)
    }

    /// Time since the server started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records one handled request (lock-free).
    pub fn record(&self, endpoint: Endpoint, elapsed: Duration, ok: bool) {
        let track = &self.tracks[endpoint.index()];
        if !ok {
            track.errors.fetch_add(1, Ordering::Relaxed);
        }
        track.latency.record(elapsed);
    }

    /// Records one executed query's solver wall time under the solver's
    /// registry name (the `auto` meta-solver records under `auto`; its
    /// routing decision goes to [`Self::record_auto_choice`]).
    pub fn record_solver(&self, solver: &str, elapsed: Duration) {
        self.solver_latency.record(solver, elapsed);
    }

    /// Records one executed (non-cache-hit) query's end-to-end time under
    /// the dataset it ran against.
    pub fn record_dataset_query(&self, dataset: &str, elapsed: Duration) {
        self.dataset_latency.record(dataset, elapsed);
    }

    /// Counts one `auto` routing decision toward `choice`.
    pub fn record_auto_choice(&self, choice: &'static str) {
        *self
            .auto_choices
            .lock()
            .expect("auto-choice counters poisoned")
            .entry(choice)
            .or_insert(0) += 1;
    }

    /// Per-solver latency histograms, sorted by solver name.
    pub fn solver_histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.solver_latency.snapshot()
    }

    /// Per-dataset query-latency histograms, sorted by dataset name.
    pub fn dataset_histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.dataset_latency.snapshot()
    }

    /// `auto` routing decisions per chosen solver, sorted by choice.
    pub fn auto_choice_counts(&self) -> Vec<(&'static str, u64)> {
        self.auto_choices
            .lock()
            .expect("auto-choice counters poisoned")
            .iter()
            .map(|(&choice, &n)| (choice, n))
            .collect()
    }

    /// The latency histogram of one endpoint (for the `/metrics` renderer).
    pub fn endpoint_histogram(&self, endpoint: Endpoint) -> &Histogram {
        &self.tracks[endpoint.index()].latency
    }

    /// Point-in-time snapshots for every endpoint, in [`ENDPOINTS`] order.
    pub fn snapshots(&self) -> Vec<EndpointSnapshot> {
        ENDPOINTS
            .iter()
            .map(|endpoint| {
                let track = &self.tracks[endpoint.index()];
                EndpointSnapshot {
                    name: endpoint.name(),
                    requests: track.latency.count(),
                    errors: track.errors.load(Ordering::Relaxed),
                    total: track.latency.sum(),
                    latency: track.latency.summary(),
                }
            })
            .collect()
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.tracks.iter().map(|t| t.latency.count()).sum()
    }

    /// Requests per second of uptime, across all endpoints.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.uptime().as_secs_f64();
        if secs > 0.0 {
            self.total_requests() as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_targets() {
        assert_eq!(Endpoint::of("/healthz"), Endpoint::Healthz);
        assert_eq!(Endpoint::of("/datasets"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/datasets/taxi"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/datasets/taxi/insert"), Endpoint::Mutate);
        assert_eq!(Endpoint::of("/datasets/taxi/delete"), Endpoint::Mutate);
        // A dataset literally named "insert" is an upload, not a mutation.
        assert_eq!(Endpoint::of("/datasets/insert"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/datasets/taxi/frob"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/query?x=1"), Endpoint::Query);
        assert_eq!(Endpoint::of("/batch"), Endpoint::Batch);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
    }

    #[test]
    fn records_and_snapshots() {
        let stats = ServerStats::new();
        stats.record(Endpoint::Query, Duration::from_micros(100), true);
        stats.record(Endpoint::Query, Duration::from_micros(300), true);
        stats.record(Endpoint::Query, Duration::from_micros(200), false);
        let snapshot = stats
            .snapshots()
            .into_iter()
            .find(|s| s.name == "query")
            .expect("query endpoint is tracked");
        assert_eq!(snapshot.requests, 3);
        assert_eq!(snapshot.errors, 1);
        assert_eq!(snapshot.total, Duration::from_micros(600));
        assert_eq!(snapshot.latency.count, 3);
        // Histogram-backed quantiles are bucket midpoints, within ~1%.
        let p50 = snapshot.latency.p50.as_nanos() as f64;
        assert!((p50 - 200_000.0).abs() / 200_000.0 < 0.01, "p50 {p50} ≉ 200 µs");
        assert_eq!(snapshot.latency.min, Duration::from_micros(100));
        assert_eq!(snapshot.latency.max, Duration::from_micros(300));
        assert_eq!(stats.total_requests(), 3);
        assert!(stats.requests_per_sec() > 0.0);
    }

    #[test]
    fn latency_histograms_keep_every_sample() {
        // The old per-endpoint ring dropped everything past 512 samples;
        // the histogram is cumulative since startup and loses none.
        let stats = ServerStats::new();
        for i in 0..10_000u64 {
            stats.record(Endpoint::Healthz, Duration::from_micros(i + 1), true);
        }
        let snapshot = &stats.snapshots()[Endpoint::Healthz.index()];
        assert_eq!(snapshot.requests, 10_000);
        assert_eq!(snapshot.latency.count, 10_000);
        assert_eq!(snapshot.latency.min, Duration::from_micros(1));
        assert_eq!(snapshot.latency.max, Duration::from_micros(10_000));
        let p99 = snapshot.latency.p99.as_nanos() as f64;
        assert!((p99 - 9_900_000.0).abs() / 9_900_000.0 < 0.01, "p99 {p99} ≉ 9.9 ms");
    }

    #[test]
    fn labeled_histograms_track_solvers_datasets_and_auto_choices() {
        let stats = ServerStats::new();
        stats.record_solver("exact-disk-2d", Duration::from_micros(40));
        stats.record_solver("auto", Duration::from_micros(10));
        stats.record_solver("exact-disk-2d", Duration::from_micros(60));
        stats.record_dataset_query("taxi", Duration::from_micros(120));
        stats.record_auto_choice("exact-disk-2d");
        stats.record_auto_choice("exact-disk-2d");
        stats.record_auto_choice("batched-interval-1d");

        let solvers = stats.solver_histograms();
        assert_eq!(
            solvers.iter().map(|(name, _)| name.as_str()).collect::<Vec<_>>(),
            vec!["auto", "exact-disk-2d"],
        );
        assert_eq!(solvers[1].1.count(), 2);
        assert_eq!(stats.dataset_histograms()[0].0, "taxi");
        assert_eq!(
            stats.auto_choice_counts(),
            vec![("batched-interval-1d", 1), ("exact-disk-2d", 2)],
        );
    }

    #[test]
    fn endpoint_index_is_the_endpoints_position() {
        for (i, endpoint) in ENDPOINTS.iter().enumerate() {
            assert_eq!(endpoint.index(), i);
        }
    }
}
