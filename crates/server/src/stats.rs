//! Per-endpoint request counters and latency tracking for `/stats`.
//!
//! Counters are lock-free atomics; latencies additionally feed a bounded
//! ring of recent samples per endpoint, summarized on demand into the same
//! [`LatencySummary`] the `maxrs batch` CLI prints — one stats vocabulary
//! across the whole workspace.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use mrs_core::engine::LatencySummary;

/// How many recent latency samples each endpoint keeps for percentiles.
const RING_CAPACITY: usize = 512;

/// The endpoints the service tracks individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`.
    Healthz,
    /// `GET /solvers`.
    Solvers,
    /// `GET /datasets` and `POST /datasets/{name}`.
    Datasets,
    /// `POST /datasets/{name}/insert` and `POST /datasets/{name}/delete`.
    Mutate,
    /// `POST /query`.
    Query,
    /// `POST /batch`.
    Batch,
    /// `GET /stats`.
    Stats,
    /// Everything else (404s, bad requests, `/shutdown`).
    Other,
}

/// All tracked endpoints, in `/stats` rendering order.
pub const ENDPOINTS: [Endpoint; 8] = [
    Endpoint::Healthz,
    Endpoint::Solvers,
    Endpoint::Datasets,
    Endpoint::Mutate,
    Endpoint::Query,
    Endpoint::Batch,
    Endpoint::Stats,
    Endpoint::Other,
];

impl Endpoint {
    /// The label used in `/stats`.
    pub fn name(&self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Solvers => "solvers",
            Endpoint::Datasets => "datasets",
            Endpoint::Mutate => "mutate",
            Endpoint::Query => "query",
            Endpoint::Batch => "batch",
            Endpoint::Stats => "stats",
            Endpoint::Other => "other",
        }
    }

    /// Classifies a request target path.
    pub fn of(target: &str) -> Endpoint {
        let path = target.split('?').next().unwrap_or(target);
        match path {
            "/healthz" => Endpoint::Healthz,
            "/solvers" => Endpoint::Solvers,
            "/query" => Endpoint::Query,
            "/batch" => Endpoint::Batch,
            "/stats" => Endpoint::Stats,
            // A mutation is /datasets/{name}/insert|delete with a non-empty
            // name; a dataset literally *named* "insert" uploads via
            // /datasets/insert (one segment) and stays under Datasets.
            p if p
                .strip_prefix("/datasets/")
                .and_then(|rest| rest.split_once('/'))
                .is_some_and(|(name, action)| {
                    !name.is_empty() && matches!(action, "insert" | "delete")
                }) =>
            {
                Endpoint::Mutate
            }
            p if p == "/datasets" || p.starts_with("/datasets/") => Endpoint::Datasets,
            _ => Endpoint::Other,
        }
    }

    fn index(&self) -> usize {
        ENDPOINTS.iter().position(|e| e == self).expect("endpoint is enumerated")
    }
}

/// Counters and a latency ring for one endpoint.
#[derive(Default)]
struct EndpointTrack {
    requests: AtomicU64,
    errors: AtomicU64,
    total_us: AtomicU64,
    samples: Mutex<VecDeque<Duration>>,
}

/// A point-in-time view of one endpoint's counters.
#[derive(Clone, Debug, PartialEq)]
pub struct EndpointSnapshot {
    /// The endpoint label.
    pub name: &'static str,
    /// Requests answered (including errors).
    pub requests: u64,
    /// Responses with non-2xx statuses.
    pub errors: u64,
    /// Total handling time across all requests.
    pub total: Duration,
    /// Five-number summary over the recent-latency ring.
    pub latency: LatencySummary,
}

/// Server-wide statistics: uptime plus one track per endpoint, plus the
/// engine's wall-clock-free work counters aggregated over every executed
/// batch (cache hits execute nothing and so add nothing).
pub struct ServerStats {
    started: Instant,
    tracks: [EndpointTrack; ENDPOINTS.len()],
    candidates_examined: AtomicU64,
    grid_cells_visited: AtomicU64,
    sieve_rejected: AtomicU64,
    auto_picks: AtomicU64,
    auto_predicted_work: AtomicU64,
    auto_actual_work: AtomicU64,
}

impl Default for ServerStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerStats {
    /// Fresh statistics; uptime starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            tracks: Default::default(),
            candidates_examined: AtomicU64::new(0),
            grid_cells_visited: AtomicU64::new(0),
            sieve_rejected: AtomicU64::new(0),
            auto_picks: AtomicU64::new(0),
            auto_predicted_work: AtomicU64::new(0),
            auto_actual_work: AtomicU64::new(0),
        }
    }

    /// Adds one executed batch's index-work counters (see
    /// `BatchStats::candidates_examined` / `grid_cells_visited` /
    /// `sieve_rejected`).
    pub fn record_work(
        &self,
        candidates_examined: usize,
        grid_cells_visited: usize,
        sieve_rejected: usize,
    ) {
        self.candidates_examined.fetch_add(candidates_examined as u64, Ordering::Relaxed);
        self.grid_cells_visited.fetch_add(grid_cells_visited as u64, Ordering::Relaxed);
        self.sieve_rejected.fetch_add(sieve_rejected as u64, Ordering::Relaxed);
    }

    /// Total candidates examined through spatial-index queries since startup.
    pub fn candidates_examined(&self) -> u64 {
        self.candidates_examined.load(Ordering::Relaxed)
    }

    /// Total spatial-index grid cells visited since startup.
    pub fn grid_cells_visited(&self) -> u64 {
        self.grid_cells_visited.load(Ordering::Relaxed)
    }

    /// Total candidates the widened f32 sieve rejected before the exact f64
    /// verify since startup (zero when the engine runs a pure-f64 kernel
    /// mode).
    pub fn sieve_rejected(&self) -> u64 {
        self.sieve_rejected.load(Ordering::Relaxed)
    }

    /// Adds one executed batch's `auto`-routing counters (see
    /// `BatchStats::auto_picks` and friends).  Work sums are rounded to
    /// whole units; the accuracy signal they carry is far coarser.
    pub fn record_auto(&self, picks: usize, predicted_work: f64, actual_work: f64) {
        if picks == 0 {
            return;
        }
        self.auto_picks.fetch_add(picks as u64, Ordering::Relaxed);
        self.auto_predicted_work.fetch_add(predicted_work.round() as u64, Ordering::Relaxed);
        self.auto_actual_work.fetch_add(actual_work.round() as u64, Ordering::Relaxed);
    }

    /// Queries the `auto` meta-solver routed since startup.
    pub fn auto_picks(&self) -> u64 {
        self.auto_picks.load(Ordering::Relaxed)
    }

    /// Total work the `auto` cost model predicted for its picks.
    pub fn auto_predicted_work(&self) -> u64 {
        self.auto_predicted_work.load(Ordering::Relaxed)
    }

    /// Total work the `auto` picks actually performed (the deterministic
    /// counter measure of `mrs_core::engine::cost::actual_work`).
    pub fn auto_actual_work(&self) -> u64 {
        self.auto_actual_work.load(Ordering::Relaxed)
    }

    /// Time since the server started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Records one handled request.
    pub fn record(&self, endpoint: Endpoint, elapsed: Duration, ok: bool) {
        let track = &self.tracks[endpoint.index()];
        track.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            track.errors.fetch_add(1, Ordering::Relaxed);
        }
        track.total_us.fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        let mut samples = track.samples.lock().expect("stats ring poisoned");
        if samples.len() >= RING_CAPACITY {
            samples.pop_front();
        }
        samples.push_back(elapsed);
    }

    /// Point-in-time snapshots for every endpoint, in [`ENDPOINTS`] order.
    pub fn snapshots(&self) -> Vec<EndpointSnapshot> {
        ENDPOINTS
            .iter()
            .map(|endpoint| {
                let track = &self.tracks[endpoint.index()];
                let samples: Vec<Duration> = {
                    let ring = track.samples.lock().expect("stats ring poisoned");
                    ring.iter().copied().collect()
                };
                EndpointSnapshot {
                    name: endpoint.name(),
                    requests: track.requests.load(Ordering::Relaxed),
                    errors: track.errors.load(Ordering::Relaxed),
                    total: Duration::from_micros(track.total_us.load(Ordering::Relaxed)),
                    latency: LatencySummary::from_durations(&samples),
                }
            })
            .collect()
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.tracks.iter().map(|t| t.requests.load(Ordering::Relaxed)).sum()
    }

    /// Requests per second of uptime, across all endpoints.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.uptime().as_secs_f64();
        if secs > 0.0 {
            self.total_requests() as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_targets() {
        assert_eq!(Endpoint::of("/healthz"), Endpoint::Healthz);
        assert_eq!(Endpoint::of("/datasets"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/datasets/taxi"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/datasets/taxi/insert"), Endpoint::Mutate);
        assert_eq!(Endpoint::of("/datasets/taxi/delete"), Endpoint::Mutate);
        // A dataset literally named "insert" is an upload, not a mutation.
        assert_eq!(Endpoint::of("/datasets/insert"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/datasets/taxi/frob"), Endpoint::Datasets);
        assert_eq!(Endpoint::of("/query?x=1"), Endpoint::Query);
        assert_eq!(Endpoint::of("/batch"), Endpoint::Batch);
        assert_eq!(Endpoint::of("/nope"), Endpoint::Other);
    }

    #[test]
    fn records_and_snapshots() {
        let stats = ServerStats::new();
        stats.record(Endpoint::Query, Duration::from_micros(100), true);
        stats.record(Endpoint::Query, Duration::from_micros(300), true);
        stats.record(Endpoint::Query, Duration::from_micros(200), false);
        let snapshot = stats
            .snapshots()
            .into_iter()
            .find(|s| s.name == "query")
            .expect("query endpoint is tracked");
        assert_eq!(snapshot.requests, 3);
        assert_eq!(snapshot.errors, 1);
        assert_eq!(snapshot.total, Duration::from_micros(600));
        assert_eq!(snapshot.latency.count, 3);
        assert_eq!(snapshot.latency.p50, Duration::from_micros(200));
        assert_eq!(stats.total_requests(), 3);
        assert!(stats.requests_per_sec() > 0.0);
    }

    #[test]
    fn latency_ring_is_bounded() {
        let stats = ServerStats::new();
        for i in 0..(RING_CAPACITY + 100) {
            stats.record(Endpoint::Healthz, Duration::from_micros(i as u64), true);
        }
        let snapshot = &stats.snapshots()[0];
        assert_eq!(snapshot.requests as usize, RING_CAPACITY + 100);
        assert_eq!(snapshot.latency.count, RING_CAPACITY);
        // The ring kept the most recent samples, so the minimum moved up.
        assert_eq!(snapshot.latency.min, Duration::from_micros(100));
    }
}
