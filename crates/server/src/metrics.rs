//! Prometheus text-exposition rendering for `GET /metrics`.
//!
//! The server is std-only, so this is a hand-rolled renderer for the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! `# HELP` / `# TYPE` headers, one sample per line, labels escaped, and —
//! for histograms — cumulative `_bucket{le="..."}` series that end in
//! `le="+Inf"` with `_count` and `_sum` companions.  All durations are
//! exported in **seconds** (the Prometheus convention); internally the
//! [`Histogram`]s count nanoseconds and the
//! bucket walk ([`Histogram::cumulative_le`]) maps the fine log-linear
//! buckets onto the coarse `le` ladder below without double counting, so
//! every rendered bucket series is monotone by construction and the
//! `+Inf` bucket always equals `_count`.
//!
//! Per-endpoint series always render **all** endpoints (a scrape before the
//! first `/query` still shows `maxrs_requests_total{endpoint="query"} 0`),
//! so dashboards never see label sets appear mid-flight.  Per-solver and
//! per-dataset series appear once the label has been observed.

use std::fmt::Write as _;
use std::time::Duration;

use mrs_core::engine::Histogram;

use crate::cache::CacheCounters;
use crate::catalog::Catalog;
use crate::stats::{ServerStats, ENDPOINTS};

/// The `le` upper bounds (in nanoseconds) every exported duration histogram
/// uses: a {1, 2.5, 5} ladder per decade from 10 µs to 10 s.  Wide enough
/// that p999 of a slow solve still lands in a finite bucket, coarse enough
/// that one scrape stays small.
pub const LE_BOUNDS_NS: [u64; 19] = [
    10_000, // 10 µs
    25_000,
    50_000,
    100_000, // 100 µs
    250_000,
    500_000,
    1_000_000, // 1 ms
    2_500_000,
    5_000_000,
    10_000_000, // 10 ms
    25_000_000,
    50_000_000,
    100_000_000, // 100 ms
    250_000_000,
    500_000_000,
    1_000_000_000, // 1 s
    2_500_000_000,
    5_000_000_000,
    10_000_000_000, // 10 s
];

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

fn fmt_secs(d: Duration) -> String {
    format!("{:.9}", d.as_secs_f64())
}

/// Escapes a label value per the exposition format (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Renders one histogram as a cumulative `_bucket`/`_sum`/`_count` series
/// under `name{labels}` (pass `labels` as `key="value"` pairs, or empty).
fn histogram_series(out: &mut String, name: &str, labels: &str, hist: &Histogram) {
    let cumulative = hist.cumulative_le(&LE_BOUNDS_NS);
    let sep = if labels.is_empty() { "" } else { "," };
    for (bound, le_count) in LE_BOUNDS_NS.iter().zip(&cumulative) {
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {le_count}",
            trim_float(secs(*bound))
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", hist.count());
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", fmt_secs(hist.sum()));
        let _ = writeln!(out, "{name}_count {}", hist.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", fmt_secs(hist.sum()));
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", hist.count());
    }
}

/// Renders a float bound without a trailing `.0` noise tail (`0.01`, `2.5`,
/// `10`) — stable text for the exposition parser and for humans.
fn trim_float(v: f64) -> String {
    let mut s = format!("{v:.9}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Renders the whole `/metrics` page.
pub fn render_metrics(stats: &ServerStats, catalog: &Catalog, cache: &CacheCounters) -> String {
    let mut out = String::with_capacity(16 * 1024);

    header(&mut out, "maxrs_uptime_seconds", "gauge", "Seconds since the server started.");
    let _ = writeln!(out, "maxrs_uptime_seconds {}", fmt_secs(stats.uptime()));

    // -- per-endpoint request counters and latency ------------------------
    header(
        &mut out,
        "maxrs_requests_total",
        "counter",
        "Requests handled, by endpoint (includes errors).",
    );
    for endpoint in ENDPOINTS {
        let _ = writeln!(
            out,
            "maxrs_requests_total{{endpoint=\"{}\"}} {}",
            endpoint.name(),
            stats.endpoint_histogram(endpoint).count()
        );
    }
    header(&mut out, "maxrs_request_errors_total", "counter", "Non-2xx responses, by endpoint.");
    for snapshot in stats.snapshots() {
        let _ = writeln!(
            out,
            "maxrs_request_errors_total{{endpoint=\"{}\"}} {}",
            snapshot.name, snapshot.errors
        );
    }
    header(
        &mut out,
        "maxrs_request_duration_seconds",
        "histogram",
        "End-to-end request handling time, by endpoint.",
    );
    for endpoint in ENDPOINTS {
        let labels = format!("endpoint=\"{}\"", endpoint.name());
        histogram_series(
            &mut out,
            "maxrs_request_duration_seconds",
            &labels,
            stats.endpoint_histogram(endpoint),
        );
    }

    // -- per-solver and per-dataset latency -------------------------------
    header(
        &mut out,
        "maxrs_solver_duration_seconds",
        "histogram",
        "Per-query solve time, by solver registry name.",
    );
    for (solver, hist) in stats.solver_histograms() {
        let labels = format!("solver=\"{}\"", escape_label(&solver));
        histogram_series(&mut out, "maxrs_solver_duration_seconds", &labels, &hist);
    }
    header(
        &mut out,
        "maxrs_dataset_query_duration_seconds",
        "histogram",
        "Per-query end-to-end time for executed (non-cache-hit) queries, by dataset.",
    );
    for (dataset, hist) in stats.dataset_histograms() {
        let labels = format!("dataset=\"{}\"", escape_label(&dataset));
        histogram_series(&mut out, "maxrs_dataset_query_duration_seconds", &labels, &hist);
    }

    // -- answer cache ------------------------------------------------------
    header(&mut out, "maxrs_cache_hits_total", "counter", "Answer-cache lookups that hit.");
    let _ = writeln!(out, "maxrs_cache_hits_total {}", cache.hits);
    header(&mut out, "maxrs_cache_misses_total", "counter", "Answer-cache lookups that missed.");
    let _ = writeln!(out, "maxrs_cache_misses_total {}", cache.misses);
    header(
        &mut out,
        "maxrs_cache_evictions_total",
        "counter",
        "Answer-cache entries evicted to make room.",
    );
    let _ = writeln!(out, "maxrs_cache_evictions_total {}", cache.evictions);
    header(
        &mut out,
        "maxrs_cache_invalidations_total",
        "counter",
        "Answer-cache entries purged by dataset version invalidation.",
    );
    let _ = writeln!(out, "maxrs_cache_invalidations_total {}", cache.invalidations);
    header(&mut out, "maxrs_cache_entries", "gauge", "Live answer-cache entries.");
    let _ = writeln!(out, "maxrs_cache_entries {}", cache.entries);
    header(&mut out, "maxrs_cache_capacity", "gauge", "Answer-cache capacity (entries).");
    let _ = writeln!(out, "maxrs_cache_capacity {}", cache.capacity);

    // -- auto-routing ------------------------------------------------------
    header(
        &mut out,
        "maxrs_auto_picks_total",
        "counter",
        "Queries routed by the auto meta-solver, by chosen solver.",
    );
    for (choice, n) in stats.auto_choice_counts() {
        let _ = writeln!(out, "maxrs_auto_picks_total{{choice=\"{}\"}} {n}", escape_label(choice));
    }
    header(
        &mut out,
        "maxrs_auto_predicted_work_total",
        "counter",
        "Work units the auto cost model predicted for its picks.",
    );
    let _ = writeln!(out, "maxrs_auto_predicted_work_total {}", stats.auto_predicted_work());
    header(
        &mut out,
        "maxrs_auto_actual_work_total",
        "counter",
        "Work units the auto picks actually performed.",
    );
    let _ = writeln!(out, "maxrs_auto_actual_work_total {}", stats.auto_actual_work());

    // -- overload & failure handling --------------------------------------
    header(
        &mut out,
        "maxrs_shed_total",
        "counter",
        "Requests shed by admission control with a 503 + Retry-After.",
    );
    let _ = writeln!(out, "maxrs_shed_total {}", stats.shed());
    header(
        &mut out,
        "maxrs_deadline_exceeded_total",
        "counter",
        "Queries that exceeded their compute deadline (typed 504s).",
    );
    let _ = writeln!(out, "maxrs_deadline_exceeded_total {}", stats.deadline_exceeded());
    header(
        &mut out,
        "maxrs_panics_total",
        "counter",
        "Handler panics caught and converted to well-formed 500s.",
    );
    let _ = writeln!(out, "maxrs_panics_total {}", stats.panics());
    header(
        &mut out,
        "maxrs_degraded_total",
        "counter",
        "Executed requests solved in overload degradation mode.",
    );
    let _ = writeln!(out, "maxrs_degraded_total {}", stats.degraded());
    header(
        &mut out,
        "maxrs_inflight",
        "gauge",
        "Compute requests (query/batch) currently being handled.",
    );
    let _ = writeln!(out, "maxrs_inflight {}", stats.inflight());

    // -- reactor counters (all zero under the threaded runtime) -----------
    let reactor = stats.reactor();
    header(
        &mut out,
        "maxrs_reactor_wakeups_total",
        "counter",
        "epoll_wait returns that carried at least one readiness event.",
    );
    let _ = writeln!(out, "maxrs_reactor_wakeups_total {}", reactor.wakeups);
    header(
        &mut out,
        "maxrs_reactor_readiness_events_total",
        "counter",
        "Readiness events delivered across all reactor wakeups.",
    );
    let _ = writeln!(out, "maxrs_reactor_readiness_events_total {}", reactor.readiness_events);
    header(
        &mut out,
        "maxrs_reactor_connections_accepted_total",
        "counter",
        "Connections accepted and registered by the reactor.",
    );
    let _ = writeln!(out, "maxrs_reactor_connections_accepted_total {}", reactor.accepted);
    header(
        &mut out,
        "maxrs_reactor_connections_closed_total",
        "counter",
        "Reactor connections closed (clean, error, eviction, or shutdown).",
    );
    let _ = writeln!(out, "maxrs_reactor_connections_closed_total {}", reactor.closed);
    header(
        &mut out,
        "maxrs_reactor_max_pipeline_depth",
        "gauge",
        "Highest unanswered pipelined request count seen on one connection.",
    );
    let _ = writeln!(out, "maxrs_reactor_max_pipeline_depth {}", reactor.max_pipeline_depth);
    header(
        &mut out,
        "maxrs_reactor_coalesced_write_bytes_total",
        "counter",
        "Bytes written as part of multi-response coalesced writes.",
    );
    let _ = writeln!(
        out,
        "maxrs_reactor_coalesced_write_bytes_total {}",
        reactor.coalesced_write_bytes
    );
    header(
        &mut out,
        "maxrs_reactor_spurious_wakeups_total",
        "counter",
        "Readiness events that carried no work (stale tokens, empty eventfd edges).",
    );
    let _ = writeln!(out, "maxrs_reactor_spurious_wakeups_total {}", reactor.spurious_wakeups);

    // -- engine work counters ---------------------------------------------
    header(
        &mut out,
        "maxrs_work_candidates_examined_total",
        "counter",
        "Candidate points examined through spatial-index queries.",
    );
    let _ = writeln!(out, "maxrs_work_candidates_examined_total {}", stats.candidates_examined());
    header(
        &mut out,
        "maxrs_work_grid_cells_visited_total",
        "counter",
        "Spatial-index grid cells visited.",
    );
    let _ = writeln!(out, "maxrs_work_grid_cells_visited_total {}", stats.grid_cells_visited());
    header(
        &mut out,
        "maxrs_work_sieve_rejected_total",
        "counter",
        "Candidates the widened f32 sieve rejected before exact verification.",
    );
    let _ = writeln!(out, "maxrs_work_sieve_rejected_total {}", stats.sieve_rejected());

    // -- per-dataset gauges ------------------------------------------------
    header(&mut out, "maxrs_dataset_points", "gauge", "Live points per resident dataset.");
    let datasets = catalog.datasets();
    for dataset in &datasets {
        let _ = writeln!(
            out,
            "maxrs_dataset_points{{dataset=\"{}\"}} {}",
            escape_label(dataset.name()),
            dataset.point_count()
        );
    }
    header(
        &mut out,
        "maxrs_dataset_version",
        "gauge",
        "Current dataset version (bumps on every mutation).",
    );
    for dataset in &datasets {
        let _ = writeln!(
            out,
            "maxrs_dataset_version{{dataset=\"{}\"}} {}",
            escape_label(dataset.name()),
            dataset.version()
        );
    }
    header(
        &mut out,
        "maxrs_dataset_compactions_total",
        "counter",
        "Delta-overlay compactions per dataset.",
    );
    for dataset in &datasets {
        let _ = writeln!(
            out,
            "maxrs_dataset_compactions_total{{dataset=\"{}\"}} {}",
            escape_label(dataset.name()),
            dataset.compactions()
        );
    }
    header(
        &mut out,
        "maxrs_dataset_compaction_seconds_total",
        "counter",
        "Wall time spent materializing compacted generations, per dataset.",
    );
    for dataset in &datasets {
        let _ = writeln!(
            out,
            "maxrs_dataset_compaction_seconds_total{{dataset=\"{}\"}} {}",
            escape_label(dataset.name()),
            fmt_secs(dataset.compaction_time())
        );
    }
    header(
        &mut out,
        "maxrs_dataset_index_builds_total",
        "counter",
        "Index structures built, per dataset.",
    );
    for dataset in &datasets {
        let _ = writeln!(
            out,
            "maxrs_dataset_index_builds_total{{dataset=\"{}\"}} {}",
            escape_label(dataset.name()),
            dataset.index_builds()
        );
    }
    header(
        &mut out,
        "maxrs_dataset_index_build_seconds_total",
        "counter",
        "Wall time spent building index structures, per dataset.",
    );
    for dataset in &datasets {
        let _ = writeln!(
            out,
            "maxrs_dataset_index_build_seconds_total{{dataset=\"{}\"}} {}",
            escape_label(dataset.name()),
            fmt_secs(dataset.index_build_time())
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Endpoint;

    #[test]
    fn renders_monotone_buckets_with_inf_equal_to_count() {
        let stats = ServerStats::new();
        for us in [50u64, 120, 900, 15_000, 400_000] {
            stats.record(Endpoint::Query, Duration::from_micros(us), true);
        }
        stats.record_solver("exact-disk-2d", Duration::from_micros(80));
        let catalog = Catalog::new();
        let cache = CacheCounters {
            hits: 3,
            misses: 5,
            evictions: 0,
            invalidations: 1,
            entries: 5,
            capacity: 64,
        };
        let text = render_metrics(&stats, &catalog, &cache);

        // Every endpoint label is present even before traffic touches it.
        for endpoint in ENDPOINTS {
            assert!(
                text.contains(&format!("maxrs_requests_total{{endpoint=\"{}\"}}", endpoint.name())),
                "endpoint {} missing",
                endpoint.name()
            );
        }
        assert!(text.contains("maxrs_cache_hits_total 3"));
        assert!(text.contains("maxrs_solver_duration_seconds_bucket{solver=\"exact-disk-2d\","));

        // The query-endpoint bucket series is monotone and ends at count.
        let prefix = "maxrs_request_duration_seconds_bucket{endpoint=\"query\",le=\"";
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines().filter(|l| l.starts_with(prefix)) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last, "bucket series must be monotone: {line}");
            last = value;
            if line.contains("le=\"+Inf\"") {
                inf = Some(value);
            }
        }
        assert_eq!(inf, Some(5), "+Inf bucket equals the sample count");
        assert!(text.contains("maxrs_request_duration_seconds_count{endpoint=\"query\"} 5"));
    }

    #[test]
    fn bounds_render_without_noise() {
        assert_eq!(trim_float(secs(10_000)), "0.00001");
        assert_eq!(trim_float(secs(2_500_000)), "0.0025");
        assert_eq!(trim_float(secs(10_000_000_000)), "10");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
