//! Property and concurrency tests for the sharded LRU answer cache: the
//! cache never exceeds its capacity, and within a shard eviction is
//! strictly oldest-first (least recently used).

use std::sync::Arc;

use mrs_server::cache::{AnswerCache, CacheKey, ShapeKey};
use proptest::prelude::*;

fn key(epoch: u64, id: u64) -> CacheKey {
    CacheKey {
        epoch,
        version: 1 + id % 3,
        colored: id.is_multiple_of(2),
        solver: format!("solver-{}", id % 5),
        shape: ShapeKey::Ball(id),
    }
}

fn value(id: u64) -> Arc<str> {
    Arc::from(format!("answer-{id}").as_str())
}

proptest! {
    #[test]
    fn never_exceeds_capacity_under_random_workloads(
        shards in 1usize..6,
        capacity in 1usize..40,
        ops in proptest::collection::vec((0u64..60, 0usize..3), 1..200),
    ) {
        let cache = AnswerCache::new(shards, capacity);
        for &(id, kind) in &ops {
            match kind {
                0 | 1 => cache.insert(key(1, id), value(id)),
                _ => {
                    let _ = cache.get(&key(1, id));
                }
            }
            prop_assert!(
                cache.len() <= cache.capacity(),
                "{} entries exceed capacity {}",
                cache.len(),
                cache.capacity()
            );
        }
        let counters = cache.counters();
        prop_assert_eq!(counters.entries, cache.len());
        prop_assert!(counters.capacity >= capacity);
    }

    #[test]
    fn single_shard_evicts_oldest_first(
        capacity in 1usize..12,
        inserts in proptest::collection::vec(0u64..1000, 1..60),
    ) {
        // One shard makes the LRU order total.  Model recency as a list
        // where every insert moves its key to the back (a re-insert
        // refreshes recency): eviction must be oldest-first, so exactly the
        // `capacity` most recently inserted distinct keys survive.
        let cache = AnswerCache::new(1, capacity);
        let mut recency: Vec<u64> = Vec::new();
        for &id in &inserts {
            recency.retain(|&seen| seen != id);
            recency.push(id);
            cache.insert(key(1, id), value(id));
        }
        let survivors: Vec<u64> =
            recency.iter().rev().take(capacity).copied().collect();
        for &id in &recency {
            let should_live = survivors.contains(&id);
            prop_assert_eq!(
                cache.get(&key(1, id)).is_some(),
                should_live,
                "key {} has the wrong fate (capacity {})",
                id,
                capacity
            );
        }
    }
}

/// A `get` refreshes recency: repeatedly touched entries survive inserts
/// that evict everything else around them.
#[test]
fn touched_entries_survive_eviction_pressure() {
    let cache = AnswerCache::new(1, 4);
    cache.insert(key(1, 0), value(0));
    for id in 1..100u64 {
        cache.insert(key(1, id), value(id));
        assert!(cache.get(&key(1, 0)).is_some(), "hot key evicted at insert {id}");
    }
    assert_eq!(cache.len(), 4);
    let counters = cache.counters();
    assert_eq!(counters.evictions, 96, "each overflow insert evicts exactly one entry");
}

/// Hammer the cache from several threads: no lock poisoning, the capacity
/// invariant holds throughout, and the counters add up.
#[test]
fn concurrent_access_keeps_invariants() {
    let cache = Arc::new(AnswerCache::new(4, 64));
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let id = (t * 1_000 + i * 7) % 300;
                    if i % 3 == 0 {
                        let _ = cache.get(&key(1, id));
                    } else {
                        cache.insert(key(1, id), value(id));
                    }
                    assert!(cache.len() <= cache.capacity());
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("worker panicked");
    }
    let counters = cache.counters();
    assert!(counters.entries <= counters.capacity);
    // Each thread issues a get for i = 0, 3, ..., 1998: 667 lookups.
    assert_eq!(counters.hits + counters.misses, 4 * 667);
    assert!(counters.hit_rate() > 0.0, "some lookups must have hit");
}
