//! Property tests for the server's shape JSON dialect: every positive finite
//! `{"ball": R}` / `{"box": [W, H]}` / `{"interval": L}` round-trips through
//! the std-only JSON layer and dispatches, `{"interval": L}` is exactly the
//! `{"ball": L/2}` sugar, and non-positive, non-finite, or malformed shapes
//! come back as clean 400s instead of reaching a solver.

use mrs_server::http::{Request, Response};
use mrs_server::{Json, ServerConfig, Service};
use proptest::prelude::*;

const CSV: &str = "0,0,1,0\n0.4,0,1,1\n0,0.4,1,2\n9,9,2,0\n";

fn service_with_dataset() -> Service {
    let service = Service::new(ServerConfig { seed: Some(42), ..ServerConfig::default() });
    let upload = service.handle(&post("/datasets/demo", CSV));
    assert_eq!(upload.status, 200, "dataset upload failed");
    service
}

fn post(target: &str, body: &str) -> Request {
    Request {
        method: "POST".into(),
        target: target.into(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    }
}

fn body_json(response: &Response) -> Json {
    Json::parse(std::str::from_utf8(&response.body).expect("UTF-8 body")).expect("JSON body")
}

/// The semantic part of a query answer: everything except the timing field.
fn semantic_answer(response: &Response) -> Json {
    let answer = body_json(response).get("answer").expect("answer object").clone();
    match answer {
        Json::Obj(pairs) => Json::Obj(pairs.into_iter().filter(|(k, _)| k != "solve_us").collect()),
        other => other,
    }
}

proptest! {
    /// Dyadic positive radii of widely varying magnitude: the query is
    /// accepted, and `{"interval": 2R}` halves back to exactly `{"ball": R}`
    /// (the values are dyadic, so `L / 2.0` is exact) — both shapes must
    /// produce the same answer on the same dataset.
    #[test]
    fn interval_sugar_is_exactly_a_halved_ball(m in 1u64..4096, shift in 0u32..12) {
        let radius = m as f64 / f64::from(1u32 << shift);
        let service = service_with_dataset();
        let ball = format!(
            r#"{{"dataset":"demo","solver":"exact-disk-2d","shape":{{"ball":{radius}}},"cache":false}}"#
        );
        let interval = format!(
            r#"{{"dataset":"demo","solver":"exact-disk-2d","shape":{{"interval":{}}},"cache":false}}"#,
            2.0 * radius
        );
        let from_ball = service.handle(&post("/query", &ball));
        let from_interval = service.handle(&post("/query", &interval));
        prop_assert_eq!(from_ball.status, 200, "ball radius {} rejected", radius);
        prop_assert_eq!(from_interval.status, 200, "interval length {} rejected", 2.0 * radius);
        prop_assert_eq!(semantic_answer(&from_ball), semantic_answer(&from_interval));
    }

    /// Box extents dispatch, and the rendered shape JSON survives a
    /// parse → render → parse round trip bit-exactly (the renderer emits the
    /// shortest representation that round-trips).
    #[test]
    fn box_shapes_dispatch_and_round_trip(
        wm in 1u64..4096, ws in 0u32..12, hm in 1u64..4096, hs in 0u32..12,
    ) {
        let (w, h) = (wm as f64 / f64::from(1u32 << ws), hm as f64 / f64::from(1u32 << hs));
        let shape = Json::Obj(vec![(
            "box".into(),
            Json::Arr(vec![Json::num(w), Json::num(h)]),
        )]);
        let reparsed = Json::parse(&shape.render()).expect("rendered shape parses");
        prop_assert_eq!(&reparsed, &shape);
        let dims = reparsed.get("box").unwrap().as_arr().unwrap();
        prop_assert_eq!(dims[0].as_f64(), Some(w));
        prop_assert_eq!(dims[1].as_f64(), Some(h));

        let service = service_with_dataset();
        let body = format!(
            r#"{{"dataset":"demo","solver":"exact-rect-2d","shape":{},"cache":false}}"#,
            shape.render()
        );
        let response = service.handle(&post("/query", &body));
        prop_assert_eq!(response.status, 200, "box [{}, {}] rejected", w, h);
        let answer = semantic_answer(&response);
        prop_assert!(answer.get("value").and_then(Json::as_f64).is_some());
    }

    /// Zero and negative measurements never reach a solver: every shape kind
    /// reports the offending field as "must be positive".
    #[test]
    fn nonpositive_measurements_are_rejected(m in 0u64..4096, shift in 0u32..12) {
        let v = -(m as f64 / f64::from(1u32 << shift)); // 0.0 or negative
        let service = service_with_dataset();
        for shape in [
            format!(r#"{{"ball":{v}}}"#),
            format!(r#"{{"interval":{v}}}"#),
            format!(r#"{{"box":[{v},1.0]}}"#),
            format!(r#"{{"box":[1.0,{v}]}}"#),
        ] {
            let body =
                format!(r#"{{"dataset":"demo","solver":"exact-disk-2d","shape":{shape}}}"#);
            let response = service.handle(&post("/query", &body));
            prop_assert_eq!(response.status, 400, "accepted {}", shape);
            let message = body_json(&response).get("error").unwrap().as_str().unwrap().to_string();
            prop_assert!(message.contains("must be positive"), "unexpected error: {}", message);
        }
    }

    /// Numeric overflow (literals beyond f64 range) is caught by the JSON
    /// layer itself — the parser admits only finite numbers, so `1e309` and
    /// friends never materialize as `inf` radii.
    #[test]
    fn overflowing_literals_are_rejected_as_non_finite(exp in 309u32..4000) {
        let service = service_with_dataset();
        for literal in [format!("1e{exp}"), format!("-1e{exp}")] {
            let body = format!(
                r#"{{"dataset":"demo","solver":"exact-disk-2d","shape":{{"ball":{literal}}}}}"#
            );
            let response = service.handle(&post("/query", &body));
            prop_assert_eq!(response.status, 400, "accepted {}", literal);
            let message = body_json(&response).get("error").unwrap().as_str().unwrap().to_string();
            prop_assert!(message.contains("a finite number"), "unexpected error: {}", message);
        }
    }
}

/// Textual NaN/infinity spellings are not JSON and malformed shape objects
/// name the accepted grammar — a fixed enumeration rather than a property,
/// since JSON has no non-finite literals to generate.
#[test]
fn non_numeric_and_malformed_shapes_are_rejected() {
    let service = service_with_dataset();
    for (shape, expected) in [
        (r#"{"ball":nan}"#, "a JSON"),
        (r#"{"ball":NaN}"#, "a JSON"),
        (r#"{"ball":inf}"#, "a JSON"),
        (r#"{"ball":Infinity}"#, "a JSON"),
        (r#"{"ball":"1.0"}"#, "`shape` must be"),
        (r#"{"box":[1.0]}"#, "array of two numbers"),
        (r#"{"box":1.0}"#, "`shape` must be"),
        (r#"{"sphere":1.0}"#, "`shape` must be"),
        (r#"{}"#, "`shape` must be"),
    ] {
        let body = format!(r#"{{"dataset":"demo","solver":"exact-disk-2d","shape":{shape}}}"#);
        let response = service.handle(&post("/query", &body));
        assert_eq!(response.status, 400, "accepted {shape}");
        let parsed = body_json(&response);
        let message = parsed.get("error").unwrap().as_str().unwrap();
        assert!(message.contains(expected), "shape {shape}: unexpected error {message}");
    }
}
