//! Parity properties for the two HTTP parsing front ends: the incremental
//! zero-copy [`Parser`] behind the epoll reactor must produce byte-identical
//! requests and the same typed [`ParseError`]s as the blocking one-shot
//! [`read_request`] reader, no matter where a pipelined stream is split —
//! mid-request-line, mid-header, mid-body, or between requests.  Every test
//! replays the same byte stream through both front ends and through the
//! incremental parser at *every* two-chunk split point (plus byte-at-a-time).

use mrs_server::http::{
    read_request, EofOutcome, ParseError, ParseStep, Parser, ReadOutcome, Request, MAX_BODY,
};
use proptest::prelude::*;

/// How one front end's run of a stream ended.
#[derive(Debug, PartialEq)]
enum Outcome {
    /// The peer closed cleanly between requests.
    Clean,
    /// A typed protocol error (answer it, then close).
    Error(ParseError),
    /// EOF mid-body: dropped without a response.
    Dropped,
}

/// One parsed request flattened into comparable owned fields.
type Flat = (String, String, Vec<(String, String)>, Vec<u8>);

/// Everything observable about a run: the requests parsed before the end,
/// each request's `Expect: 100-continue` flag, and how the stream ended.
type Run = (Vec<Flat>, Vec<bool>, Outcome);

fn flat(request: &Request) -> Flat {
    (request.method.clone(), request.target.clone(), request.headers.clone(), request.body.clone())
}

/// Replays the whole stream through the blocking one-shot reader.  An
/// in-memory slice never times out, so EOF surfaces exactly like a peer
/// close: `Closed` between requests, a typed error mid-head, an I/O error
/// mid-body.
fn one_shot(stream: &[u8]) -> Run {
    let mut reader: &[u8] = stream;
    let mut requests = Vec::new();
    let mut expects = Vec::new();
    loop {
        let mut interim = Vec::new();
        match read_request(&mut reader, &mut interim).map_err(|e| e.kind()) {
            Ok(ReadOutcome::Request(request)) => {
                expects.push(!interim.is_empty());
                requests.push(flat(&request));
            }
            Ok(ReadOutcome::Closed) => return (requests, expects, Outcome::Clean),
            Ok(ReadOutcome::Bad(error)) => return (requests, expects, Outcome::Error(error)),
            Err(_) => return (requests, expects, Outcome::Dropped),
        }
    }
}

/// Feeds the stream to the incremental parser one chunk at a time, exactly
/// the way the reactor does: append to the connection buffer, advance until
/// `NeedMore`, drain completed frames, classify EOF when the chunks run out.
fn incremental(chunks: &[&[u8]]) -> Run {
    let mut parser = Parser::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut requests = Vec::new();
    let mut expects = Vec::new();
    for chunk in chunks {
        buf.extend_from_slice(chunk);
        loop {
            match parser.advance(&mut buf) {
                ParseStep::NeedMore => break,
                ParseStep::Complete(frame) => {
                    requests.push(flat(&frame.to_request(&buf)));
                    expects.push(frame.expect_continue);
                    buf.drain(..frame.end);
                }
                ParseStep::Bad(error) => return (requests, expects, Outcome::Error(error)),
            }
        }
    }
    let outcome = match parser.eof_outcome(buf.len()) {
        EofOutcome::Clean => Outcome::Clean,
        EofOutcome::Error(error) => Outcome::Error(error),
        EofOutcome::Drop => Outcome::Dropped,
    };
    (requests, expects, outcome)
}

/// Asserts the incremental parser matches `expected` at every two-chunk
/// split of `stream`, and when fed one byte at a time.
fn assert_every_split_matches(stream: &[u8], expected: &Run, context: &str) {
    for split in 0..=stream.len() {
        let got = incremental(&[&stream[..split], &stream[split..]]);
        assert_eq!(&got, expected, "{context}: two-chunk split at byte {split}");
    }
    let bytes: Vec<&[u8]> = stream.chunks(1).collect();
    assert_eq!(&incremental(&bytes), expected, "{context}: byte-at-a-time");
}

const PATHS: [&str; 4] = ["/healthz", "/stats", "/query", "/datasets/demo/insert"];

/// Builds a pipelined stream from `(path, body_len, flags)` specs.  Flag
/// bits: 1 = `Expect: 100-continue`, 2 = lowercase method spelling (the
/// parser must uppercase it), 4 = bare-LF line endings.
fn build(specs: &[(u64, usize, u64)]) -> Vec<u8> {
    let mut out = Vec::new();
    for &(path, body_len, flags) in specs {
        let method = if flags & 2 != 0 { "post" } else { "POST" };
        let eol = if flags & 4 != 0 { "\n" } else { "\r\n" };
        let path = PATHS[(path as usize) % PATHS.len()];
        let body: Vec<u8> = (0..body_len).map(|i| b'a' + (i % 23) as u8).collect();
        out.extend_from_slice(format!("{method} {path} HTTP/1.1{eol}Host: t{eol}").as_bytes());
        if flags & 1 != 0 {
            out.extend_from_slice(format!("Expect: 100-continue{eol}").as_bytes());
        }
        // Mixed-case name and padded value: both front ends must lowercase
        // the name and trim the value identically.
        out.extend_from_slice(
            format!("X-Mixed-CASE:  padded value {eol}content-length: {}{eol}{eol}", body.len())
                .as_bytes(),
        );
        out.extend(body);
    }
    out
}

proptest! {
    /// Well-formed pipelined streams: the incremental parser yields the
    /// same requests (methods uppercased, header names lowercased, values
    /// trimmed, bodies byte-identical), the same `Expect` latches, and the
    /// same clean close, at every split point.
    #[test]
    fn every_split_of_a_pipelined_stream_parses_identically(
        specs in proptest::collection::vec((0u64..4, 0usize..40, 0u64..8), 1..5),
    ) {
        let stream = build(&specs);
        let expected = one_shot(&stream);
        prop_assert_eq!(expected.0.len(), specs.len(), "one-shot parsed every request");
        prop_assert_eq!(&expected.2, &Outcome::Clean);
        assert_every_split_matches(&stream, &expected, "well-formed");
    }

    /// Truncated streams: cutting a well-formed stream anywhere — inside
    /// the request line, the headers, or the body — makes both front ends
    /// report the same typed outcome (clean close, `400` truncation error,
    /// or a silent drop) after the same parsed prefix.
    #[test]
    fn truncated_streams_report_the_same_typed_outcome(
        specs in proptest::collection::vec((0u64..4, 0usize..40, 0u64..8), 1..4),
        cut_permille in 0u64..1000,
    ) {
        let full = build(&specs);
        let cut = (full.len() as u64 * cut_permille / 1000) as usize;
        let stream = &full[..cut];
        let expected = one_shot(stream);
        assert_every_split_matches(stream, &expected, "truncated");
    }
}

/// Malformed heads: a fixed enumeration of protocol violations, each held
/// to the same typed error (status *and* message) at every split point.
#[test]
fn malformed_streams_fail_identically_at_every_split() {
    let mut too_many_headers = b"GET /x HTTP/1.1\r\n".to_vec();
    for i in 0..101 {
        too_many_headers.extend_from_slice(format!("H{i}: v\r\n").as_bytes());
    }
    too_many_headers.extend_from_slice(b"\r\n");
    let cases: Vec<(Vec<u8>, u16)> = vec![
        (b"GARBAGE\r\n\r\n".to_vec(), 400),
        (b"GET /x SPDY/3\r\n\r\n".to_vec(), 400),
        (b"GET /\xff HTTP/1.1\r\n\r\n".to_vec(), 400),
        (b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n".to_vec(), 400),
        (b"GET /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(), 400),
        (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(), 400),
        (
            format!(
                "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY + 1
            )
            .into_bytes(),
            413,
        ),
        (too_many_headers, 431),
    ];
    for (stream, status) in cases {
        let expected = one_shot(&stream);
        match &expected.2 {
            Outcome::Error(error) => assert_eq!(error.status, status, "{stream:?}"),
            other => panic!("expected a {status} for {stream:?}, got {other:?}"),
        }
        assert!(expected.1.is_empty(), "no interim 100 Continue for a rejected head");
        assert_every_split_matches(&stream, &expected, "malformed");
    }
}

/// An over-long line is rejected as soon as its `MAX_LINE+1`-th byte
/// arrives — no terminator needed — by both front ends.  Splits are sampled
/// (the stream is 17 KB; every split would be quadratic) but include every
/// boundary around the limit itself.
#[test]
fn overlong_lines_are_rejected_at_the_same_byte() {
    const MAX_LINE: usize = 16 * 1024;
    let mut stream = b"GET /".to_vec();
    stream.resize(MAX_LINE + 1024, b'a');
    let expected = one_shot(&stream);
    assert_eq!(
        expected.2,
        Outcome::Error(ParseError { status: 431, message: "header line too long" })
    );
    let splits = (0..=stream.len()).step_by(1021).chain([
        MAX_LINE - 1,
        MAX_LINE,
        MAX_LINE + 1,
        stream.len(),
    ]);
    for split in splits {
        let got = incremental(&[&stream[..split], &stream[split..]]);
        assert_eq!(got, expected, "over-long line, split at byte {split}");
    }
    // The truncated prefix (one byte under the limit, no terminator) is a
    // 400 truncation on both sides, not a 431.
    let prefix = &stream[..MAX_LINE];
    let expected = one_shot(prefix);
    assert_eq!(
        expected.2,
        Outcome::Error(ParseError { status: 400, message: "truncated request line" })
    );
    assert_eq!(incremental(&[prefix, b""]), expected);
}
