//! Property tests for the lock-free log-linear [`Histogram`]: quantiles
//! stay within the bucket error bound of the sort-based exact percentile,
//! merging is associative and loss-free, cumulative `le` series are
//! monotone with `+Inf == count`, and concurrent recording never loses a
//! sample.

use std::sync::Arc;
use std::time::Duration;

use mrs_core::engine::Histogram;
use proptest::prelude::*;

/// The exact nearest-rank `q`-quantile of `samples` (matches the rank rule
/// the histogram uses: `ceil(q * count)` clamped to `[1, count]`).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let count = sorted.len() as f64;
    let rank = ((q * count).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The histogram's bucket error bound around an exact value: sub-64 ns
/// buckets are exact, wider buckets have relative width `2^-6`, and the
/// midpoint reconstruction lands within one full bucket width of any
/// member of the bucket.
fn error_bound(exact: u64) -> u64 {
    1 + exact / 64
}

fn record_all(samples: &[u64]) -> Histogram {
    let hist = Histogram::new();
    for &ns in samples {
        hist.record_ns(ns);
    }
    hist
}

/// A ladder of `le` bounds spanning the generated sample range.
const LE_LADDER: [u64; 12] = [
    10,
    100,
    1_000,
    10_000,
    50_000,
    100_000,
    1_000_000,
    5_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    Histogram::MAX_NS,
];

proptest! {
    #[test]
    fn quantiles_stay_within_the_bucket_error_bound(
        samples in proptest::collection::vec(0u64..2_000_000_000, 1..400),
    ) {
        let hist = record_all(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = hist.quantile(q).as_nanos() as u64;
            let bound = error_bound(exact);
            prop_assert!(
                approx.abs_diff(exact) <= bound,
                "q={q}: approx {approx} vs exact {exact} (bound {bound}, n={})",
                sorted.len()
            );
        }
        // The exact scalars are exact, not bucketed.
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.min().as_nanos() as u64, sorted[0]);
        prop_assert_eq!(hist.max().as_nanos() as u64, *sorted.last().unwrap());
        prop_assert_eq!(hist.sum().as_nanos() as u64, samples.iter().sum::<u64>());
    }

    #[test]
    fn merge_is_associative_and_loss_free(
        a in proptest::collection::vec(0u64..1_000_000_000, 1..120),
        b in proptest::collection::vec(0u64..1_000_000_000, 1..120),
        c in proptest::collection::vec(0u64..1_000_000_000, 1..120),
    ) {
        // (a ⊕ b) ⊕ c merged left-to-right …
        let left = record_all(&a);
        left.merge_from(&record_all(&b));
        left.merge_from(&record_all(&c));
        // … equals a ⊕ (b ⊕ c) merged right-to-left …
        let bc = record_all(&b);
        bc.merge_from(&record_all(&c));
        let right = record_all(&a);
        right.merge_from(&bc);
        // … and both equal recording every sample into one histogram.
        let direct: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = record_all(&direct);

        for other in [&right, &direct] {
            prop_assert_eq!(left.count(), other.count());
            prop_assert_eq!(left.sum(), other.sum());
            prop_assert_eq!(left.min(), other.min());
            prop_assert_eq!(left.max(), other.max());
            prop_assert_eq!(left.cumulative_le(&LE_LADDER), other.cumulative_le(&LE_LADDER));
            for q in [0.5, 0.9, 0.99] {
                prop_assert_eq!(left.quantile(q), other.quantile(q), "q={}", q);
            }
        }
    }

    #[test]
    fn cumulative_le_is_monotone_and_complete(
        samples in proptest::collection::vec(0u64..2_000_000_000_000, 1..300),
    ) {
        let hist = record_all(&samples);
        let series = hist.cumulative_le(&LE_LADDER);
        prop_assert!(
            series.windows(2).all(|w| w[0] <= w[1]),
            "le series must be monotone: {series:?}"
        );
        // MAX_NS is the last bound and every recorded value is clamped to
        // it, so the final bucket is the +Inf bucket: it holds everything.
        prop_assert_eq!(*series.last().unwrap(), hist.count());
    }
}

/// Concurrent recording loses no counts: `count`, `sum`, `min`, `max`, and
/// the bucket totals all agree with a single-threaded replay of the same
/// samples.
#[test]
fn concurrent_recording_loses_no_samples() {
    let hist = Arc::new(Histogram::new());
    let per_thread = 10_000u64;
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // A spread of magnitudes, different per thread.
                    hist.record_ns((i * 997 + t) % 5_000_000);
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("recorder thread panicked");
    }

    let replay = Histogram::new();
    for t in 0..4u64 {
        for i in 0..per_thread {
            replay.record_ns((i * 997 + t) % 5_000_000);
        }
    }
    assert_eq!(hist.count(), 4 * per_thread);
    assert_eq!(hist.count(), replay.count());
    assert_eq!(hist.sum(), replay.sum());
    assert_eq!(hist.min(), replay.min());
    assert_eq!(hist.max(), replay.max());
    assert_eq!(hist.cumulative_le(&LE_LADDER), replay.cumulative_le(&LE_LADDER));
    assert_eq!(hist.quantile(0.5), replay.quantile(0.5));
    assert_eq!(hist.quantile(0.999), replay.quantile(0.999));
}

/// Merging an empty histogram is the identity, and an empty histogram
/// reports zeros rather than sentinel values.
#[test]
fn empty_histogram_is_the_merge_identity() {
    let empty = Histogram::new();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.quantile(0.99), Duration::ZERO);
    assert_eq!(empty.min(), Duration::ZERO);
    assert_eq!(empty.max(), Duration::ZERO);

    let hist = Histogram::new();
    hist.record_ns(1_234);
    hist.merge_from(&empty);
    assert_eq!(hist.count(), 1);
    assert_eq!(hist.min(), Duration::from_nanos(1_234));
    assert_eq!(hist.max(), Duration::from_nanos(1_234));
}
