//! Regression tests for the union-boundary exact algorithm (Lemma 4.2):
//! degenerate configurations that once over- or under-counted the colored
//! depth.

use mrs_core::technique2::union_exact::max_colored_depth_union;
use mrs_geom::{Ball, Point2};

/// Three colinear unit disks whose only triple point is a tangency: the
/// optimum (3) is attained at a single point, and a naive sign classification
/// of the tangential crossing used to report 4.
#[test]
fn colinear_tangency_is_counted_exactly_once() {
    let disks = vec![
        Ball::unit(Point2::xy(0.0, 0.0)),
        Ball::unit(Point2::xy(1.0, 0.0)),
        Ball::unit(Point2::xy(2.0, 0.0)),
    ];
    let res = max_colored_depth_union(&disks, &[0, 1, 2]);
    assert_eq!(res.depth, 3);
    let true_depth = disks.iter().filter(|d| d.contains(&res.point)).count();
    assert_eq!(true_depth, 3, "the reported point must achieve the reported depth");
}

/// Two disks that only touch externally: the tangency point covers both
/// colors, and the reported depth must never exceed the number of colors.
#[test]
fn external_tangency_of_two_colors() {
    let disks = vec![Ball::unit(Point2::xy(0.0, 0.0)), Ball::unit(Point2::xy(2.0, 0.0))];
    let res = max_colored_depth_union(&disks, &[0, 1]);
    assert_eq!(res.depth, 2);
}

/// A grid of tangent disks with alternating colors: lots of simultaneous
/// tangencies, still bounded by the palette size.
#[test]
fn tangent_grid_never_exceeds_palette() {
    let mut disks = Vec::new();
    let mut colors = Vec::new();
    for i in 0..4 {
        for j in 0..4 {
            disks.push(Ball::unit(Point2::xy(2.0 * i as f64, 2.0 * j as f64)));
            colors.push((i + j) % 3);
        }
    }
    let res = max_colored_depth_union(&disks, &colors);
    assert!(res.depth <= 3);
    assert!(res.depth >= 2, "some tangency point touches at least two colors");
}

/// Coincident disks of different colors: every point of the common boundary
/// has depth 2.
#[test]
fn coincident_disks_of_different_colors() {
    let disks = vec![Ball::unit(Point2::xy(0.0, 0.0)), Ball::unit(Point2::xy(0.0, 0.0))];
    let res = max_colored_depth_union(&disks, &[0, 1]);
    assert_eq!(res.depth, 2);
}
