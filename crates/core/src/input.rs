//! Problem instances and result types shared by every MaxRS algorithm in this
//! crate.
//!
//! The paper states all ball algorithms in the *dual* setting (Section 1.4):
//! after scaling so the query ball has unit radius, every weighted input point
//! becomes a unit ball centered at it, and placing the query ball optimally is
//! the same as finding a point of maximum (weighted or colored) depth in that
//! ball collection.  The instance types here perform that scaling and
//! dualization once so the algorithms can work with unit balls throughout.

use std::fmt;
use std::str::FromStr;

use mrs_geom::{Ball, ColoredSite, Point, Point2, WeightedPoint};

use crate::engine::versioned::Mutation;

/// A placement of the query range for a weighted MaxRS problem: where to put
/// the range's center, and the total weight it covers there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement<const D: usize> {
    /// Center of the query ball (original, unscaled coordinates).
    pub center: Point<D>,
    /// Total covered weight at this placement.
    pub value: f64,
}

impl<const D: usize> Placement<D> {
    /// A placement covering nothing, used for empty inputs.
    pub fn empty() -> Self {
        Self { center: Point::origin(), value: 0.0 }
    }
}

/// A placement of the query range for a colored MaxRS problem: where to put
/// the range's center, and how many distinct colors it covers there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ColoredPlacement<const D: usize> {
    /// Center of the query ball (original, unscaled coordinates).
    pub center: Point<D>,
    /// Number of distinct colors covered at this placement.
    pub distinct: usize,
}

impl<const D: usize> ColoredPlacement<D> {
    /// A placement covering nothing, used for empty inputs.
    pub fn empty() -> Self {
        Self { center: Point::origin(), distinct: 0 }
    }
}

/// A weighted MaxRS instance with a `d`-ball query range of radius `radius`.
#[derive(Clone, Debug)]
pub struct WeightedBallInstance<const D: usize> {
    /// Input points with their weights.
    pub points: Vec<WeightedPoint<D>>,
    /// Radius of the query ball.
    pub radius: f64,
}

impl<const D: usize> WeightedBallInstance<D> {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if the radius is not strictly positive, if any coordinate is not
    /// finite, or if any weight is negative or not finite (the paper's
    /// algorithms require non-negative weights).
    pub fn new(points: Vec<WeightedPoint<D>>, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
        for wp in &points {
            assert!(wp.point.is_finite(), "point coordinates must be finite");
            assert!(
                wp.weight.is_finite() && wp.weight >= 0.0,
                "weights must be finite and non-negative"
            );
        }
        Self { points, radius }
    }

    /// An unweighted instance (every weight 1).
    pub fn unweighted(points: Vec<Point<D>>, radius: f64) -> Self {
        Self::new(points.into_iter().map(WeightedPoint::unit).collect(), radius)
    }

    /// Number of input points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the instance has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total weight of all points (an upper bound on any placement value).
    pub fn total_weight(&self) -> f64 {
        self.points.iter().map(|p| p.weight).sum()
    }

    /// The dual view: one *unit* ball per input point, in coordinates scaled
    /// by `1/radius`, paired with the point's weight.
    pub fn dual_unit_balls(&self) -> Vec<(Ball<D>, f64)> {
        let inv = 1.0 / self.radius;
        self.points.iter().map(|wp| (Ball::unit(wp.point.scale(inv)), wp.weight)).collect()
    }

    /// Maps a point expressed in the scaled (dual) coordinate system back to
    /// the original coordinates.
    pub fn unscale(&self, scaled: Point<D>) -> Point<D> {
        scaled.scale(self.radius)
    }

    /// The weighted depth at `center` in the *original* coordinates: total
    /// weight of input points within distance `radius` of `center`.  This is
    /// the value of the placement with that center.
    pub fn value_at(&self, center: &Point<D>) -> f64 {
        ball_coverage_weight(&self.points, center, self.radius)
    }
}

/// The exact covered weight of placing a closed ball at `center`: the
/// slice-level form of [`WeightedBallInstance::value_at`], shared with the
/// engine's index-shared batch paths so both always apply the same
/// containment arithmetic.
pub fn ball_coverage_weight<const D: usize>(
    points: &[WeightedPoint<D>],
    center: &Point<D>,
    radius: f64,
) -> f64 {
    let query = Ball::new(*center, radius);
    points.iter().filter(|wp| query.contains(&wp.point)).map(|wp| wp.weight).sum()
}

/// The exact distinct-color count of placing a closed ball at `center`: the
/// slice-level form of [`ColoredBallInstance::distinct_at`], shared with the
/// engine's index-shared batch paths.
pub fn ball_distinct_colors<const D: usize>(
    sites: &[ColoredSite<D>],
    center: &Point<D>,
    radius: f64,
) -> usize {
    let query = Ball::new(*center, radius);
    let mut colors: Vec<usize> =
        sites.iter().filter(|s| query.contains(&s.point)).map(|s| s.color).collect();
    colors.sort_unstable();
    colors.dedup();
    colors.len()
}

/// A colored MaxRS instance with a `d`-ball query range of radius `radius`.
#[derive(Clone, Debug)]
pub struct ColoredBallInstance<const D: usize> {
    /// Input sites with their colors.
    pub sites: Vec<ColoredSite<D>>,
    /// Radius of the query ball.
    pub radius: f64,
}

impl<const D: usize> ColoredBallInstance<D> {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if the radius is not strictly positive or any coordinate is not
    /// finite.
    pub fn new(sites: Vec<ColoredSite<D>>, radius: f64) -> Self {
        assert!(radius.is_finite() && radius > 0.0, "query radius must be positive");
        for s in &sites {
            assert!(s.point.is_finite(), "site coordinates must be finite");
        }
        Self { sites, radius }
    }

    /// Number of input sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Returns `true` if the instance has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of distinct colors present in the input (an upper bound on any
    /// placement's distinct-color count).
    pub fn distinct_colors(&self) -> usize {
        let mut colors: Vec<usize> = self.sites.iter().map(|s| s.color).collect();
        colors.sort_unstable();
        colors.dedup();
        colors.len()
    }

    /// The dual view: one unit ball per site in coordinates scaled by
    /// `1/radius`, paired with the site's color.
    pub fn dual_unit_balls(&self) -> Vec<(Ball<D>, usize)> {
        let inv = 1.0 / self.radius;
        self.sites.iter().map(|s| (Ball::unit(s.point.scale(inv)), s.color)).collect()
    }

    /// Maps a point expressed in the scaled (dual) coordinate system back to
    /// the original coordinates.
    pub fn unscale(&self, scaled: Point<D>) -> Point<D> {
        scaled.scale(self.radius)
    }

    /// The colored depth at `center` in the original coordinates: number of
    /// distinct colors among sites within distance `radius` of `center`.
    pub fn distinct_at(&self, center: &Point<D>) -> usize {
        ball_distinct_colors(&self.sites, center, self.radius)
    }
}

/// Why a CSV record could not be loaded.
///
/// Every variant pinpoints the offending field, so callers can render
/// actionable messages ("line 7: invalid number `abc`") instead of stringly
/// errors assembled ad hoc at each call site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadErrorKind {
    /// The record has the wrong number of comma-separated fields.
    Arity {
        /// The format the record was expected to match.
        expected: &'static str,
        /// The record as read.
        got: String,
    },
    /// A coordinate or weight field is not a finite number.
    Number {
        /// The raw field text.
        field: String,
    },
    /// A weight field is negative (the paper's algorithms require
    /// non-negative weights; the Section 5 gadgets construct their
    /// mixed-sign instances programmatically, never from CSV).
    NegativeWeight,
    /// A color field is not a non-negative integer.
    Color {
        /// The raw field text.
        field: String,
    },
}

/// A typed CSV loading error: which line failed, and how.
///
/// Lines are 1-based, matching what an editor shows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong with it.
    pub kind: LoadErrorKind,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            LoadErrorKind::Arity { expected, got } => {
                write!(f, "expected `{expected}`, got `{got}`")
            }
            LoadErrorKind::Number { field } => write!(f, "invalid number `{field}`"),
            LoadErrorKind::NegativeWeight => write!(f, "weights must be non-negative"),
            LoadErrorKind::Color { field } => write!(f, "invalid color `{field}`"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A planar point set in both of its query views: every record contributes a
/// weighted point, and the records carrying a color also contribute a
/// colored site.  This is what the batch CSV format (`x,y[,weight[,color]]`)
/// loads into, and what the server's dataset catalog keeps resident.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointSet {
    /// The weighted view (one entry per record).
    pub points: Vec<WeightedPoint<2>>,
    /// The colored view (one entry per record with a 4th field).
    pub sites: Vec<ColoredSite<2>>,
}

impl PointSet {
    /// `true` if the set holds no records at all.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty() && self.sites.is_empty()
    }
}

/// Strips the `#` comment and surrounding whitespace; `None` for blank lines.
fn data_of(line: &str) -> Option<&str> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

/// Parses a finite `f64` field.  `f64::from_str` happily accepts "inf" and
/// "NaN", which the engine's instance constructors reject with a panic; the
/// loader keeps the contract of clean line-numbered errors instead.
fn parse_number(raw: &str, line: usize) -> Result<f64, LoadError> {
    f64::from_str(raw)
        .ok()
        .filter(|v| v.is_finite())
        .ok_or(LoadError { line, kind: LoadErrorKind::Number { field: raw.to_string() } })
}

fn parse_color(raw: &str, line: usize) -> Result<usize, LoadError> {
    raw.parse()
        .map_err(|_| LoadError { line, kind: LoadErrorKind::Color { field: raw.to_string() } })
}

/// Parses weighted points from CSV text: one `x,y[,weight]` record per line,
/// `#` starts a comment, blank lines are skipped, `weight` defaults to 1 and
/// must be non-negative.
pub fn parse_weighted_csv(text: &str) -> Result<Vec<WeightedPoint<2>>, LoadError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let Some(data) = data_of(raw) else { continue };
        let fields: Vec<&str> = data.split(',').map(str::trim).collect();
        if fields.len() < 2 || fields.len() > 3 {
            return Err(LoadError {
                line,
                kind: LoadErrorKind::Arity { expected: "x,y[,weight]", got: data.to_string() },
            });
        }
        let x = parse_number(fields[0], line)?;
        let y = parse_number(fields[1], line)?;
        let weight = if fields.len() == 3 { parse_number(fields[2], line)? } else { 1.0 };
        if weight < 0.0 {
            return Err(LoadError { line, kind: LoadErrorKind::NegativeWeight });
        }
        out.push(WeightedPoint::new(Point2::xy(x, y), weight));
    }
    Ok(out)
}

/// Parses colored sites from CSV text: one `x,y,color` record per line, with
/// the same comment/blank-line rules as [`parse_weighted_csv`].
pub fn parse_colored_csv(text: &str) -> Result<Vec<ColoredSite<2>>, LoadError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let Some(data) = data_of(raw) else { continue };
        let fields: Vec<&str> = data.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(LoadError {
                line,
                kind: LoadErrorKind::Arity { expected: "x,y,color", got: data.to_string() },
            });
        }
        let x = parse_number(fields[0], line)?;
        let y = parse_number(fields[1], line)?;
        let color = parse_color(fields[2], line)?;
        out.push(ColoredSite::new(Point2::xy(x, y), color));
    }
    Ok(out)
}

/// Parses 1-D weighted points from CSV text: one `x[,weight]` record per
/// line, with the same comment/blank-line rules as [`parse_weighted_csv`].
/// This is the format behind the server's 1-D datasets (`?dim=1`), whose
/// interval queries the Theorem 1.3 batched solver answers off one resident
/// sorted event list.
pub fn parse_line_csv(text: &str) -> Result<Vec<WeightedPoint<1>>, LoadError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let Some(data) = data_of(raw) else { continue };
        let fields: Vec<&str> = data.split(',').map(str::trim).collect();
        if fields.is_empty() || fields.len() > 2 {
            return Err(LoadError {
                line,
                kind: LoadErrorKind::Arity { expected: "x[,weight]", got: data.to_string() },
            });
        }
        let x = parse_number(fields[0], line)?;
        let weight = if fields.len() == 2 { parse_number(fields[1], line)? } else { 1.0 };
        if weight < 0.0 {
            return Err(LoadError { line, kind: LoadErrorKind::NegativeWeight });
        }
        out.push(WeightedPoint::new(Point::new([x]), weight));
    }
    Ok(out)
}

/// The one definition of the planar `x,y[,weight[,color]]` record grammar
/// (arity, weight default of 1, negative-weight rejection, color parsing):
/// dataset loads ([`parse_point_set_csv`]) and insert-mutation bodies
/// ([`parse_planar_inserts_csv`]) both parse through here, so the two can
/// never accept different records.
fn parse_planar_record(
    data: &str,
    line: usize,
) -> Result<(WeightedPoint<2>, Option<usize>), LoadError> {
    let fields: Vec<&str> = data.split(',').map(str::trim).collect();
    if fields.len() < 2 || fields.len() > 4 {
        return Err(LoadError {
            line,
            kind: LoadErrorKind::Arity { expected: "x,y[,weight[,color]]", got: data.to_string() },
        });
    }
    let x = parse_number(fields[0], line)?;
    let y = parse_number(fields[1], line)?;
    let weight = if fields.len() >= 3 { parse_number(fields[2], line)? } else { 1.0 };
    if weight < 0.0 {
        return Err(LoadError { line, kind: LoadErrorKind::NegativeWeight });
    }
    let color = if fields.len() == 4 { Some(parse_color(fields[3], line)?) } else { None };
    Ok((WeightedPoint::new(Point2::xy(x, y), weight), color))
}

/// Parses a dual-view point set from CSV text: one `x,y[,weight[,color]]`
/// record per line.  Every record lands in [`PointSet::points`]; records
/// with a 4th field also land in [`PointSet::sites`], so one file serves
/// both weighted and colored queries.  This is the format behind
/// `maxrs batch` and the server's `POST /datasets/{name}`.
pub fn parse_point_set_csv(text: &str) -> Result<PointSet, LoadError> {
    let mut set = PointSet::default();
    for (lineno, raw) in text.lines().enumerate() {
        let Some(data) = data_of(raw) else { continue };
        let (point, color) = parse_planar_record(data, lineno + 1)?;
        set.points.push(point);
        if let Some(color) = color {
            set.sites.push(ColoredSite::new(point.point, color));
        }
    }
    Ok(set)
}

/// Parses planar **insert** mutations: the same `x,y[,weight[,color]]`
/// records as [`parse_point_set_csv`] (shared grammar, see
/// `parse_planar_record`), each becoming one [`Mutation::Insert`] (a 4th
/// field inserts a colored site at the same coordinates, exactly like a
/// dataset row).
pub fn parse_planar_inserts_csv(text: &str) -> Result<Vec<Mutation<2>>, LoadError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let Some(data) = data_of(raw) else { continue };
        let (point, color) = parse_planar_record(data, lineno + 1)?;
        out.push(Mutation::Insert { point, color });
    }
    Ok(out)
}

/// Parses planar **delete** mutations: one `x,y` record per line (deletes
/// address coordinates only — the first live point, and first live site,
/// at exactly those coordinates is removed).
pub fn parse_planar_deletes_csv(text: &str) -> Result<Vec<Mutation<2>>, LoadError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let Some(data) = data_of(raw) else { continue };
        let fields: Vec<&str> = data.split(',').map(str::trim).collect();
        if fields.len() != 2 {
            return Err(LoadError {
                line,
                kind: LoadErrorKind::Arity { expected: "x,y", got: data.to_string() },
            });
        }
        let x = parse_number(fields[0], line)?;
        let y = parse_number(fields[1], line)?;
        out.push(Mutation::Delete { point: Point2::xy(x, y) });
    }
    Ok(out)
}

/// Parses 1-D **insert** mutations: `x[,weight]` records, like
/// [`parse_line_csv`].
pub fn parse_line_inserts_csv(text: &str) -> Result<Vec<Mutation<1>>, LoadError> {
    Ok(parse_line_csv(text)?
        .into_iter()
        .map(|point| Mutation::Insert { point, color: None })
        .collect())
}

/// Parses 1-D **delete** mutations: one `x` record per line.
pub fn parse_line_deletes_csv(text: &str) -> Result<Vec<Mutation<1>>, LoadError> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let Some(data) = data_of(raw) else { continue };
        let fields: Vec<&str> = data.split(',').map(str::trim).collect();
        if fields.len() != 1 {
            return Err(LoadError {
                line,
                kind: LoadErrorKind::Arity { expected: "x", got: data.to_string() },
            });
        }
        let x = parse_number(fields[0], line)?;
        out.push(Mutation::Delete { point: Point::new([x]) });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loader_parses_weighted_and_colored_csv() {
        let weighted = "0,0\n1.5, 2.5, 3  # heavy point\n\n# comment line\n";
        let points = parse_weighted_csv(weighted).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].weight, 3.0);

        let colored = "0,0,0\n1,1,4\n";
        let sites = parse_colored_csv(colored).unwrap();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[1].color, 4);
    }

    #[test]
    fn loader_errors_are_typed_and_line_numbered() {
        let e = parse_weighted_csv("0,0\n1,2,3,4\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, LoadErrorKind::Arity { expected: "x,y[,weight]", .. }));
        assert!(e.to_string().contains("line 2"), "{e}");

        let e = parse_weighted_csv("1,2,-1\n").unwrap_err();
        assert_eq!(e, LoadError { line: 1, kind: LoadErrorKind::NegativeWeight });

        let e = parse_colored_csv("0,0,0\n1,2,red\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, LoadErrorKind::Color { ref field } if field == "red"));

        // Non-finite numbers are clean errors, not engine panics.
        for bad in ["inf,0\n", "0,NaN\n", "0,0,inf\n"] {
            let e = parse_weighted_csv(bad).unwrap_err();
            assert!(matches!(e.kind, LoadErrorKind::Number { .. }), "{bad}: {e:?}");
        }
        assert!(parse_colored_csv("NaN,0,1\n").is_err());
        assert!(parse_colored_csv("1,2\n").is_err());
    }

    #[test]
    fn loader_parses_line_csv() {
        let points = parse_line_csv("0\n1.5, 2  # weighted\n\n# comment\n-3\n").unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].point[0], 0.0);
        assert_eq!(points[1].weight, 2.0);
        assert_eq!(points[2].point[0], -3.0);
        assert!(parse_line_csv("1,2,3\n").is_err());
        assert!(parse_line_csv("1,-1\n").is_err());
        assert!(parse_line_csv("inf\n").is_err());
    }

    #[test]
    fn loader_parses_dual_view_point_sets() {
        let set = parse_point_set_csv("0,0\n1,1,2.5\n2,2,1,7  # weighted and colored\n").unwrap();
        assert_eq!(set.points.len(), 3);
        assert_eq!(set.points[1].weight, 2.5);
        assert_eq!(set.sites.len(), 1);
        assert_eq!(set.sites[0].color, 7);
        assert!(!set.is_empty());
        assert!(PointSet::default().is_empty());

        assert!(parse_point_set_csv("1\n").is_err());
        assert!(parse_point_set_csv("1,2,3,4,5\n").is_err());
        assert!(parse_point_set_csv("1,2,-1\n").is_err());
        assert!(parse_point_set_csv("1,2,1,red\n").is_err());
        assert!(parse_point_set_csv("inf,0,1\n").is_err());
        assert!(parse_point_set_csv("0,0,NaN\n").is_err());
    }

    #[test]
    fn weighted_instance_basics() {
        let inst = WeightedBallInstance::new(
            vec![
                WeightedPoint::new(Point2::xy(0.0, 0.0), 2.0),
                WeightedPoint::new(Point2::xy(1.0, 0.0), 3.0),
                WeightedPoint::new(Point2::xy(10.0, 0.0), 5.0),
            ],
            2.0,
        );
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.total_weight(), 10.0);
        assert_eq!(inst.value_at(&Point2::xy(0.5, 0.0)), 5.0);
        assert_eq!(inst.value_at(&Point2::xy(10.0, 0.0)), 5.0);
        let dual = inst.dual_unit_balls();
        assert_eq!(dual.len(), 3);
        assert!((dual[1].0.center.x() - 0.5).abs() < 1e-12);
        assert_eq!(dual[1].0.radius, 1.0);
        assert_eq!(inst.unscale(Point2::xy(0.5, 0.0)), Point2::xy(1.0, 0.0));
    }

    #[test]
    fn unweighted_constructor_gives_unit_weights() {
        let inst = WeightedBallInstance::unweighted(vec![Point2::xy(0.0, 0.0); 4], 1.0);
        assert_eq!(inst.total_weight(), 4.0);
    }

    #[test]
    #[should_panic(expected = "weights must be finite and non-negative")]
    fn negative_weights_rejected() {
        WeightedBallInstance::new(vec![WeightedPoint::new(Point2::xy(0.0, 0.0), -1.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "query radius must be positive")]
    fn zero_radius_rejected() {
        WeightedBallInstance::<2>::new(vec![], 0.0);
    }

    #[test]
    fn colored_instance_basics() {
        let inst = ColoredBallInstance::new(
            vec![
                ColoredSite::new(Point2::xy(0.0, 0.0), 0),
                ColoredSite::new(Point2::xy(0.2, 0.0), 0),
                ColoredSite::new(Point2::xy(0.4, 0.0), 1),
                ColoredSite::new(Point2::xy(9.0, 9.0), 2),
            ],
            1.0,
        );
        assert_eq!(inst.distinct_colors(), 3);
        assert_eq!(inst.distinct_at(&Point2::xy(0.0, 0.0)), 2);
        assert_eq!(inst.distinct_at(&Point2::xy(9.0, 9.0)), 1);
        assert_eq!(inst.distinct_at(&Point2::xy(50.0, 50.0)), 0);
    }

    #[test]
    fn placements_default_to_empty() {
        assert_eq!(Placement::<2>::empty().value, 0.0);
        assert_eq!(ColoredPlacement::<3>::empty().distinct, 0);
    }
}
